// Tier-1: matmul correctness vs a naive reference, transposed variants,
// and RNG sanity.
#include "tensor/ops.h"

#include "tests/test_common.h"

using namespace qavat;

namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * static_cast<double>(b[p * n + j]);
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  const index_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) t[j * m + i] = a[i * n + j];
  }
  return t;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  double m = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

}  // namespace

int main() {
  Rng rng(11);
  Tensor a({7, 13}), b({13, 5});
  fill_normal(a, rng);
  fill_normal(b, rng);

  Tensor ref = naive_matmul(a, b);
  CHECK(matmul(a, b).shape() == ref.shape());
  CHECK(max_abs_diff(matmul(a, b), ref) < 1e-4);
  CHECK(max_abs_diff(matmul_nt(a, transpose(b)), ref) < 1e-4);
  CHECK(max_abs_diff(matmul_tn(transpose(a), b), ref) < 1e-4);

  // RNG: deterministic given seed, roughly standard-normal moments.
  Rng r1(5), r2(5);
  CHECK(r1.next_u64() == r2.next_u64());
  Rng rn(123);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rn.normal();
    sum += x;
    sum2 += x * x;
  }
  CHECK_NEAR(sum / n, 0.0, 0.03);
  CHECK_NEAR(sum2 / n, 1.0, 0.05);

  // Uniform range.
  Rng ru(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = ru.uniform(-1.0, 1.0);
    CHECK(u >= -1.0 && u < 1.0);
  }
  return qavat::test::finish("test_tensor");
}
