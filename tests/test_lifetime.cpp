// Fleet lifetime subsystem tests (DESIGN.md §16): OuProcess unit
// coverage (stationary moments, determinism, the tau -> inf and tau -> 0
// limits), LifetimeModel event/policy semantics and stream determinism,
// LifetimeSpec / FleetStudySpec JSON + key contracts, FleetSnapshot
// round-trip bit-identity, and FleetEvaluator end-to-end: warm-store
// load, horizon-extension resume == uninterrupted run (bitwise), and
// chip-batch grouping invariance. Runs against a private temp store
// (QAVAT_STORE_DIR set before any store call, as in test_store.cpp).
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>
#include <unistd.h>

#include "core/variability/lifetime.h"
#include "eval/fleet.h"
#include "eval/store.h"
#include "tests/test_common.h"

using namespace qavat;
namespace fs = std::filesystem;

namespace {

// ------------------------------------------------------------ OuProcess

void test_ou_stationary_moments() {
  // A long chain visits the stationary distribution: mean 0, std sigma.
  const double tau = 4.0, sigma = 0.5;
  Rng rng(11);
  OuProcess ou(tau, sigma, rng);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = ou.step(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  // Effective sample count is ~ n / (2 tau); generous tolerances.
  CHECK_NEAR(mean, 0.0, 0.02);
  CHECK_NEAR(std::sqrt(var), sigma, 0.02);

  // The initial draw itself is stationary: across independent seeds the
  // ctor value has std sigma.
  double isum = 0.0, isum2 = 0.0;
  const int m = 20000;
  for (int s = 0; s < m; ++s) {
    Rng r(static_cast<std::uint64_t>(s), 99);
    OuProcess p(tau, sigma, r);
    isum += p.value();
    isum2 += p.value() * p.value();
  }
  const double imean = isum / m;
  CHECK_NEAR(imean, 0.0, 0.02);
  CHECK_NEAR(std::sqrt(isum2 / m - imean * imean), sigma, 0.02);
}

void test_ou_determinism_and_injection() {
  // Same seed => same trace, exactly.
  Rng r1(7), r2(7);
  OuProcess a(16.0, 0.35, r1);
  OuProcess b(16.0, 0.35, r2);
  for (int i = 0; i < 50; ++i) CHECK(a.step(r1) == b.step(r2));

  // The coefficients-only ctor + set_value replays a persistent chain
  // bit-identically while keeping the process state one external double
  // — the contract the fleet snapshot protocol stands on.
  Rng r3(21), r4(21);
  OuProcess persistent(8.0, 0.5);
  persistent.set_value(0.125);
  double external = 0.125;
  for (int i = 0; i < 50; ++i) {
    const double want = persistent.step(r3);
    OuProcess transient(8.0, 0.5);
    transient.set_value(external);
    external = transient.step(r4);
    CHECK(external == want);
  }

  // Coefficients-only construction consumes no RNG draw.
  Rng r5(3), r6(3);
  OuProcess no_draw(8.0, 0.5);
  (void)no_draw;
  CHECK(r5.normal() == r6.normal());
}

void test_ou_tau_limits() {
  // tau -> inf: a -> 1, innovation -> 0; the value freezes. (At tau =
  // 1e12 the per-step innovation is still ~ sigma * sqrt(2/tau) ~ 7e-7,
  // so 100 steps wander O(1e-5) — far below the stationary sigma.)
  Rng rng(5);
  OuProcess frozen(1e12, 0.5, rng);
  const double x0 = frozen.value();
  for (int i = 0; i < 100; ++i) frozen.step(rng);
  CHECK_NEAR(frozen.value(), x0, 1e-4);

  // tau -> 0: a -> 0; successive values are i.i.d. N(0, sigma^2) —
  // empirical lag-1 autocorrelation vanishes and the std stays sigma.
  Rng rng2(6);
  OuProcess white(1e-9, 0.5, rng2);
  const int n = 20000;
  double prev = white.value();
  double sum = 0.0, sum2 = 0.0, cross = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = white.step(rng2);
    sum += x;
    sum2 += x * x;
    cross += x * prev;
    prev = x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  CHECK_NEAR(std::sqrt(var), 0.5, 0.02);
  CHECK_NEAR(cross / n / var, 0.0, 0.05);  // lag-1 correlation
}

// --------------------------------------------------------- LifetimeModel

// A spec whose only drift source is the one under test: sigma_b = 0
// freezes the OU term at 0 (stationary draw and innovations both have
// zero sigma), sigma_w = 0 makes every GTM measurement exact.
LifetimeSpec isolated_spec() {
  LifetimeSpec s;
  s.drift.sigma_b = 0.0;
  s.drift.sigma_w = 0.0;
  s.drift.tau = 16.0;
  s.gtm_cells = 100;
  return s;
}

void test_event_aging() {
  LifetimeSpec s = isolated_spec();
  s.events.aging_rate = 0.01;
  const LifetimeModel lm(s);
  ChipLifetimeState st;
  Rng init = LifetimeModel::init_rng(s, 0);
  lm.init(&st, init);
  CHECK(st.ou == 0.0);
  CHECK(st.eps_hat == 0.0);  // exact factory calibration of eps_B(0) = 0
  double prev = 0.0;
  const int n = 64;
  for (index_t t = 1; t <= n; ++t) {
    Rng rng = LifetimeModel::step_rng(s, 0, t);
    lm.advance(&st, rng);
    CHECK(st.aging < prev);  // strictly monotone decay
    prev = st.aging;
  }
  // Jittered in [0.5, 1.5) per step.
  CHECK(st.aging <= -0.01 * 0.5 * n);
  CHECK(st.aging >= -0.01 * 1.5 * n);
  CHECK(lm.eps_b(st, n) == st.aging);  // no other component active
}

void test_event_thermal() {
  LifetimeSpec s = isolated_spec();
  s.events.thermal_amp = 0.2;
  s.events.thermal_period = 32.0;
  const LifetimeModel lm(s);
  ChipLifetimeState st;
  Rng init = LifetimeModel::init_rng(s, 3);
  lm.init(&st, init);
  CHECK(st.phase >= 0.0 && st.phase < 2.0 * 3.14159265358979323846);
  // The deterministic cycle: bounded by amp, exactly periodic, and the
  // composed eps_b is the pure sinusoid (every other component is 0).
  for (index_t t = 0; t <= 64; ++t) {
    const double e = lm.eps_b(st, t);
    CHECK(std::fabs(e) <= 0.2 + 1e-12);
    CHECK_NEAR(lm.eps_b(st, t + 32), e, 1e-9);
  }
  // Phase is per-chip: another chip draws a different one.
  ChipLifetimeState st2;
  Rng init2 = LifetimeModel::init_rng(s, 4);
  lm.init(&st2, init2);
  CHECK(st.phase != st2.phase);
  // A disabled cycle draws no phase (stream economy is part of the
  // schema: enabling thermal must not shift other chips' draws).
  LifetimeSpec off = isolated_spec();
  const LifetimeModel lm_off(off);
  ChipLifetimeState st3;
  Rng init3 = LifetimeModel::init_rng(off, 3);
  lm_off.init(&st3, init3);
  CHECK(st3.phase == 0.0);
}

void test_event_disturb() {
  LifetimeSpec s = isolated_spec();
  s.events.disturb_rate = 1.0;  // fires every step
  s.events.disturb_mag = 0.3;
  const LifetimeModel lm(s);
  ChipLifetimeState st;
  Rng init = LifetimeModel::init_rng(s, 0);
  lm.init(&st, init);
  double prev = 0.0;
  for (index_t t = 1; t <= 32; ++t) {
    Rng rng = LifetimeModel::step_rng(s, 0, t);
    lm.advance(&st, rng);
    CHECK(st.disturb != prev);  // a jump landed
    prev = st.disturb;
  }
  // rate 0 (or mag 0) never jumps.
  LifetimeSpec s0 = isolated_spec();
  s0.events.disturb_rate = 0.0;
  s0.events.disturb_mag = 0.3;
  const LifetimeModel lm0(s0);
  ChipLifetimeState st0;
  Rng init0 = LifetimeModel::init_rng(s0, 0);
  lm0.init(&st0, init0);
  for (index_t t = 1; t <= 32; ++t) {
    Rng rng = LifetimeModel::step_rng(s0, 0, t);
    lm0.advance(&st0, rng);
  }
  CHECK(st0.disturb == 0.0);
}

void test_stream_determinism() {
  // A chip's state at step t is a pure function of (seed, chip, t):
  // replaying the streams reproduces it bit-identically, and distinct
  // chips/seeds give distinct trajectories.
  LifetimeSpec s;
  s.events.aging_rate = 0.001;
  s.events.thermal_amp = 0.1;
  s.events.thermal_period = 16.0;
  s.events.disturb_rate = 0.1;
  s.events.disturb_mag = 0.2;
  const LifetimeModel lm(s);
  auto advance_to = [&](index_t chip, index_t t_end) {
    ChipLifetimeState st;
    Rng init = LifetimeModel::init_rng(s, chip);
    lm.init(&st, init);
    for (index_t t = 1; t <= t_end; ++t) {
      Rng rng = LifetimeModel::step_rng(s, chip, t);
      lm.advance(&st, rng);
      lm.maybe_retune(&st, t, rng);
    }
    return st;
  };
  const ChipLifetimeState a = advance_to(2, 24);
  const ChipLifetimeState b = advance_to(2, 24);
  CHECK(std::memcmp(&a, &b, sizeof a) == 0);
  const ChipLifetimeState c = advance_to(3, 24);
  CHECK(a.ou != c.ou);
}

// -------------------------------------------------------- retune policies

void test_policy_never() {
  LifetimeSpec s = isolated_spec();
  s.drift.sigma_b = 0.35;  // drifting, but never re-measured
  const LifetimeModel lm(s);
  ChipLifetimeState st;
  Rng init = LifetimeModel::init_rng(s, 0);
  lm.init(&st, init);
  const double factory = st.eps_hat;
  for (index_t t = 1; t <= 32; ++t) {
    Rng rng = LifetimeModel::step_rng(s, 0, t);
    lm.advance(&st, rng);
    CHECK(!lm.maybe_retune(&st, t, rng));
  }
  CHECK(st.retunes == 0);
  CHECK(st.eps_hat == factory);
}

void test_policy_fixed_interval() {
  LifetimeSpec s = isolated_spec();
  s.drift.sigma_b = 0.35;
  s.policy.kind = RetunePolicyKind::kFixedInterval;
  s.policy.interval = 4;
  const LifetimeModel lm(s);
  ChipLifetimeState st;
  Rng init = LifetimeModel::init_rng(s, 0);
  lm.init(&st, init);
  for (index_t t = 1; t <= 16; ++t) {
    Rng rng = LifetimeModel::step_rng(s, 0, t);
    lm.advance(&st, rng);
    const bool retuned = lm.maybe_retune(&st, t, rng);
    CHECK(retuned == (t % 4 == 0));
    if (retuned) {
      // sigma_w = 0: the re-measurement is exact.
      CHECK(st.eps_hat == lm.eps_b(st, t));
    }
  }
  CHECK(st.retunes == 4);
}

void test_policy_threshold() {
  // sigma_w = 0 makes probe and full measurement exact, so the policy
  // reduces to |eps_B(t) - eps_hat| > budget — exactly checkable.
  LifetimeSpec s = isolated_spec();
  s.drift.sigma_b = 0.35;
  s.drift.tau = 4.0;
  s.policy.kind = RetunePolicyKind::kThreshold;
  s.policy.budget = 0.05;
  const LifetimeModel lm(s);
  ChipLifetimeState st;
  Rng init = LifetimeModel::init_rng(s, 1);
  lm.init(&st, init);
  index_t expected = 0;
  for (index_t t = 1; t <= 64; ++t) {
    Rng rng = LifetimeModel::step_rng(s, 1, t);
    lm.advance(&st, rng);
    const bool should = std::fabs(lm.eps_b(st, t) - st.eps_hat) > 0.05;
    CHECK(lm.maybe_retune(&st, t, rng) == should);
    if (should) {
      ++expected;
      CHECK(st.eps_hat == lm.eps_b(st, t));  // refreshed exactly
    }
  }
  CHECK(st.retunes == expected);
  CHECK(expected > 0);  // sigma_b 0.35 >> budget 0.05: must trigger

  // An infinite budget behaves like kNever.
  LifetimeSpec s2 = s;
  s2.policy.budget = 1e9;
  const LifetimeModel lm2(s2);
  ChipLifetimeState st2;
  Rng init2 = LifetimeModel::init_rng(s2, 1);
  lm2.init(&st2, init2);
  for (index_t t = 1; t <= 32; ++t) {
    Rng rng = LifetimeModel::step_rng(s2, 1, t);
    lm2.advance(&st2, rng);
    CHECK(!lm2.maybe_retune(&st2, t, rng));
  }
  CHECK(st2.retunes == 0);
}

// ------------------------------------------------------------- spec JSON

LifetimeSpec distinctive_lifetime() {
  LifetimeSpec s;
  s.drift.model = VarianceModel::kLayerFixed;
  s.drift.sigma_w = 0.1250000000000001;
  s.drift.sigma_b = 0.44999999999999996;
  s.drift.tau = 12.345678901234567;
  s.events.aging_rate = 0.0012345;
  s.events.thermal_amp = 0.125;
  s.events.thermal_period = 48.5;
  s.events.disturb_rate = 0.015;
  s.events.disturb_mag = 0.25;
  s.policy.kind = RetunePolicyKind::kThreshold;
  s.policy.interval = 7;
  s.policy.budget = 0.0625;
  s.policy.probe_cells = 24;
  s.gtm_cells = 333;
  s.n_chips = 17;
  s.n_steps = 35;
  s.checkpoint_every = 7;
  s.batch_size = 13;
  s.seed = 0xFEDCBA9876543210ull;
  return s;
}

void test_lifetime_spec_json_and_key() {
  const LifetimeSpec s = distinctive_lifetime();
  LifetimeSpec back;
  std::string err;
  CHECK(LifetimeSpec::from_json(s.to_json(), &back, &err));
  CHECK(err.empty());
  CHECK(back.to_json() == s.to_json());
  CHECK(back.key() == s.key());
  CHECK(back.n_steps == s.n_steps);

  // Defaults round-trip too.
  LifetimeSpec d, dback;
  CHECK(LifetimeSpec::from_json(d.to_json(), &dback, &err));
  CHECK(dback.to_json() == d.to_json());

  // n_steps is deliberately NOT part of the key (trajectory-prefix
  // identity lets an extended horizon resume) — but it IS in the JSON.
  LifetimeSpec ext = s;
  ext.n_steps = 2 * s.n_steps;
  CHECK(ext.key() == s.key());
  CHECK(ext.to_json() != s.to_json());

  // Every other field is identity: each perturbation must move the key.
  std::vector<LifetimeSpec> cases;
  auto add = [&](void (*mut)(LifetimeSpec&)) {
    LifetimeSpec c = distinctive_lifetime();
    mut(c);
    cases.push_back(c);
  };
  add([](LifetimeSpec& c) { c.drift.model = VarianceModel::kWeightProportional; });
  add([](LifetimeSpec& c) { c.drift.sigma_w = 0.3; });
  add([](LifetimeSpec& c) { c.drift.sigma_b = 0.2; });
  add([](LifetimeSpec& c) { c.drift.tau = 99.0; });
  add([](LifetimeSpec& c) { c.events.aging_rate = 0.9; });
  add([](LifetimeSpec& c) { c.events.thermal_amp = 0.9; });
  add([](LifetimeSpec& c) { c.events.thermal_period = 9.0; });
  add([](LifetimeSpec& c) { c.events.disturb_rate = 0.9; });
  add([](LifetimeSpec& c) { c.events.disturb_mag = 0.9; });
  add([](LifetimeSpec& c) { c.policy.kind = RetunePolicyKind::kNever; });
  add([](LifetimeSpec& c) {
    c.policy.kind = RetunePolicyKind::kFixedInterval;
    c.policy.interval = 9;
  });
  add([](LifetimeSpec& c) { c.policy.budget = 0.9; });
  add([](LifetimeSpec& c) { c.policy.probe_cells = 9; });
  add([](LifetimeSpec& c) { c.gtm_cells = 9; });
  add([](LifetimeSpec& c) { c.n_chips = 9; });
  add([](LifetimeSpec& c) { c.checkpoint_every = 5; });
  add([](LifetimeSpec& c) { c.batch_size = 9; });
  add([](LifetimeSpec& c) { c.seed = 9; });
  for (const LifetimeSpec& c : cases) {
    CHECK(c.key() != s.key());
    LifetimeSpec cb;
    CHECK(LifetimeSpec::from_json(c.to_json(), &cb, &err));
    CHECK(cb.key() == c.key());
    CHECK(cb.to_json() == c.to_json());
  }

  // An all-default event mix prints as "ev[none]".
  LifetimeSpec plain;
  CHECK(plain.key().find("_ev[none]_") != std::string::npos);
}

void check_lifetime_rejected(const std::string& doc, const char* expect) {
  LifetimeSpec out = distinctive_lifetime();
  const std::string before = out.to_json();
  std::string err;
  if (LifetimeSpec::from_json(doc, &out, &err)) {
    std::printf("FAIL: accepted bad lifetime doc (expect '%s')\n", expect);
    ++qavat::test::failures;
    return;
  }
  CHECK(out.to_json() == before);  // untouched on failure
  if (err.find(expect) == std::string::npos) {
    std::printf("FAIL: error '%s' does not mention '%s'\n", err.c_str(),
                expect);
    ++qavat::test::failures;
  }
}

void test_lifetime_spec_rejection() {
  const std::string good = distinctive_lifetime().to_json();
  check_lifetime_rejected("", "malformed JSON");
  check_lifetime_rejected("nope", "malformed JSON");
  check_lifetime_rejected(good + "x", "trailing characters");
  check_lifetime_rejected("{}", "lifetime_schema");
  check_lifetime_rejected("{\"lifetime_schema\":99}", "version mismatch");

  auto swap = [&](const std::string& from, const std::string& to) {
    std::string doc = good;
    const std::size_t pos = doc.find(from);
    CHECK(pos != std::string::npos);
    if (pos != std::string::npos) doc.replace(pos, from.size(), to);
    return doc;
  };
  check_lifetime_rejected(swap("\"kind\":\"threshold\"", "\"kind\":\"always\""),
                          "policy.kind: unknown token 'always'");
  check_lifetime_rejected(swap("\"model\":\"lf\"", "\"model\":\"xx\""),
                          "drift.model: unknown token 'xx'");
  check_lifetime_rejected(swap("\"sigma_w\":", "\"sigma_w\":\"x\",\"y\":"),
                          "drift.sigma_w: expected a number");
  check_lifetime_rejected(swap("\"aging_rate\":", "\"aging_rate\":true,\"y\":"),
                          "events.aging_rate: expected a number");
  check_lifetime_rejected(swap("\"drift\":{", "\"drift\":1,\"x\":{"),
                          "drift: expected an object");
  check_lifetime_rejected(swap("\"n_chips\":17", "\"n_chips\":\"many\""),
                          "n_chips: expected an integer");
}

void test_fleet_study_spec_json() {
  for (const std::string& name : builtin_fleet_names()) {
    FleetStudySpec s;
    CHECK(builtin_fleet_study(name, &s));
    FleetStudySpec back;
    std::string err;
    if (!FleetStudySpec::from_json(s.to_json(), &back, &err)) {
      std::printf("FAIL study(%s): parse rejected: %s\n", name.c_str(),
                  err.c_str());
      ++qavat::test::failures;
      continue;
    }
    CHECK(back.to_json() == s.to_json());
    CHECK(back.key() == s.key());
    // The study key is the scenario key plus the lifetime key.
    CHECK(s.key() == s.scenario.key() + "_" + s.lifetime.key());
  }
  FleetStudySpec out;
  std::string err;
  CHECK(!builtin_fleet_study("no_such_study", &out));
  CHECK(!FleetStudySpec::from_json("{}", &out, &err));
  CHECK(err.find("scenario: missing object") != std::string::npos);
  FleetStudySpec good;
  CHECK(builtin_fleet_study("fleet_ou", &good));
  std::string doc = good.to_json();
  const std::size_t pos = doc.find("\"lifetime\"");
  CHECK(pos != std::string::npos);
  doc.replace(pos, std::strlen("\"lifetime\""), "\"liftime\"");
  CHECK(!FleetStudySpec::from_json(doc, &out, &err));
  CHECK(err.find("lifetime: missing object") != std::string::npos);
  // Errors inside a sub-object carry its prefix.
  std::string bad = good.to_json();
  const std::size_t kpos = bad.find("\"kind\":\"fixed_interval\"");
  CHECK(kpos != std::string::npos);
  bad.replace(kpos, std::strlen("\"kind\":\"fixed_interval\""),
              "\"kind\":\"sometimes\"");
  CHECK(!FleetStudySpec::from_json(bad, &out, &err));
  CHECK(err.find("lifetime: policy.kind: unknown token") != std::string::npos);
}

// -------------------------------------------------------- snapshot codec

FleetSnapshot synthetic_snapshot() {
  FleetSnapshot s;
  s.n_chips = 3;
  s.completed_steps = 8;
  s.rows.resize(2);
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    FleetCheckpoint& row = s.rows[r];
    row.step = static_cast<index_t>(4 * (r + 1));
    row.mean = 0.1 + 0.2;  // a value that is NOT exactly representable
    row.min = 1e-300;
    row.max = 0.9999999999999999;
    row.p5 = 0.30000000000000004;
    row.p50 = 0.5;
    row.p95 = 0.7000000000000001;
    row.retunes = static_cast<index_t>(5 * r);
    row.stale = 0.012345678901234567;
  }
  s.chips.resize(3);
  s.acc_sum.resize(3);
  for (std::size_t c = 0; c < 3; ++c) {
    ChipLifetimeState& st = s.chips[c];
    st.ou = -0.1 * static_cast<double>(c + 1) / 3.0;
    st.aging = -1e-5 * static_cast<double>(c);
    st.disturb = 0.2 / 7.0;
    st.phase = 3.14159265358979323846 * static_cast<double>(c) / 3.0;
    st.eps_hat = 0.1 / 3.0;
    st.retunes = static_cast<index_t>(c);
    s.acc_sum[c] = 7.7 + static_cast<double>(c) / 7.0;
  }
  return s;
}

bool snapshots_equal(const FleetSnapshot& a, const FleetSnapshot& b) {
  if (a.n_chips != b.n_chips || a.completed_steps != b.completed_steps ||
      a.rows.size() != b.rows.size() || a.chips.size() != b.chips.size() ||
      a.acc_sum.size() != b.acc_sum.size()) {
    return false;
  }
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    if (std::memcmp(&a.rows[r], &b.rows[r], sizeof(FleetCheckpoint)) != 0) {
      return false;
    }
  }
  for (std::size_t c = 0; c < a.chips.size(); ++c) {
    if (std::memcmp(&a.chips[c], &b.chips[c], sizeof(ChipLifetimeState)) !=
            0 ||
        std::memcmp(&a.acc_sum[c], &b.acc_sum[c], sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void test_snapshot_roundtrip() {
  const FleetSnapshot s = synthetic_snapshot();
  const std::string key = "study_key_under_test";
  const StateDict sd = s.to_state_dict(key);
  CHECK(sd.tensors.empty());  // scalars only, by design

  // In-memory decode: bit-exact.
  FleetSnapshot back;
  CHECK(FleetSnapshot::from_state_dict(sd, key, &back));
  CHECK(snapshots_equal(s, back));

  // Through the serialized envelope too (doubles survive exactly).
  std::stringstream ss;
  save_state_dict(ss, sd);
  StateDict sd2;
  CHECK(load_state_dict(ss, &sd2));
  FleetSnapshot back2;
  CHECK(FleetSnapshot::from_state_dict(sd2, key, &back2));
  CHECK(snapshots_equal(s, back2));

  // Fingerprint mismatch: a snapshot can never be read for another study.
  FleetSnapshot wrong;
  CHECK(!FleetSnapshot::from_state_dict(sd, "some_other_study", &wrong));

  // Strict sequential decode: truncation, renames and stray tensors all
  // fail instead of silently defaulting.
  StateDict trunc = sd;
  trunc.scalars.pop_back();
  CHECK(!FleetSnapshot::from_state_dict(trunc, key, &wrong));
  StateDict renamed = sd;
  renamed.scalars[7].first = "row0.meen";  // was "row0.mean"
  CHECK(!FleetSnapshot::from_state_dict(renamed, key, &wrong));
  StateDict extra = sd;
  extra.add_scalar("trailing_garbage", 1.0);
  CHECK(!FleetSnapshot::from_state_dict(extra, key, &wrong));
  StateDict with_tensor = sd;
  with_tensor.add_tensor("t", Tensor({1}));
  CHECK(!FleetSnapshot::from_state_dict(with_tensor, key, &wrong));
}

// ------------------------------------------------------- FleetEvaluator

// Tiny end-to-end study: 5 chips, 8 steps, 2 windows, odd batch size so
// the chunked tiled forward exercises a remainder chunk.
FleetStudySpec tiny_study() {
  FleetStudySpec s;
  s.scenario = ScenarioSpec::within(ModelKind::kLeNet5s, 4, 4,
                                    ScenarioAlgo::kQAVAT,
                                    VarianceModel::kWeightProportional, 0.25);
  s.lifetime.drift.model = VarianceModel::kWeightProportional;
  s.lifetime.drift.sigma_w = 0.25;
  s.lifetime.drift.sigma_b = 0.35;
  s.lifetime.drift.tau = 4.0;
  s.lifetime.events.aging_rate = 0.002;
  s.lifetime.events.thermal_amp = 0.1;
  s.lifetime.events.thermal_period = 8.0;
  s.lifetime.events.disturb_rate = 0.1;
  s.lifetime.events.disturb_mag = 0.2;
  s.lifetime.policy.kind = RetunePolicyKind::kThreshold;
  s.lifetime.policy.budget = 0.1;
  s.lifetime.policy.probe_cells = 16;
  s.lifetime.gtm_cells = 200;
  s.lifetime.n_chips = 5;
  s.lifetime.n_steps = 8;
  s.lifetime.checkpoint_every = 4;
  s.lifetime.batch_size = 9;
  s.lifetime.seed = 4242;
  return s;
}

bool trajectories_equal(const FleetTrajectory& a, const FleetTrajectory& b) {
  if (a.checkpoints.size() != b.checkpoints.size()) return false;
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    if (std::memcmp(&a.checkpoints[i], &b.checkpoints[i],
                    sizeof(FleetCheckpoint)) != 0) {
      return false;
    }
  }
  return true;
}

void check_rows_sane(const FleetTrajectory& t, index_t ck) {
  for (std::size_t i = 0; i < t.checkpoints.size(); ++i) {
    const FleetCheckpoint& r = t.checkpoints[i];
    CHECK(r.step == static_cast<index_t>(ck * (i + 1)));
    CHECK(r.min >= 0.0 && r.max <= 1.0);
    CHECK(r.min <= r.p5 && r.p5 <= r.p50 && r.p50 <= r.p95 &&
          r.p95 <= r.max);
    CHECK(r.mean >= r.min && r.mean <= r.max);
    CHECK(r.stale >= 0.0);
    CHECK(r.retunes >= 0);
  }
}

void test_fleet_run_and_store(Session& session) {
  const FleetStudySpec spec = tiny_study();
  FleetEvaluator fleet(session);

  // The claim-unit list ends with the study's fleet snapshot unit.
  const std::vector<ClaimUnitRef> units = fleet.claim_units(spec);
  CHECK(!units.empty());
  CHECK(std::strcmp(units.back().bucket, kFleetBucket) == 0);
  CHECK(units.back().key == spec.key());
  for (std::size_t i = 0; i + 1 < units.size(); ++i) {
    CHECK(std::strcmp(units[i].bucket, "models") == 0);
  }

  // Cold run: computes, publishes one snapshot per window.
  const FleetRunResult cold = fleet.run(spec);
  CHECK(!cold.loaded);
  CHECK(cold.resumed_from_step == 0);
  CHECK(cold.n_chips == 5);
  CHECK(cold.snapshots_published == 2);
  CHECK(cold.trajectory.checkpoints.size() == 2);
  check_rows_sane(cold.trajectory, spec.lifetime.checkpoint_every);

  // Warm run: served from the store, bit-identical, nothing re-published.
  const FleetRunResult warm = fleet.run(spec);
  CHECK(warm.loaded);
  CHECK(warm.snapshots_published == 0);
  CHECK(trajectories_equal(warm.trajectory, cold.trajectory));

  // Horizon extension resumes from the persisted checkpoint: the longer
  // study's first two rows are the short study's rows, bit-identical,
  // and only the new windows were computed and published.
  FleetStudySpec longer = spec;
  longer.lifetime.n_steps = 16;
  CHECK(longer.key() == spec.key());  // n_steps is not identity
  const FleetRunResult ext = fleet.run(longer);
  CHECK(!ext.loaded);
  CHECK(ext.resumed_from_step == 8);
  CHECK(ext.snapshots_published == 2);  // windows 3 and 4 only
  CHECK(ext.trajectory.checkpoints.size() == 4);
  check_rows_sane(ext.trajectory, spec.lifetime.checkpoint_every);
  FleetTrajectory prefix;
  prefix.checkpoints.assign(ext.trajectory.checkpoints.begin(),
                            ext.trajectory.checkpoints.begin() + 2);
  CHECK(trajectories_equal(prefix, cold.trajectory));

  // A shorter horizon over the same study serves the stored prefix.
  FleetStudySpec shorter = spec;
  shorter.lifetime.n_steps = 4;
  const FleetRunResult pre = fleet.run(shorter);
  CHECK(pre.loaded);
  CHECK(pre.trajectory.checkpoints.size() == 1);
  FleetTrajectory first;
  first.checkpoints.assign(cold.trajectory.checkpoints.begin(),
                           cold.trajectory.checkpoints.begin() + 1);
  CHECK(trajectories_equal(first, pre.trajectory));

  // Resume == uninterrupted, bitwise: recompute the 16-step study from
  // scratch with the store disabled (no snapshot to resume from, no
  // publication) and compare against the resumed trajectory.
  ::setenv("QAVAT_STORE", "0", 1);
  const FleetRunResult uninterrupted = fleet.run(longer);
  CHECK(!uninterrupted.loaded);
  CHECK(uninterrupted.resumed_from_step == 0);
  CHECK(uninterrupted.snapshots_published == 0);
  CHECK(trajectories_equal(uninterrupted.trajectory, ext.trajectory));

  // Chip grouping is result-invariant: any QAVAT_FLEET_CHIP_BATCH gives
  // the same bits (still store-disabled, so every run recomputes).
  for (const char* cb : {"1", "2", "5", "64"}) {
    ::setenv("QAVAT_FLEET_CHIP_BATCH", cb, 1);
    const FleetRunResult r = fleet.run(longer);
    CHECK(trajectories_equal(r.trajectory, ext.trajectory));
  }
  ::unsetenv("QAVAT_FLEET_CHIP_BATCH");
  ::unsetenv("QAVAT_STORE");

  // Spec validation: a checkpoint interval that does not divide the
  // horizon is rejected up front.
  FleetStudySpec bad = spec;
  bad.lifetime.checkpoint_every = 3;
  bool threw = false;
  try {
    fleet.run(bad);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  FleetStudySpec bad2 = spec;
  bad2.lifetime.n_chips = 0;
  threw = false;
  try {
    fleet.run(bad2);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
}

void test_chip_batch_env() {
  ::setenv("QAVAT_FLEET_CHIP_BATCH", "3", 1);
  CHECK(fleet_chip_batch_from_env() == 3);
  ::unsetenv("QAVAT_FLEET_CHIP_BATCH");
  ::setenv("QAVAT_CHIP_BATCH", "5", 1);
  CHECK(fleet_chip_batch_from_env() == 5);
  ::setenv("QAVAT_FLEET_CHIP_BATCH", "2", 1);  // fleet override wins
  CHECK(fleet_chip_batch_from_env() == 2);
  ::unsetenv("QAVAT_FLEET_CHIP_BATCH");
  ::unsetenv("QAVAT_CHIP_BATCH");
  CHECK(fleet_chip_batch_from_env() == 8);
}

}  // namespace

int main() {
  // Private store for this test binary; set before any store access.
  const fs::path store_dir =
      fs::temp_directory_path() /
      ("qavat_test_lifetime_" + std::to_string(::getpid()));
  ::setenv("QAVAT_STORE_DIR", store_dir.c_str(), 1);

  test_ou_stationary_moments();
  test_ou_determinism_and_injection();
  test_ou_tau_limits();
  test_event_aging();
  test_event_thermal();
  test_event_disturb();
  test_stream_determinism();
  test_policy_never();
  test_policy_fixed_interval();
  test_policy_threshold();
  test_lifetime_spec_json_and_key();
  test_lifetime_spec_rejection();
  test_fleet_study_spec_json();
  test_snapshot_roundtrip();
  test_chip_batch_env();
  {
    Session session;
    test_fleet_run_and_store(session);
  }

  std::error_code ec;
  fs::remove_all(store_dir, ec);
  return qavat::test::finish("test_lifetime");
}
