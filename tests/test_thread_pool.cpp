// Tier-1: the persistent work-stealing pool behind parallel_for —
// span-partition determinism vs the analytic chunk formula, nested
// dispatch bit-identity against serial for QAVAT_THREADS in {1,2,4,8},
// pool restart after set_num_threads (including env re-resolution),
// exception propagation out of a span, oversubscription bounds, and
// no-deadlock on deeply nested dispatch.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tensor/ops.h"
#include "tensor/parallel_for.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

// The chunk partition must match the analytic span formula exactly:
// span s of nspans = min(nt, nchunks) owns chunks
// [s*nchunks/nspans, (s+1)*nchunks/nspans), grain-aligned from `begin`,
// clamped to `end` — every index in exactly one chunk, regardless of
// which worker executes which span.
void check_partition(index_t begin, index_t end, index_t grain, index_t nt) {
  set_num_threads(nt);
  std::vector<std::pair<index_t, index_t>> got;
  std::mutex mu;
  parallel_for(begin, end, grain, [&](index_t lo, index_t hi) {
    std::lock_guard<std::mutex> lk(mu);
    got.emplace_back(lo, hi);
  });
  std::sort(got.begin(), got.end());

  const index_t total = end - begin;
  const index_t g = std::max<index_t>(grain, 1);
  const index_t nchunks = (total + g - 1) / g;
  const index_t nspans = std::min<index_t>(nt, nchunks);
  std::vector<std::pair<index_t, index_t>> want;
  if (total <= 0) {
    // empty range: no calls at all
  } else if (nspans <= 1) {
    want.emplace_back(begin, end);
  } else {
    for (index_t s = 0; s < nspans; ++s) {
      const index_t c0 = s * nchunks / nspans;
      const index_t c1 = (s + 1) * nchunks / nspans;
      const index_t lo = begin + c0 * g;
      const index_t hi = std::min(end, begin + c1 * g);
      if (lo < hi) want.emplace_back(lo, hi);
    }
  }
  CHECK(got == want);
  // Coverage: spans are contiguous and cover [begin, end) exactly.
  index_t cursor = begin;
  for (const auto& span : got) {
    CHECK(span.first == cursor);
    cursor = span.second;
  }
  CHECK(cursor == end);
}

void test_partition_determinism() {
  for (index_t nt : {index_t{1}, index_t{2}, index_t{4}, index_t{8}}) {
    check_partition(0, 1000, 64, nt);
    check_partition(0, 7, 1, nt);       // fewer chunks than threads
    check_partition(5, 5, 16, nt);      // empty range: no calls
    check_partition(-32, 96, 10, nt);   // negative begin, ragged tail
    check_partition(0, 1 << 14, 1, nt); // many chunks
  }
  set_num_threads(0);
}

// Nested dispatch bit-identity: a grouped GEMM big enough that both the
// outer per-group loop and the inner per-row dispatch engage must give
// byte-identical output for any thread count. groups=4, rows=256, k=64,
// n=160 puts each group at 2.6M MACs (>= the serial cutoff), so the
// inner dispatch really nests under the outer one.
void test_nested_bit_identity() {
  const index_t groups = 4, rows = 256, k = 64, n = 160;
  Rng rng(123);
  Tensor a({groups * rows, k}), b({groups * n, k});
  for (index_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.normal(0.0, 1.0));
  for (index_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.normal(0.0, 1.0));

  set_num_threads(1);
  Tensor ref({groups * rows, n});
  matmul_nt_batched_into(a, b, groups, ref);

  for (index_t nt : {index_t{2}, index_t{4}, index_t{8}}) {
    set_num_threads(nt);
    Tensor c({groups * rows, n});
    matmul_nt_batched_into(a, b, groups, c);
    CHECK(std::memcmp(ref.data(), c.data(),
                      static_cast<std::size_t>(ref.size()) * sizeof(float)) == 0);
    // Same check through the shared-A variant, which nests the same way.
    Tensor a1({rows, k});
    std::memcpy(a1.data(), a.data(),
                static_cast<std::size_t>(a1.size()) * sizeof(float));
    Tensor ref_s({groups * rows, n}), c_s({groups * rows, n});
    set_num_threads(1);
    matmul_nt_shared_into(a1, b, groups, ref_s);
    set_num_threads(nt);
    matmul_nt_shared_into(a1, b, groups, c_s);
    CHECK(std::memcmp(ref_s.data(), c_s.data(),
                      static_cast<std::size_t>(ref_s.size()) * sizeof(float)) == 0);
  }
  set_num_threads(0);
}

// set_num_threads stops the pool; the next dispatch respawns it at the
// new budget (live_workers = budget - 1). Unpinning with
// set_num_threads(0) must re-resolve QAVAT_THREADS from the environment.
void test_pool_restart() {
  set_num_threads(4);
  parallel_for(index_t{0}, index_t{16}, index_t{1}, [](index_t, index_t) {});
  CHECK(ThreadPool::instance().live_workers() == 3);

  set_num_threads(2);
  CHECK(ThreadPool::instance().live_workers() == 0);  // stopped, not respawned
  parallel_for(index_t{0}, index_t{16}, index_t{1}, [](index_t, index_t) {});
  CHECK(ThreadPool::instance().live_workers() == 1);

  setenv("QAVAT_THREADS", "3", 1);
  set_num_threads(0);  // unpin: next start re-reads the environment
  CHECK(num_threads() == 3);
  parallel_for(index_t{0}, index_t{16}, index_t{1}, [](index_t, index_t) {});
  CHECK(ThreadPool::instance().live_workers() == 2);
  unsetenv("QAVAT_THREADS");
  set_num_threads(0);
}

// An exception thrown inside a span cancels the job's remaining spans,
// propagates to the dispatching caller, and leaves the pool usable.
void test_exception_propagation() {
  set_num_threads(4);
  bool caught = false;
  try {
    parallel_for(index_t{0}, index_t{1024}, index_t{8},
                 [](index_t lo, index_t hi) {
                   if (lo <= 37 && 37 < hi) {
                     throw std::runtime_error("span failure at 37");
                   }
                 });
  } catch (const std::runtime_error& e) {
    caught = true;
    CHECK(std::string(e.what()) == "span failure at 37");
  }
  CHECK(caught);

  // Pool still healthy after the failed job: a follow-up dispatch
  // visits every index exactly once.
  std::atomic<index_t> visited{0};
  parallel_for(index_t{0}, index_t{1024}, index_t{8},
               [&](index_t lo, index_t hi) { visited += hi - lo; });
  CHECK(visited.load() == 1024);
  set_num_threads(0);
}

// Deeply nested dispatch: a depth-8 binary fan-out (256 leaves) must
// complete (no deadlock — the dispatcher helps and steals while
// waiting) and never run on more than num_threads() distinct threads
// (no oversubscription: nested calls enqueue, they do not spawn).
void test_deep_nesting() {
  set_num_threads(4);
  std::atomic<index_t> leaves{0};
  std::set<std::thread::id> tids;
  std::mutex mu;

  std::function<void(int)> fan = [&](int depth) {
    {
      std::lock_guard<std::mutex> lk(mu);
      tids.insert(std::this_thread::get_id());
    }
    if (depth == 0) {
      ++leaves;
      return;
    }
    parallel_for(index_t{0}, index_t{2}, index_t{1},
                 [&](index_t lo, index_t hi) {
                   for (index_t i = lo; i < hi; ++i) fan(depth - 1);
                 });
  };
  fan(8);
  CHECK(leaves.load() == 256);
  CHECK(static_cast<index_t>(tids.size()) <= num_threads());
  set_num_threads(0);
}

}  // namespace

int main() {
  test_partition_determinism();
  test_nested_bit_identity();
  test_pool_restart();
  test_exception_propagation();
  test_deep_nesting();
  return qavat::test::finish("test_thread_pool");
}
