// Tier-1: batched Monte-Carlo evaluation must produce per-chip accuracies
// IDENTICAL to sequential evaluation (same seeds), for every chip_batch,
// both variance models, with and without self-tuning, and for any thread
// count. Also covers the eval-only contract of the noise-batch axis.
#include <stdexcept>

#include "core/variability/variability.h"
#include "eval/evaluator.h"
#include "tensor/parallel_for.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

std::unique_ptr<Module> make_test_model(const SplitDataset& data) {
  ModelConfig mcfg;
  mcfg.a_bits = 4;
  mcfg.w_bits = 2;
  mcfg.in_channels = 1;
  mcfg.image_size = 12;
  mcfg.num_classes = data.test.num_classes;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  // Untrained weights are fine (we compare evaluations, not accuracy), but
  // exercise the full quantization pipeline: MMSE weight grids + a fixed
  // activation scale.
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.25f);
  }
  model->set_training(false);
  return model;
}

bool identical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;  // exact — the contract is bit-identity
  }
  return true;
}

}  // namespace

int main() {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 32;  // unused
  dcfg.n_test = 96;
  SplitDataset data = make_synth_digits(dcfg);
  auto model = make_test_model(data);

  EvalConfig base;
  base.n_chips = 6;
  base.max_test_samples = 96;
  base.batch_size = 32;
  base.seed = 777;

  SelfTuneConfig st_gtm;
  st_gtm.mode = SelfTuneMode::kGtm;
  SelfTuneConfig st_ltm;
  st_ltm.mode = SelfTuneMode::kGtmLtm;
  st_ltm.ltm_columns = 4;

  const VarianceModel vms[] = {VarianceModel::kWeightProportional,
                               VarianceModel::kLayerFixed};
  const SelfTuneConfig* tunes[] = {nullptr, &st_gtm, &st_ltm};

  for (VarianceModel vm : vms) {
    for (const SelfTuneConfig* st : tunes) {
      const VariabilityConfig vcfg = VariabilityConfig::mixed(vm, 0.4);
      EvalConfig seq = base;
      seq.chip_batch = 1;
      const EvalStats ref =
          evaluate_under_variability(*model, data.test, vcfg, seq, st);
      CHECK(static_cast<index_t>(ref.per_chip_acc.size()) == base.n_chips);

      // chip_batch 3 (even split), 4 (ragged last group), 5 (ragged
      // single-chip last group, which runs the scalar forward path), 0
      // (default 8, clamped to n_chips): all must reproduce the
      // sequential result.
      for (index_t cb : {index_t{3}, index_t{4}, index_t{5}, index_t{0}}) {
        EvalConfig batched = base;
        batched.chip_batch = cb;
        const EvalStats got =
            evaluate_under_variability(*model, data.test, vcfg, batched, st);
        CHECK(identical(got.per_chip_acc, ref.per_chip_acc));
        CHECK(got.accuracy.mean == ref.accuracy.mean);
        CHECK(got.accuracy.stddev == ref.accuracy.stddev);
      }

      // Thread-count independence of the batched path.
      const index_t saved = num_threads();
      set_num_threads(4);
      EvalConfig batched = base;
      batched.chip_batch = 3;
      const EvalStats mt =
          evaluate_under_variability(*model, data.test, vcfg, batched, st);
      set_num_threads(saved);
      CHECK(identical(mt.per_chip_acc, ref.per_chip_acc));
    }
  }

  // Zero-noise deployments must also agree (correction fields set but
  // inactive, identical across chips).
  {
    const VariabilityConfig off;  // sigma_w = sigma_b = 0
    EvalConfig seq = base;
    seq.chip_batch = 1;
    EvalConfig bat = base;
    bat.chip_batch = 4;
    const EvalStats a =
        evaluate_under_variability(*model, data.test, off, seq, &st_gtm);
    const EvalStats b =
        evaluate_under_variability(*model, data.test, off, bat, &st_gtm);
    CHECK(identical(a.per_chip_acc, b.per_chip_acc));
  }

  // The noise-batch axis is eval-only: a batched backward must throw, and
  // a forward whose row count does not divide by the batch must throw.
  {
    Rng rng(3);
    QuantLinear layer(12, 5, 4, 2, rng);
    layer.set_training(false);
    ensure_noise_batch(layer, 4);
    const VariabilityConfig vcfg =
        VariabilityConfig::within_only(VarianceModel::kWeightProportional, 0.3);
    Rng noise_rng(4);
    for (index_t s = 0; s < 4; ++s) {
      sample_variability_slot(layer, vcfg, noise_rng, s);
    }
    Tensor x({8, 12});
    fill_normal(x, rng);
    Tensor y = layer.forward(x);
    CHECK(y.dim(0) == 8 && y.dim(1) == 5);
    bool threw = false;
    try {
      layer.backward(y);
    } catch (const std::logic_error&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    Tensor bad({6, 12});
    try {
      layer.forward(bad);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  return qavat::test::finish("test_eval_batched");
}
