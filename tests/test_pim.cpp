// Tier-1: crossbar simulator equivalence — noise-free ideal-precision MVM
// matches the dense reference exactly, GTM estimation error shrinks like
// 1/sqrt(cells), DAC/ADC error shrinks with resolution.
#include "pim/chip.h"

#include "tests/test_common.h"

using namespace qavat;

int main() {
  Rng rng(2);
  Tensor w({9, 17});
  fill_normal(w, rng);
  std::vector<float> x(17);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  // Noise-free, infinite-precision crossbar == dense reference.
  CrossbarConfig clean_cfg;
  Rng prng(1);
  CrossbarArray clean(clean_cfg, w, 0.0, prng);
  auto y = clean.mvm(x);
  auto ref = clean.ideal_mvm(x);
  CHECK(y.size() == 9);
  for (std::size_t i = 0; i < y.size(); ++i) CHECK_NEAR(y[i], ref[i], 1e-4);

  // Known-weight sanity: 1x2 array computes a dot product.
  Tensor w2({1, 2});
  w2[0] = 0.5f;
  w2[1] = -0.25f;
  Rng prng2(1);
  CrossbarArray tiny(clean_cfg, w2, 0.0, prng2);
  auto yt = tiny.mvm({1.0f, 2.0f});
  CHECK_NEAR(yt[0], 0.0f, 1e-5);

  // GTM estimate converges to the chip's true eps_B as cells grow.
  CrossbarConfig noisy_cfg;
  noisy_cfg.variability =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.5);
  double rmse_small = 0.0, rmse_large = 0.0;
  const int chips = 80;
  for (int c = 0; c < chips; ++c) {
    PimChip chip(noisy_cfg, 33, c);
    auto g1 = chip.program_gtm(16, 1.0);
    auto g2 = chip.program_gtm(4096, 1.0);
    rmse_small += std::pow(chip.measure_eps_b(g1) - chip.eps_b(), 2);
    rmse_large += std::pow(chip.measure_eps_b(g2) - chip.eps_b(), 2);
  }
  rmse_small = std::sqrt(rmse_small / chips);
  rmse_large = std::sqrt(rmse_large / chips);
  CHECK(rmse_large < rmse_small);
  const double sigma_w = noisy_cfg.variability.sigma_w;
  CHECK_NEAR(rmse_small, sigma_w / std::sqrt(16.0), sigma_w / std::sqrt(16.0));
  CHECK(rmse_large < 3.0 * sigma_w / std::sqrt(4096.0));

  // DAC/ADC resolution: error shrinks as bits grow.
  double prev_err = 1e9;
  for (index_t bits : {index_t{3}, index_t{5}, index_t{8}}) {
    CrossbarConfig qcfg;
    qcfg.dac_bits = bits;
    qcfg.adc_bits = bits + 2;
    Rng prng3(1);
    CrossbarArray arr(qcfg, w, 0.0, prng3);
    auto yq = arr.mvm(x);
    double err = 0.0;
    for (std::size_t i = 0; i < yq.size(); ++i) {
      err = std::max(err, std::fabs(static_cast<double>(yq[i]) -
                                    static_cast<double>(ref[i])));
    }
    CHECK(err < prev_err + 1e-9);
    prev_err = err;
  }
  return qavat::test::finish("test_pim");
}
