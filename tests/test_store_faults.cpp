// Crash-safety tests for the artifact store's robustness layer
// (DESIGN.md §14): the work-claim lease protocol (atomic acquisition,
// exactly-one-winner under thread contention, stale-lease reclaim,
// token-checked release), the QAVAT_STORE_FAULT injection points
// (enospc, torn_write, corrupt_read, kill_before_rename — the last via
// a real fork()ed child dying mid-publish), quarantine-and-retrain
// healing through train_cached, the orphaned-tmp sweep, and the
// gc/verify/evict maintenance entry points the qavat-store CLI wraps.
// Runs against a private temp store (QAVAT_STORE_DIR set before any
// store call). Test order matters: the opportunistic-sweep test must
// own the process's first store operation, and the fork test runs
// before anything that starts compute threads.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synth.h"
#include "eval/experiment.h"
#include "eval/store.h"
#include "tensor/serialize.h"
#include "tests/test_common.h"

using namespace qavat;
namespace fs = std::filesystem;

namespace {

fs::path g_store_dir;

fs::path bucket_dir(const char* bucket) {
  return g_store_dir / "v1" / (fast_mode() ? "fast" : "full") / bucket;
}

fs::path artifact_path(const char* bucket, const std::string& key) {
  return bucket_dir(bucket) / store_key_filename(key);
}

void set_mtime_ago(const fs::path& p, std::chrono::seconds ago) {
  fs::last_write_time(p, fs::file_time_type::clock::now() - ago);
}

void plant_file(const fs::path& p, const std::string& bytes) {
  fs::create_directories(p.parent_path());
  std::ofstream os(p, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

long long quarantine_count() {
  long long n = 0;
  std::error_code ec;
  for (auto it = fs::directory_iterator(store_quarantine_dir(), ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) ++n;
  }
  return n;
}

StateDict sample_state() {
  StateDict sd;
  Tensor t({3, 4});
  for (index_t i = 0; i < t.size(); ++i) t[i] = 0.25f * static_cast<float>(i);
  sd.add_tensor("w", t);
  sd.add_scalar("scale", 0.12345678901234567);
  return sd;
}

// The process's FIRST store operation runs the opportunistic
// maintenance sweep: orphaned .tmp files older than the claim TTL are
// removed; younger ones (a live writer mid-publish) are spared.
void test_opportunistic_tmp_sweep() {
  const fs::path dir = bucket_dir("results");
  const fs::path old_tmp = dir / "orphan.tmp.1234";
  const fs::path young_tmp = dir / "inflight.tmp.5678";
  plant_file(old_tmp, "half-written");
  plant_file(young_tmp, "half-written");
  set_mtime_ago(old_tmp, std::chrono::seconds(3600));

  // First store op of the process triggers the once-per-process sweep.
  CHECK(store_save_doubles("results", "faults_sweep_probe", {1.0}));
  CHECK(!fs::exists(old_tmp));
  CHECK(fs::exists(young_tmp));
  CHECK(store_stats().tmp_swept >= 1);
  fs::remove(young_tmp);
}

void test_claim_basics() {
  const std::string key = "faults_claim_basics";
  const fs::path claim_file(artifact_path("results", key).string() +
                            ".claim");
  StoreClaimStatus st = StoreClaimStatus::kUnavailable;
  StoreClaim a = store_try_claim("results", key, &st);
  CHECK(a.held());
  CHECK(st == StoreClaimStatus::kAcquired);
  CHECK(fs::exists(claim_file));
  // A live lease (fresh heartbeat) blocks a second claimant — reported
  // as kBusy (backing off is productive), not kUnavailable.
  StoreClaim b = store_try_claim("results", key, &st);
  CHECK(!b.held());
  CHECK(st == StoreClaimStatus::kBusy);
  // Release removes the claim file; the key is claimable again.
  a.release();
  CHECK(!fs::exists(claim_file));
  StoreClaim c = store_try_claim("results", key);
  CHECK(c.held());
  // Move semantics transfer ownership; the destructor releases.
  StoreClaim d = std::move(c);
  CHECK(d.held() && !c.held());
}

// A claim whose holder stopped heartbeating (crashed) goes stale after
// the TTL and is reclaimed by the next claimant — while a fresh lease
// with the same content is left alone.
void test_stale_reclaim() {
  const std::string key = "faults_stale_reclaim";
  const fs::path claim(artifact_path("results", key).string() + ".claim");
  plant_file(claim, "qavat-claim 999999 deadhost deadbeef 0\n");
  set_mtime_ago(claim, std::chrono::seconds(3600));  // long past the TTL

  const long long reclaimed0 = store_stats().claims_reclaimed;
  StoreClaim a = store_try_claim("results", key);
  CHECK(a.held());
  CHECK(store_stats().claims_reclaimed == reclaimed0 + 1);
  a.release();

  // Same planted file with a fresh mtime is treated as live.
  plant_file(claim, "qavat-claim 999999 deadhost deadbeef 0\n");
  StoreClaim b = store_try_claim("results", key);
  CHECK(!b.held());
  CHECK(store_stats().claims_reclaimed == reclaimed0 + 1);
  fs::remove(claim);
}

// A store where claim files can never be created (here the bucket path
// is a plain file, so open() fails with ENOTDIR — the same shape as
// EACCES, a read-only root, or a persistently full disk) must report
// kUnavailable instead of masquerading as a live holder; waiters fall
// back to local compute instead of spinning forever.
void test_claim_unavailable() {
  plant_file(bucket_dir("faults_blocked_bucket"), "not a directory");
  StoreClaimStatus st = StoreClaimStatus::kAcquired;
  StoreClaim c = store_try_claim("faults_blocked_bucket", "anykey", &st);
  CHECK(!c.held());
  CHECK(st == StoreClaimStatus::kUnavailable);
  fs::remove(bucket_dir("faults_blocked_bucket"));
}

// A holder stalled past its TTL whose lease was reclaimed (simulated
// here by replacing the claim-file content with a foreign token) must
// not resurrect its lease: heartbeats verify the token before
// rewriting, mark the claim lost on mismatch, and release() refuses to
// delete the new holder's file.
void test_heartbeat_respects_reclaim() {
  ::setenv("QAVAT_CLAIM_TTL_S", "3", 1);  // heartbeat period 1 s
  const std::string key = "faults_hb_reclaim";
  const fs::path claim(artifact_path("results", key).string() + ".claim");
  StoreClaim a = store_try_claim("results", key);
  CHECK(a.held());
  // Replace the lease right after acquisition — well before the first
  // beat at t=1 s, so no in-flight refresh races the plant.
  plant_file(claim, "qavat-claim 4242 otherhost foreigntok 99\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(1300));
  // At least one beat ran; the foreign lease must be untouched…
  std::ifstream is(claim);
  std::string tag, pid, host, tok;
  CHECK(static_cast<bool>(is >> tag >> pid >> host >> tok));
  CHECK(tok == "foreigntok");
  is.close();
  // …and survive our release.
  a.release();
  CHECK(fs::exists(claim));
  fs::remove(claim);
  ::unsetenv("QAVAT_CLAIM_TTL_S");
}

// Eight threads race claim-compute-publish-release on one key through
// the store primitives: exactly one computes, everyone converges on the
// published artifact, bit-identically.
void test_concurrent_claims_one_winner() {
  const std::string key = "faults_concurrent_claims";
  const std::vector<double> payload = {1.5, -2.25, 3.0625};
  std::atomic<int> computed{0};
  std::atomic<bool> mismatch{false};

  auto worker = [&] {
    for (int attempt = 0;; ++attempt) {
      std::vector<double> got;
      if (store_load_doubles("results", key, &got)) {
        if (got != payload) mismatch.store(true);
        return;
      }
      StoreClaim claim = store_try_claim("results", key);
      if (claim.held()) {
        // Double-check after winning the claim (a previous holder may
        // have published between our probe and the acquisition).
        if (!store_load_doubles("results", key, &got)) {
          computed.fetch_add(1);
          CHECK(store_save_doubles("results", key, payload));
        }
        return;  // claim releases at scope exit
      }
      store_claim_backoff_wait(attempt);
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  CHECK(computed.load() == 1);
  CHECK(!mismatch.load());
  std::vector<double> final_got;
  CHECK(store_load_doubles("results", key, &final_got));
  CHECK(final_got == payload);
}

void test_enospc_fault() {
  ::setenv("QAVAT_STORE_FAULT", "enospc:1", 1);
  store_fault_reload();
  const StoreStats s0 = store_stats();
  // First write fails as if the disk were full; the store degrades
  // gracefully (false return, counter) rather than aborting.
  CHECK(!store_save_doubles("results", "faults_enospc", {4.0}));
  CHECK(store_stats().writes_failed == s0.writes_failed + 1);
  CHECK(store_stats().faults_injected == s0.faults_injected + 1);
  std::vector<double> got;
  CHECK(!store_load_doubles("results", "faults_enospc", &got));
  // The fault is one-shot: the retry lands.
  CHECK(store_save_doubles("results", "faults_enospc", {4.0}));
  CHECK(store_load_doubles("results", "faults_enospc", &got));
  CHECK(got == std::vector<double>{4.0});
  ::unsetenv("QAVAT_STORE_FAULT");
  store_fault_reload();
}

void test_torn_write_quarantines() {
  ::setenv("QAVAT_STORE_FAULT", "torn_write:1", 1);
  store_fault_reload();
  const std::string key = "faults_torn_write";
  // The torn publish "succeeds" — that is the point: the corruption is
  // only discovered at load time, where it must quarantine, not crash.
  CHECK(store_save_state("models", key, sample_state()));
  ::unsetenv("QAVAT_STORE_FAULT");
  store_fault_reload();

  const StoreStats s0 = store_stats();
  const long long q0 = quarantine_count();
  StateDict out;
  StoreLoadOutcome outcome = StoreLoadOutcome::kHit;
  CHECK(!store_load_state("models", key, &out, &outcome));
  CHECK(outcome == StoreLoadOutcome::kCorrupt);
  CHECK(store_stats().loads_corrupt == s0.loads_corrupt + 1);
  CHECK(quarantine_count() == q0 + 1);
  CHECK(!fs::exists(artifact_path("models", key)));  // moved aside
  // The slot is a plain miss now; a clean rewrite heals it.
  outcome = StoreLoadOutcome::kHit;
  CHECK(!store_load_state("models", key, &out, &outcome));
  CHECK(outcome == StoreLoadOutcome::kMiss);
  CHECK(store_save_state("models", key, sample_state()));
  CHECK(store_load_state("models", key, &out));
}

void test_corrupt_read_fault() {
  const std::string key = "faults_corrupt_read";
  CHECK(store_save_state("models", key, sample_state()));
  ::setenv("QAVAT_STORE_FAULT", "corrupt_read:1", 1);
  store_fault_reload();
  const SerializeReadStats r0 = serialize_read_stats();
  const long long q0 = quarantine_count();
  StateDict out;
  StoreLoadOutcome outcome = StoreLoadOutcome::kHit;
  // One flipped byte in the read-back bytes must fail the envelope
  // checksum — detected, counted, quarantined.
  CHECK(!store_load_state("models", key, &out, &outcome));
  CHECK(outcome == StoreLoadOutcome::kCorrupt);
  CHECK(serialize_read_stats().envelopes_failed > r0.envelopes_failed);
  CHECK(quarantine_count() == q0 + 1);
  ::unsetenv("QAVAT_STORE_FAULT");
  store_fault_reload();
}

// A worker killed between the tmp write and the publishing rename (the
// classic crash window) leaves a tmp file and a held claim — both must
// be recoverable: the claim goes stale and is reclaimed, the tmp file
// is swept by gc.
void test_kill_before_rename() {
  const std::string key = "faults_kill_mid_publish";
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::setenv("QAVAT_STORE_FAULT", "kill_before_rename:1", 1);
    store_fault_reload();
    StoreClaim claim = store_try_claim("results", key);
    if (!claim.held()) ::_exit(7);
    store_save_doubles("results", key, {5.0, 6.0});  // dies inside
    ::_exit(9);  // unreachable when the fault fires
  }
  CHECK(pid > 0);
  int status = 0;
  CHECK(::waitpid(pid, &status, 0) == pid);
  CHECK(WIFEXITED(status) && WEXITSTATUS(status) == kFaultKillExitCode);

  // The artifact was never published; the dead child's claim survives.
  std::vector<double> got;
  CHECK(!store_load_doubles("results", key, &got));
  const fs::path claim(artifact_path("results", key).string() + ".claim");
  CHECK(fs::exists(claim));
  // A live-TTL claimant is blocked (the lease looks fresh)…
  StoreClaim blocked = store_try_claim("results", key);
  CHECK(!blocked.held());
  // …but with the TTL elapsed (0 makes every lease instantly stale) the
  // next claimant reclaims it and work proceeds.
  ::setenv("QAVAT_CLAIM_TTL_S", "0", 1);
  const long long reclaimed0 = store_stats().claims_reclaimed;
  StoreClaim taken = store_try_claim("results", key);
  CHECK(taken.held());
  CHECK(store_stats().claims_reclaimed == reclaimed0 + 1);
  CHECK(store_save_doubles("results", key, {5.0, 6.0}));
  taken.release();
  ::unsetenv("QAVAT_CLAIM_TTL_S");
  CHECK(store_load_doubles("results", key, &got));

  // The dead child's tmp dropping is swept by gc (age floor 0).
  const StoreGcResult gc = store_gc(0.0, false);
  CHECK(gc.tmp_removed >= 1);
}

// End-to-end healing: corrupt persisted model artifacts force a
// retrain (counted as retrains_after_corruption), reproduce the
// original numbers deterministically, and leave healed artifacts.
void test_retrain_after_corruption() {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 96;
  dcfg.n_test = 48;
  SplitDataset data = make_synth_digits(dcfg);
  const ModelKind kind = ModelKind::kLeNet5s;
  ModelConfig mcfg = default_model_config(kind, 4, 2);
  TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.train_noise = VariabilityConfig::within_only(
      VarianceModel::kWeightProportional, 0.3);

  const index_t runs0 = training_runs();
  TrainedModel cold = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(cold.trained);
  CHECK(training_runs() == runs0 + 2);  // pretrain + fine-tune

  // Truncate every persisted training artifact. This suite's
  // hand-planted "faults_*" artifacts are nobody's retrain
  // responsibility and must stay intact (the final verify sweep asserts
  // nothing in the store is corrupt).
  clear_experiment_caches();
  index_t damaged = 0;
  for (const auto& entry : fs::recursive_directory_iterator(
           bucket_dir("models"))) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().filename().string().rfind("faults_", 0) == 0) continue;
    fs::resize_file(entry.path(), entry.file_size() / 2);
    ++damaged;
  }
  CHECK(damaged >= 2);

  const StoreStats s0 = store_stats();
  const long long q0 = quarantine_count();
  TrainedModel healed = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(healed.trained);
  CHECK(training_runs() == runs0 + 4);
  CHECK(healed.clean_test_acc == cold.clean_test_acc);  // deterministic
  CHECK(store_stats().loads_corrupt >= s0.loads_corrupt + 2);
  CHECK(store_stats().retrains_after_corruption >=
        s0.retrains_after_corruption + 2);
  CHECK(quarantine_count() >= q0 + 2);  // evidence preserved

  // Artifacts healed: a cold-memory rerun is a pure store hit.
  clear_experiment_caches();
  TrainedModel warm = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(!warm.trained);
  CHECK(warm.from_store);
  CHECK(training_runs() == runs0 + 4);
}

void test_gc_verify_evict() {
  // Everything surviving the suite so far must validate.
  StoreVerifyResult v = store_verify_all(false);
  for (const std::string& p : v.corrupt_paths) {
    std::printf("unexpected corrupt artifact: %s\n", p.c_str());
  }
  CHECK(v.corrupt == 0);
  CHECK(v.ok >= 3);

  // A planted unreadable artifact is found, reported and (with the
  // flag) quarantined.
  const fs::path bad = bucket_dir("models") / "planted_garbage";
  plant_file(bad, "QVSD this is not a state dict");
  v = store_verify_all(false);
  CHECK(v.corrupt == 1);
  CHECK(v.corrupt_paths.size() == 1 && fs::exists(bad));
  const long long q0 = quarantine_count();
  v = store_verify_all(true);
  CHECK(v.corrupt == 1);
  CHECK(!fs::exists(bad));
  CHECK(quarantine_count() == q0 + 1);
  CHECK(store_verify_all(false).corrupt == 0);

  // gc removes old claims/tmp but spares artifacts; --evict-quarantine
  // empties the quarantine.
  const fs::path stale_claim = bucket_dir("results") / "gc_probe.claim";
  const fs::path stale_tmp = bucket_dir("results") / "gc_probe.tmp.42";
  plant_file(stale_claim, "qavat-claim 1 host tok 0\n");
  plant_file(stale_tmp, "junk");
  set_mtime_ago(stale_claim, std::chrono::seconds(3600));
  set_mtime_ago(stale_tmp, std::chrono::seconds(3600));
  const StoreGcResult gc = store_gc(1800.0, false);
  CHECK(gc.claims_removed >= 1);
  CHECK(gc.tmp_removed >= 1);
  CHECK(!fs::exists(stale_claim) && !fs::exists(stale_tmp));
  CHECK(store_verify_all(false).ok >= 3);  // artifacts untouched
  // The age floor guards quarantine too; a zero-age pass empties it.
  CHECK(quarantine_count() > 0);
  const StoreGcResult gcq = store_gc(0.0, true);
  CHECK(gcq.quarantine_removed >= 1);
  CHECK(quarantine_count() == 0);

  // evict removes only artifacts older than the horizon.
  const fs::path victim = artifact_path("results", "faults_enospc");
  CHECK(fs::exists(victim));
  set_mtime_ago(victim, std::chrono::seconds(3600));
  CHECK(store_evict_older_than(1800.0) >= 1);
  CHECK(!fs::exists(victim));
  std::vector<double> got;
  CHECK(store_load_doubles("results", "faults_sweep_probe", &got));  // young
}

// End-to-end fail-soft: with the store rooted at a path that can never
// hold files (a plain file), the read-through caches must compute
// locally — before the kUnavailable status existed, claim_or_load spun
// forever here, probing a miss and re-trying a claim that could never
// be created.
void test_unwritable_store_computes_locally() {
  const fs::path bogus_root = g_store_dir / "not_a_dir";
  plant_file(bogus_root, "plain file, not a store root");
  ::setenv("QAVAT_STORE_DIR", bogus_root.c_str(), 1);
  const double got =
      with_result_cache("faults_unwritable_store", [] { return 42.5; });
  CHECK(got == 42.5);
  ::setenv("QAVAT_STORE_DIR", g_store_dir.c_str(), 1);
  fs::remove(bogus_root);
}

void test_fsync_mode_roundtrip() {
  // QAVAT_STORE_FSYNC=1 changes durability, never results.
  ::setenv("QAVAT_STORE_FSYNC", "1", 1);
  CHECK(store_save_doubles("results", "faults_fsync", {7.75}));
  std::vector<double> got;
  CHECK(store_load_doubles("results", "faults_fsync", &got));
  CHECK(got == std::vector<double>{7.75});
  ::unsetenv("QAVAT_STORE_FSYNC");
}

}  // namespace

int main() {
  // Private store for this binary; set before any store access. Short
  // backoff so contention tests spin fast.
  g_store_dir = fs::temp_directory_path() /
                ("qavat_test_store_faults_" + std::to_string(::getpid()));
  ::setenv("QAVAT_STORE_DIR", g_store_dir.c_str(), 1);
  ::setenv("QAVAT_CLAIM_BACKOFF_MS", "5", 1);
  CHECK(store_enabled());
  store_stats_reset();

  test_opportunistic_tmp_sweep();  // must own the first store operation
  test_claim_basics();
  test_claim_unavailable();
  test_stale_reclaim();
  test_concurrent_claims_one_winner();
  test_enospc_fault();
  test_torn_write_quarantines();
  test_corrupt_read_fault();
  test_kill_before_rename();  // fork: before anything spawning threads
  test_retrain_after_corruption();
  test_gc_verify_evict();
  test_heartbeat_respects_reclaim();  // ~1.3 s sleep: keep it late
  test_unwritable_store_computes_locally();
  test_fsync_mode_roundtrip();

  std::error_code ec;
  fs::remove_all(g_store_dir, ec);
  return qavat::test::finish("test_store_faults");
}
