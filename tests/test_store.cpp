// Serialization + artifact-store tests: Tensor/StateDict/Module
// save->load bit-identity, ScenarioSpec JSON round-trip and key
// stability, read-through cache behavior, corrupted/partial-file
// recovery (the store falls back to retraining, never crashes), and
// clear_experiment_caches(drop_disk). Runs against a private temp store
// (QAVAT_STORE_DIR is set before any store call), so it never touches
// other tests' artifacts.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "eval/runner.h"
#include "eval/scenario.h"
#include "eval/store.h"
#include "tensor/serialize.h"
#include "tests/test_common.h"

using namespace qavat;
namespace fs = std::filesystem;

namespace {

bool tensors_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

Tensor random_tensor(std::vector<index_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (index_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

void test_tensor_roundtrip() {
  Rng rng(1);
  for (const auto& shape : {std::vector<index_t>{7},
                            std::vector<index_t>{3, 5},
                            std::vector<index_t>{2, 3, 4, 5},
                            std::vector<index_t>{1, 1, 1}}) {
    const Tensor t = random_tensor(shape, rng);
    std::stringstream ss;
    save_tensor(ss, t);
    Tensor back;
    CHECK(load_tensor(ss, &back));
    CHECK(tensors_equal(t, back));
  }
  // Empty tensor round-trips too.
  std::stringstream ss;
  save_tensor(ss, Tensor{});
  Tensor back;
  CHECK(load_tensor(ss, &back));
  CHECK(back.size() == 0);
}

void test_state_dict_roundtrip_and_corruption() {
  Rng rng(2);
  StateDict sd;
  sd.add_tensor("w", random_tensor({4, 9}, rng));
  sd.add_tensor("b", random_tensor({4}, rng));
  sd.add_scalar("scale", 0.12345678901234567);
  sd.add_scalar("flag", 1.0);

  std::stringstream ss;
  save_state_dict(ss, sd);
  const std::string bytes = ss.str();

  StateDict back;
  CHECK(load_state_dict(ss, &back));
  CHECK(back.tensors.size() == 2);
  CHECK(back.scalars.size() == 2);
  CHECK(back.find_tensor("w") != nullptr &&
        tensors_equal(*back.find_tensor("w"), *sd.find_tensor("w")));
  CHECK(back.find_scalar("scale") != nullptr &&
        *back.find_scalar("scale") == 0.12345678901234567);

  // Truncation at every prefix length must fail cleanly, never crash.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{11},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream trunc(bytes.substr(0, cut));
    StateDict out;
    CHECK(!load_state_dict(trunc, &out));
  }
  // A flipped payload byte must fail the checksum.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x5a;
  std::stringstream cs(corrupt);
  StateDict out;
  CHECK(!load_state_dict(cs, &out));
  // Wrong magic.
  std::string wrong = bytes;
  wrong[0] = 'X';
  std::stringstream ws(wrong);
  CHECK(!load_state_dict(ws, &out));
}

void test_module_state_roundtrip() {
  ModelConfig mcfg = default_model_config(ModelKind::kLeNet5s, 4, 2);
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.5f);
  }
  model->set_training(false);

  std::stringstream ss;
  save_state_dict(ss, module_state_dict(*model));
  StateDict sd;
  CHECK(load_state_dict(ss, &sd));

  auto restored = make_model(ModelKind::kLeNet5s, mcfg);
  CHECK(load_module_state(*restored, sd));

  // Save -> load -> eval bit-identity: identical logits on a batch.
  Rng rng(3);
  Tensor x = random_tensor({4, 1, 12, 12}, rng);
  Tensor y1 = model->forward(x);
  Tensor y2 = restored->forward(x);
  CHECK(tensors_equal(y1, y2));

  // A mismatched target model must be rejected, not clobbered.
  ModelConfig other = mcfg;
  other.a_bits = 8;
  auto wrong = make_model(ModelKind::kLeNet5s, other);
  CHECK(!load_module_state(*wrong, sd));
}

void test_scenario_json_and_key() {
  ScenarioSpec spec;
  spec.model = ModelKind::kVGG11s;
  spec.model_cfg = default_model_config(ModelKind::kVGG11s, 8, 4);
  spec.algo = ScenarioAlgo::kQAVAT;
  spec.train.epochs = 3;
  spec.train.lr = 3e-3;
  spec.train.n_variation_samples = 5;
  spec.train.train_noise = VariabilityConfig::within_only(
      VarianceModel::kWeightProportional, 0.3);
  spec.deploy = VariabilityConfig::mixed(VarianceModel::kWeightProportional,
                                         0.3);
  spec.with_selftune(SelfTuneMode::kGtm, 1000, 1);
  spec.eval.n_chips = 8;
  spec.eval.max_test_samples = 200;
  spec.fast = true;

  // Key stability: this exact string is the persisted artifact identity;
  // changing it silently orphans every existing store. Bump
  // kScenarioSchemaVersion when the format must change.
  const std::string expect =
      "v1_vgg11s_A8W4_QAVAT_m[c3s16k10i77]"
      "_tr[e3_lr0.003_bs32_n5_rp1_su1_sd1_wpw0.3b0]"
      "_dp[wpw0.212132034356b0.212132034356]"
      "_st[gtm_g1000_l1]_ev[c8_t200_s1000_wd]_fast";
  if (spec.key() != expect) {
    std::printf("key mismatch:\n  got    %s\n  expect %s\n",
                spec.key().c_str(), expect.c_str());
  }
  CHECK(spec.key() == expect);

  // JSON round-trip preserves every keyed field and the exact key.
  ScenarioSpec back;
  CHECK(ScenarioSpec::from_json(spec.to_json(), &back));
  CHECK(back.key() == spec.key());
  CHECK(back.train.lr == spec.train.lr);
  CHECK(back.deploy.sigma_w == spec.deploy.sigma_w);
  CHECK(back.eval.n_chips == spec.eval.n_chips);
  CHECK(back.selftune.mode == SelfTuneMode::kGtm);
  CHECK(back.fast);

  // Malformed documents are rejected.
  CHECK(!ScenarioSpec::from_json("", &back));
  CHECK(!ScenarioSpec::from_json("{", &back));
  CHECK(!ScenarioSpec::from_json("{\"schema\":999}", &back));
  CHECK(!ScenarioSpec::from_json("{\"schema\":1,\"model\":\"nope\"}", &back));

  // The key separates what must never collide.
  ScenarioSpec full = spec;
  full.fast = false;
  CHECK(full.key() != spec.key());
  ScenarioSpec circuit = spec;
  circuit.eval.backend = EvalBackend::kCircuit;
  circuit.eval.tile_size = 128;
  CHECK(circuit.key() != spec.key());
  ScenarioSpec qat = spec;
  qat.algo = ScenarioAlgo::kQAT;
  CHECK(qat.key() != spec.key());
}

void test_store_read_through() {
  int calls = 0;
  const double v1 = with_result_cache("test_store_rt", [&] {
    ++calls;
    return 42.5;
  });
  CHECK(v1 == 42.5 && calls == 1);
  // Memory hit.
  const double v2 = with_result_cache("test_store_rt", [&] {
    ++calls;
    return -1.0;
  });
  CHECK(v2 == 42.5 && calls == 1);
  // Disk hit after dropping the memory cache.
  clear_experiment_caches();
  const double v3 = with_result_cache("test_store_rt", [&] {
    ++calls;
    return -1.0;
  });
  CHECK(v3 == 42.5 && calls == 1);

  // Same contract for the full-eval cache, via the per-chip vector.
  EvalStats stats;
  stats.per_chip_acc = {0.5, 0.25, 1.0};
  stats.n_chips = 3;
  stats.accuracy = Stats::from(stats.per_chip_acc);
  bool computed = false;
  EvalStats got = with_eval_cache(
      "test_store_eval", [&] { return stats; }, &computed);
  CHECK(computed);
  clear_experiment_caches();
  got = with_eval_cache(
      "test_store_eval",
      [&] {
        ++calls;
        return EvalStats{};
      },
      &computed);
  CHECK(!computed && calls == 1);
  CHECK(got.n_chips == 3);
  CHECK(got.per_chip_acc == stats.per_chip_acc);
  CHECK(got.accuracy.mean == stats.accuracy.mean);
  CHECK(got.accuracy.stddev == stats.accuracy.stddev);
}

void test_train_cached_store(const fs::path& store_dir) {
  // Tiny workload so the test trains in well under a second.
  SynthDigitsConfig dcfg;
  dcfg.n_train = 96;
  dcfg.n_test = 48;
  SplitDataset data = make_synth_digits(dcfg);
  const ModelKind kind = ModelKind::kLeNet5s;
  ModelConfig mcfg = default_model_config(kind, 4, 2);
  TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.train_noise = VariabilityConfig::within_only(
      VarianceModel::kWeightProportional, 0.3);

  const index_t runs0 = training_runs();
  TrainedModel cold = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(cold.trained);
  CHECK(training_runs() == runs0 + 2);  // pretrain + fine-tune

  // Warm path: drop the memory cache, reload from disk — zero training,
  // bit-identical parameters.
  clear_experiment_caches();
  TrainedModel warm = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(!warm.trained);
  CHECK(warm.from_store);
  CHECK(training_runs() == runs0 + 2);
  CHECK(warm.clean_test_acc == cold.clean_test_acc);
  auto pc = cold.model->parameters();
  auto pw = warm.model->parameters();
  CHECK(pc.size() == pw.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    CHECK(tensors_equal(pc[i]->value, pw[i]->value));
  }

  // Corrupt every persisted model artifact (truncate to half): the store
  // must fall back to retraining — never crash, never return garbage —
  // and heal the artifacts.
  clear_experiment_caches();
  index_t damaged = 0;
  const fs::path models_dir =
      store_dir / "v1" / (fast_mode() ? "fast" : "full") / "models";
  CHECK(fs::exists(models_dir));
  for (const auto& entry : fs::recursive_directory_iterator(models_dir)) {
    if (!entry.is_regular_file()) continue;
    const auto size = entry.file_size();
    fs::resize_file(entry.path(), size / 2);
    ++damaged;
  }
  CHECK(damaged >= 2);  // pretrain + fine-tuned artifacts exist
  TrainedModel healed = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(healed.trained);
  CHECK(training_runs() == runs0 + 4);  // both phases retrained
  CHECK(healed.clean_test_acc == cold.clean_test_acc);  // deterministic retrain
  clear_experiment_caches();
  TrainedModel rewarmed = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(!rewarmed.trained);  // artifacts healed
  CHECK(training_runs() == runs0 + 4);

  // drop_disk wipes the schema subtree.
  clear_experiment_caches(/*drop_disk=*/true);
  CHECK(!fs::exists(store_dir / "v1"));
  TrainedModel recold = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  CHECK(recold.trained);
  CHECK(training_runs() == runs0 + 6);
}

void test_key_filename() {
  // Safe keys map to themselves.
  CHECK(store_key_filename("v1_lenet5s_A4W2_tr[e2]_fast") ==
        "v1_lenet5s_A4W2_tr[e2]_fast");
  // Unsafe characters are mapped away and disambiguated by a hash.
  const std::string slashed = store_key_filename("a/b/../c");
  CHECK(slashed.find('/') == std::string::npos);
  CHECK(slashed != store_key_filename("a-b-..-c"));  // hash disambiguates
  // Over-long keys are capped below filesystem limits.
  const std::string long_key(400, 'k');
  CHECK(store_key_filename(long_key).size() < 255);
  CHECK(store_key_filename(long_key) !=
        store_key_filename(long_key + "x"));
}

}  // namespace

int main() {
  // Private store for this test binary; set before any store access.
  const fs::path store_dir =
      fs::temp_directory_path() /
      ("qavat_test_store_" + std::to_string(::getpid()));
  ::setenv("QAVAT_STORE_DIR", store_dir.c_str(), 1);
  CHECK(store_enabled());

  test_tensor_roundtrip();
  test_state_dict_roundtrip_and_corruption();
  test_module_state_roundtrip();
  test_scenario_json_and_key();
  test_store_read_through();
  test_train_cached_store(store_dir);
  test_key_filename();

  // QAVAT_STORE=0 disables persistence entirely.
  ::setenv("QAVAT_STORE", "0", 1);
  CHECK(!store_enabled());
  clear_experiment_caches();
  int calls = 0;
  with_result_cache("test_store_disabled", [&] {
    ++calls;
    return 1.0;
  });
  clear_experiment_caches();
  with_result_cache("test_store_disabled", [&] {
    ++calls;
    return 1.0;
  });
  CHECK(calls == 2);  // no disk backing while disabled
  ::unsetenv("QAVAT_STORE");

  std::error_code ec;
  fs::remove_all(store_dir, ec);
  return qavat::test::finish("test_store");
}
