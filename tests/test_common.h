// Tiny assertion harness for the tier-1 unit tests: CHECK records a
// failure and keeps going; the test main returns nonzero if anything
// failed so ctest reports it.
#pragma once

#include <cmath>
#include <cstdio>

namespace qavat {
namespace test {

inline int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);       \
      ++qavat::test::failures;                                          \
    }                                                                   \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                           \
  do {                                                                  \
    const double a_ = (a), b_ = (b), tol_ = (tol);                      \
    if (!(std::fabs(a_ - b_) <= tol_)) {                                \
      std::printf("FAIL %s:%d: |%s - %s| = |%g - %g| > %g\n", __FILE__, \
                  __LINE__, #a, #b, a_, b_, tol_);                      \
      ++qavat::test::failures;                                          \
    }                                                                   \
  } while (0)

inline int finish(const char* name) {
  if (qavat::test::failures == 0) {
    std::printf("%s: all checks passed\n", name);
    return 0;
  }
  std::printf("%s: %d check(s) FAILED\n", name, qavat::test::failures);
  return 1;
}

}  // namespace test
}  // namespace qavat
