// ScenarioSpec JSON contract tests: property-style round-trip over
// to_json/from_json — perturb every serialized field (including every
// enum token) and require key() and the re-encoded JSON to be
// bit-identical — plus the rejection side: malformed documents,
// unknown enum tokens and schema mismatches must return false, leave
// *out untouched, and name the offending field in the error string.
// Also covers the SweepManifest document built on top (lossless
// round-trip, per-entry validation with "specs[i]: ..." attribution).
// Runs with QAVAT_STORE=0; nothing here trains or touches disk except
// the manifest save/load round-trip (a private temp file).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "eval/manifest.h"
#include "eval/scenario.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

// A spec with every field off its default, so "untouched on failure"
// comparisons can't pass by accident.
ScenarioSpec distinctive_spec() {
  ScenarioSpec s = ScenarioSpec::mixed(ModelKind::kVGG11s, 8, 4,
                                       ScenarioAlgo::kQAVAT,
                                       VarianceModel::kWeightProportional,
                                       0.3);
  s.with_selftune(SelfTuneMode::kGtmLtm, 512, 3);
  s.model_cfg.init_seed = 0xDEADBEEFCAFEBABEull;
  s.train.seed = 0xFEEDFACE12345678ull;
  s.train.lr = 0.0012345678901234567;
  s.eval.seed = 0xABCDEF0123456789ull;
  s.eval.backend = EvalBackend::kCircuit;
  s.eval.tile_size = 32;
  s.fast = true;
  return s;
}

// The round-trip property: parse(to_json()) must reproduce the spec's
// identity exactly — same canonical key, same re-encoded document.
void check_roundtrip(const ScenarioSpec& s, const char* what) {
  ScenarioSpec back;
  std::string err;
  if (!ScenarioSpec::from_json(s.to_json(), &back, &err)) {
    std::printf("FAIL roundtrip(%s): parse rejected: %s\n", what, err.c_str());
    ++qavat::test::failures;
    return;
  }
  if (back.key() != s.key()) {
    std::printf("FAIL roundtrip(%s): key mismatch\n  %s\n  %s\n", what,
                s.key().c_str(), back.key().c_str());
    ++qavat::test::failures;
  }
  if (back.to_json() != s.to_json()) {
    std::printf("FAIL roundtrip(%s): re-encoded JSON differs\n", what);
    ++qavat::test::failures;
  }
  CHECK(err.empty());
}

void test_roundtrip_field_sweep() {
  // Base cases through the named constructors.
  check_roundtrip(ScenarioSpec::base(ModelKind::kLeNet5s, 2, 2,
                                     ScenarioAlgo::kQAT),
                  "base");
  check_roundtrip(distinctive_spec(), "distinctive");

  // One perturbation per serialized field: each mutation must survive
  // the round trip on its own (catches any field to_json forgets or
  // from_json misroutes).
  std::vector<ScenarioSpec> cases;
  auto add = [&](void (*mut)(ScenarioSpec&)) {
    ScenarioSpec s = ScenarioSpec::within(ModelKind::kLeNet5s, 4, 4,
                                          ScenarioAlgo::kQAVAT,
                                          VarianceModel::kLayerFixed, 0.25);
    mut(s);
    cases.push_back(s);
  };
  add([](ScenarioSpec& s) { s.fast = !s.fast; });
  add([](ScenarioSpec& s) { s.model_cfg.a_bits = 7; });
  add([](ScenarioSpec& s) { s.model_cfg.w_bits = 3; });
  add([](ScenarioSpec& s) { s.model_cfg.in_channels = 5; });
  add([](ScenarioSpec& s) { s.model_cfg.image_size = 17; });
  add([](ScenarioSpec& s) { s.model_cfg.num_classes = 13; });
  add([](ScenarioSpec& s) { s.model_cfg.init_seed = 0xFFFFFFFFFFFFFFFFull; });
  add([](ScenarioSpec& s) { s.train.epochs = 9; });
  add([](ScenarioSpec& s) { s.train.lr = 1.9999999999999998e-3; });
  add([](ScenarioSpec& s) { s.train.batch_size = 5; });
  add([](ScenarioSpec& s) { s.train.n_variation_samples = 4; });
  add([](ScenarioSpec& s) { s.train.reparam = !s.train.reparam; });
  add([](ScenarioSpec& s) {
    s.train.scale_update = ScaleUpdatePolicy::kInitOnly;
  });
  add([](ScenarioSpec& s) { s.train.seed = 0x8000000000000001ull; });
  add([](ScenarioSpec& s) { s.train.train_noise.sigma_w = 0.0625; });
  add([](ScenarioSpec& s) { s.train.train_noise.sigma_b = 0.031250000000000003; });
  add([](ScenarioSpec& s) {
    s.train.train_noise.model = VarianceModel::kWeightProportional;
  });
  add([](ScenarioSpec& s) { s.deploy.sigma_w = 0.4499999999999999; });
  add([](ScenarioSpec& s) { s.deploy.sigma_b = 0.125; });
  add([](ScenarioSpec& s) {
    s.deploy.model = VarianceModel::kWeightProportional;
  });
  add([](ScenarioSpec& s) { s.selftune.mode = SelfTuneMode::kGtm; });
  add([](ScenarioSpec& s) {
    s.selftune.mode = SelfTuneMode::kGtmLtm;
    s.selftune.gtm_cells = 77;
    s.selftune.ltm_columns = 2;
  });
  add([](ScenarioSpec& s) { s.eval.n_chips = 11; });
  add([](ScenarioSpec& s) { s.eval.max_test_samples = 123; });
  add([](ScenarioSpec& s) { s.eval.batch_size = 7; });
  add([](ScenarioSpec& s) { s.eval.seed = 0x123456789ABCDEF0ull; });
  add([](ScenarioSpec& s) { s.eval.chip_batch = 3; });
  add([](ScenarioSpec& s) { s.eval.tile_size = 64; });
  for (const ScenarioSpec& s : cases) check_roundtrip(s, "field perturbation");

  // Every enum token through every enum field.
  for (ModelKind k :
       {ModelKind::kLeNet5s, ModelKind::kVGG11s, ModelKind::kResNet18s}) {
    ScenarioSpec s = ScenarioSpec::base(k, 4, 4, ScenarioAlgo::kQAT);
    check_roundtrip(s, "model token");
  }
  for (ScenarioAlgo a :
       {ScenarioAlgo::kPTQVAT, ScenarioAlgo::kQAT, ScenarioAlgo::kQAVAT}) {
    check_roundtrip(ScenarioSpec::within(ModelKind::kLeNet5s, 4, 4, a,
                                         VarianceModel::kLayerFixed, 0.1),
                    "algo token");
  }
  for (EvalBackend b :
       {EvalBackend::kWeightDomain, EvalBackend::kCircuit, EvalBackend::kInt8}) {
    ScenarioSpec s = ScenarioSpec::base(ModelKind::kLeNet5s, 4, 4,
                                        ScenarioAlgo::kQAVAT);
    s.eval.backend = b;
    check_roundtrip(s, "backend token");
  }
  for (SelfTuneMode m :
       {SelfTuneMode::kNone, SelfTuneMode::kGtm, SelfTuneMode::kGtmLtm}) {
    ScenarioSpec s = ScenarioSpec::base(ModelKind::kLeNet5s, 4, 4,
                                        ScenarioAlgo::kQAVAT);
    s.selftune.mode = m;
    check_roundtrip(s, "selftune token");
  }
}

// Rejection helper: parsing `doc` must fail, leave the pre-filled spec
// byte-identical, and mention `expect_in_error` in the error string.
void check_rejected(const std::string& doc, const char* expect_in_error) {
  ScenarioSpec out = distinctive_spec();
  const std::string before = out.to_json();
  std::string err;
  if (ScenarioSpec::from_json(doc, &out, &err)) {
    std::printf("FAIL: accepted bad doc: %s\n", doc.c_str());
    ++qavat::test::failures;
    return;
  }
  if (out.to_json() != before) {
    std::printf("FAIL: *out modified by failed parse of: %s\n", doc.c_str());
    ++qavat::test::failures;
  }
  if (err.find(expect_in_error) == std::string::npos) {
    std::printf("FAIL: error '%s' does not mention '%s'\n", err.c_str(),
                expect_in_error);
    ++qavat::test::failures;
  }
}

void test_rejection() {
  const std::string good =
      ScenarioSpec::base(ModelKind::kLeNet5s, 4, 4, ScenarioAlgo::kQAVAT)
          .to_json();

  check_rejected("", "malformed JSON");
  check_rejected("not json", "malformed JSON");
  check_rejected("{\"schema\":1", "malformed JSON");
  check_rejected(good + "trailing", "trailing characters");
  check_rejected("{}", "schema");
  check_rejected("{\"schema\":\"1\"}", "schema");
  check_rejected("{\"schema\":2}", "version mismatch");

  // Unknown token per enum field.
  auto swap = [&](const std::string& from, const std::string& to) {
    std::string doc = good;
    const std::size_t pos = doc.find(from);
    if (pos == std::string::npos) {
      std::printf("FAIL: '%s' not found in spec JSON\n", from.c_str());
      ++qavat::test::failures;
      return doc;
    }
    doc.replace(pos, from.size(), to);
    return doc;
  };
  check_rejected(swap("\"model\":\"lenet5s\"", "\"model\":\"lenet5\""),
                 "model: unknown token 'lenet5'");
  check_rejected(swap("\"algo\":\"QAVAT\"", "\"algo\":\"QVT\""),
                 "algo: unknown token 'QVT'");
  check_rejected(swap("\"backend\":\"weight_domain\"", "\"backend\":\"wd\""),
                 "eval.backend: unknown token 'wd'");
  check_rejected(swap("\"mode\":\"none\"", "\"mode\":\"ltm\""),
                 "selftune.mode: unknown token 'ltm'");
  check_rejected(swap("\"scale_update\":\"per_epoch\"",
                      "\"scale_update\":\"always\""),
                 "train.scale_update: unknown token 'always'");
  const std::string noisy =
      ScenarioSpec::within(ModelKind::kLeNet5s, 4, 4, ScenarioAlgo::kQAVAT,
                           VarianceModel::kLayerFixed, 0.1)
          .to_json();
  {
    std::string doc = noisy;
    const std::size_t pos = doc.find("\"model\":\"lf\"");
    CHECK(pos != std::string::npos);
    doc.replace(pos, std::strlen("\"model\":\"lf\""), "\"model\":\"xx\"");
    check_rejected(doc, "unknown token 'xx'");
  }

  // Wrong types, with the dotted field path in the error. (The fast
  // flag serializes as whatever the environment set, so probe both.)
  const char* fast_tok = good.find("\"fast\":true") != std::string::npos
                             ? "\"fast\":true"
                             : "\"fast\":false";
  check_rejected(swap(fast_tok, "\"fast\":\"no\""),
                 "fast: expected true or false");
  check_rejected(swap("\"lr\":", "\"lr\":\"x\",\"xlr\":"),
                 "train.lr: expected a number");
  check_rejected(swap("\"a_bits\":4", "\"a_bits\":true"),
                 "model_cfg.a_bits: expected an integer");
  check_rejected(swap("\"n_chips\":", "\"n_chips\":\"many\",\"x\":"),
                 "eval.n_chips: expected an integer");
  check_rejected(swap("\"model_cfg\":{", "\"model_cfg\":true,\"x\":{"),
                 "model_cfg: expected an object");
}

void test_manifest_roundtrip() {
  for (const std::string& name : builtin_manifest_names()) {
    SweepManifest m;
    CHECK(builtin_manifest(name, &m));
    CHECK(m.name == name);
    CHECK(!m.specs.empty());
    SweepManifest back;
    std::string err;
    if (!SweepManifest::from_json(m.to_json(), &back, &err)) {
      std::printf("FAIL manifest(%s): parse rejected: %s\n", name.c_str(),
                  err.c_str());
      ++qavat::test::failures;
      continue;
    }
    CHECK(back.name == m.name);
    CHECK(back.specs.size() == m.specs.size());
    CHECK(back.to_json() == m.to_json());
    for (std::size_t i = 0; i < m.specs.size(); ++i) {
      CHECK(back.specs[i].key() == m.specs[i].key());
    }
  }
  {
    SweepManifest m;
    CHECK(!builtin_manifest("no_such_grid", &m));
  }

  // Save/load round trip through a private temp file.
  SweepManifest m;
  CHECK(builtin_manifest("sweep_sigma", &m));
  const std::string path =
      "test_scenario_json.manifest." + std::to_string(::getpid()) + ".json";
  std::string err;
  CHECK(m.save(path, &err));
  SweepManifest loaded;
  CHECK(SweepManifest::load(path, &loaded, &err));
  CHECK(loaded.to_json() == m.to_json());
  std::remove(path.c_str());
  CHECK(!SweepManifest::load(path + ".missing", &loaded, &err));
  CHECK(!err.empty());
}

// shard_manifest must partition the grid losslessly: every spec lands
// in exactly one shard, and interleaving the shards back in round-robin
// order reproduces the original spec sequence, for any K (including
// K > specs, which leaves trailing shards legitimately empty).
void test_manifest_sharding() {
  SweepManifest m;
  CHECK(builtin_manifest("table1", &m));
  for (int k : {1, 3, 4, 7, 64}) {
    const std::vector<SweepManifest> parts = shard_manifest(m, k);
    CHECK(parts.size() == static_cast<std::size_t>(k));
    std::size_t total = 0;
    for (int i = 0; i < k; ++i) {
      CHECK(parts[static_cast<std::size_t>(i)].name ==
            m.name + ".shard" + std::to_string(i) + "of" + std::to_string(k));
      total += parts[static_cast<std::size_t>(i)].specs.size();
    }
    CHECK(total == m.specs.size());
    for (std::size_t s = 0; s < m.specs.size(); ++s) {
      const SweepManifest& part = parts[s % static_cast<std::size_t>(k)];
      const std::size_t j = s / static_cast<std::size_t>(k);
      CHECK(j < part.specs.size());
      if (j < part.specs.size()) {
        CHECK(part.specs[j].to_json() == m.specs[s].to_json());
      }
    }
  }
  // K < 1 clamps to one shard: a renamed copy of the whole grid.
  const std::vector<SweepManifest> one = shard_manifest(m, 0);
  CHECK(one.size() == 1);
  CHECK(one[0].name == m.name + ".shard0of1");
  CHECK(one[0].specs.size() == m.specs.size());
}

void test_manifest_rejection() {
  SweepManifest good;
  CHECK(builtin_manifest("sweep_sigma", &good));
  const std::string doc = good.to_json();

  auto rejected = [&](const std::string& text, const char* expect) {
    SweepManifest out;
    out.name = "sentinel";
    std::string err;
    if (SweepManifest::from_json(text, &out, &err)) {
      std::printf("FAIL: accepted bad manifest (expect '%s')\n", expect);
      ++qavat::test::failures;
      return;
    }
    CHECK(out.name == "sentinel");  // untouched on failure
    if (err.find(expect) == std::string::npos) {
      std::printf("FAIL: manifest error '%s' does not mention '%s'\n",
                  err.c_str(), expect);
      ++qavat::test::failures;
    }
  };
  rejected("", "malformed JSON");
  rejected("{\"name\":\"x\",\"specs\":[]}", "manifest_schema: missing");
  rejected("{\"manifest_schema\":1,\"name\":\"x\"}", "specs: missing");
  rejected("{\"manifest_schema\":9,\"name\":\"x\",\"specs\":[]}",
           "version mismatch");
  rejected("{\"manifest_schema\":1,\"bogus\":1,\"specs\":[]}",
           "unknown manifest field 'bogus'");
  rejected(doc + "x", "trailing characters");

  // A bad entry is attributed by index and field: corrupt spec 2's algo.
  std::string bad = doc;
  std::size_t pos = 0;
  for (int i = 0; i < 3; ++i) {
    pos = bad.find("\"algo\":\"QAVAT\"", pos + 1);
    CHECK(pos != std::string::npos);
  }
  bad.replace(pos, std::strlen("\"algo\":\"QAVAT\""), "\"algo\":\"BOGUS\"");
  {
    SweepManifest out;
    std::string err;
    CHECK(!SweepManifest::from_json(bad, &out, &err));
    CHECK(err.find("specs[2]:") != std::string::npos);
    CHECK(err.find("algo: unknown token 'BOGUS'") != std::string::npos);
  }
}

}  // namespace

int main() {
  test_roundtrip_field_sweep();
  test_rejection();
  test_manifest_roundtrip();
  test_manifest_sharding();
  test_manifest_rejection();
  return qavat::test::finish("test_scenario_json");
}
