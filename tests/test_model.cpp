// Tier-1: dataset generation, model construction/forward shapes for all
// three kinds, clone fidelity, and gradient sanity via a finite-difference
// probe on a quant linear layer.
#include "core/models/models.h"

#include "data/synth.h"
#include "tests/test_common.h"

using namespace qavat;

int main() {
  // Synthetic digits: shapes, label balance, value range.
  SynthDigitsConfig dcfg;
  dcfg.n_train = 200;
  dcfg.n_test = 50;
  SplitDataset data = make_synth_digits(dcfg);
  CHECK(data.train.size() == 200);
  CHECK(data.test.size() == 50);
  CHECK(data.train.num_classes == 10);
  CHECK(data.train.images.shape() == (std::vector<index_t>{200, 1, 12, 12}));
  for (index_t i = 0; i < data.train.images.size(); ++i) {
    CHECK(data.train.images[i] >= 0.0f && data.train.images[i] <= 1.0f);
  }
  Tensor batch = data.train.gather_images({0, 5, 7});
  CHECK(batch.shape() == (std::vector<index_t>{3, 1, 12, 12}));

  SynthImagesConfig icfg;
  icfg.n_train = 60;
  icfg.n_test = 20;
  SplitDataset img = make_synth_images(icfg);
  CHECK(img.train.images.shape() == (std::vector<index_t>{60, 3, 16, 16}));

  // All three model kinds build and produce {N, num_classes} logits.
  struct Case {
    ModelKind kind;
    index_t in_channels, image_size;
  };
  const Case cases[] = {
      {ModelKind::kLeNet5s, 1, 12},
      {ModelKind::kVGG11s, 3, 16},
      {ModelKind::kResNet18s, 3, 16},
  };
  for (const Case& c : cases) {
    ModelConfig mcfg;
    mcfg.a_bits = 4;
    mcfg.w_bits = 2;
    mcfg.in_channels = c.in_channels;
    mcfg.image_size = c.image_size;
    mcfg.num_classes = 10;
    auto model = make_model(c.kind, mcfg);
    CHECK(model->parameter_count() > 1000);
    CHECK(!quant_layers(*model).empty());
    Tensor x({2, c.in_channels, c.image_size, c.image_size});
    Rng rng(4);
    fill_uniform(x, rng, 0.0, 1.0);
    model->set_training(false);
    Tensor y = model->forward(x);
    CHECK(y.shape() == (std::vector<index_t>{2, 10}));

    // Clone reproduces the forward exactly.
    for (QuantLayerBase* q : quant_layers(*model)) {
      q->refresh_weight_scale();
      q->act_quantizer().set_scale(0.05f);
    }
    Tensor y1 = model->forward(x);
    auto copy = clone_model(*model);
    Tensor y2 = copy->forward(x);
    for (index_t i = 0; i < y1.size(); ++i) CHECK_NEAR(y1[i], y2[i], 1e-6);
  }

  // Finite-difference gradient probe on a float (quant-disabled) linear
  // layer: backward must match numeric dL/dw.
  Rng rng(6);
  QuantLinear lin(5, 3, 8, 8, rng);
  lin.set_quant_enabled(false);
  lin.set_training(true);
  Tensor x({2, 5});
  fill_normal(x, rng);
  std::vector<index_t> labels = {1, 2};
  auto loss_of = [&]() {
    Tensor logits = lin.forward(x);
    return softmax_xent(logits, labels, nullptr);
  };
  Tensor logits = lin.forward(x);
  Tensor grad;
  softmax_xent(logits, labels, &grad);
  lin.weight().ensure_grad();
  lin.weight().grad.zero();
  lin.backward(grad);
  const double eps = 1e-3;
  for (index_t i : {index_t{0}, index_t{7}, index_t{14}}) {
    const float w0 = lin.weight().value[i];
    lin.weight().value[i] = w0 + static_cast<float>(eps);
    const double lp = loss_of();
    lin.weight().value[i] = w0 - static_cast<float>(eps);
    const double lm = loss_of();
    lin.weight().value[i] = w0;
    const double numeric = (lp - lm) / (2.0 * eps);
    CHECK_NEAR(lin.weight().grad[i], numeric, 5e-3);
  }
  return qavat::test::finish("test_model");
}
