// Tier-1: the threaded conv-pipeline kernels (tensor/conv_ops.h) against
// naive references on odd pad/stride/kernel combos, the fused
// act-quantize gather, the col2im determinism contract (gather form: no
// scatter races, no atomics — bit-identical for any thread count), max
// pooling, conv forward/backward and batched-eval thread bit-identity,
// and the workspace zero-alloc steady-state invariant.
#include <cmath>
#include <cstring>
#include <vector>

#include "core/models/models.h"
#include "core/quant/qlayers.h"
#include "eval/evaluator.h"
#include "tensor/conv_ops.h"
#include "tensor/ops.h"
#include "tensor/parallel_for.h"
#include "tensor/workspace.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

bool bits_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// Naive per-element im2col gather (the algorithm, no schedule).
Tensor naive_im2col(const Tensor& x, const ConvGeom& g) {
  Tensor cols({g.rows(), g.ckk()});
  for (index_t ni = 0; ni < g.n; ++ni) {
    for (index_t y = 0; y < g.oh; ++y) {
      for (index_t xo = 0; xo < g.ow; ++xo) {
        float* row = cols.data() + ((ni * g.oh + y) * g.ow + xo) * g.ckk();
        for (index_t ci = 0; ci < g.c; ++ci) {
          const float* plane = x.data() + (ni * g.c + ci) * g.h * g.w;
          for (index_t ky = 0; ky < g.k; ++ky) {
            const index_t iy = y * g.stride - g.pad + ky;
            for (index_t kx = 0; kx < g.k; ++kx) {
              const index_t ix = xo * g.stride - g.pad + kx;
              const bool in = iy >= 0 && iy < g.h && ix >= 0 && ix < g.w;
              row[(ci * g.k + ky) * g.k + kx] = in ? plane[iy * g.w + ix] : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

// Naive scatter-add col2im (the PR-2-era serial reference). Run serially
// only — as a scatter over overlapping windows it would race if split
// across threads, which is exactly the hazard the production gather-form
// col2im is restructured to avoid.
Tensor naive_col2im(const Tensor& cols, const ConvGeom& g) {
  Tensor gx({g.n, g.c, g.h, g.w});
  for (index_t ni = 0; ni < g.n; ++ni) {
    for (index_t y = 0; y < g.oh; ++y) {
      for (index_t xo = 0; xo < g.ow; ++xo) {
        const float* row = cols.data() + ((ni * g.oh + y) * g.ow + xo) * g.ckk();
        for (index_t ci = 0; ci < g.c; ++ci) {
          float* plane = gx.data() + (ni * g.c + ci) * g.h * g.w;
          for (index_t ky = 0; ky < g.k; ++ky) {
            const index_t iy = y * g.stride - g.pad + ky;
            if (iy < 0 || iy >= g.h) continue;
            for (index_t kx = 0; kx < g.k; ++kx) {
              const index_t ix = xo * g.stride - g.pad + kx;
              if (ix < 0 || ix >= g.w) continue;
              plane[iy * g.w + ix] += row[(ci * g.k + ky) * g.k + kx];
            }
          }
        }
      }
    }
  }
  return gx;
}

double max_rel_diff(const Tensor& a, const Tensor& b) {
  double m = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(static_cast<double>(a[i]) - b[i]);
    const double s = std::max(1.0, std::fabs(static_cast<double>(b[i])));
    m = std::max(m, d / s);
  }
  return m;
}

ConvGeom geom_of(index_t n, index_t c, index_t h, index_t w, index_t k,
                 index_t stride, index_t pad) {
  ConvGeom g{n, c, h, w, k, stride, pad, 0, 0};
  g.oh = (h + 2 * pad - k) / stride + 1;
  g.ow = (w + 2 * pad - k) / stride + 1;
  return g;
}

void check_im2col_col2im(const ConvGeom& g, Rng& rng) {
  Tensor x({g.n, g.c, g.h, g.w});
  fill_normal(x, rng);

  // im2col is a pure gather: bitwise equal to the naive loop nest.
  Tensor cols;
  im2col(x, g, cols);
  Tensor ref = naive_im2col(x, g);
  CHECK(bits_equal(cols, ref));

  // col2im round trip: the gather form sums the same <= K*K floats per
  // element as the scatter reference, in a different (but fixed) order —
  // equal up to reassociation.
  Tensor dcols({g.rows(), g.ckk()});
  fill_normal(dcols, rng);
  Tensor gx;
  col2im(dcols, g, gx);
  Tensor gref = naive_col2im(dcols, g);
  CHECK(gx.shape() == gref.shape());
  CHECK(max_rel_diff(gx, gref) < 1e-5);

  // Thread bit-identity for both kernels (determinism contract).
  const index_t saved = num_threads();
  set_num_threads(1);
  Tensor cols1, gx1;
  im2col(x, g, cols1);
  col2im(dcols, g, gx1);
  for (index_t nt : {2, 5}) {
    set_num_threads(nt);
    Tensor colsn, gxn;
    im2col(x, g, colsn);
    col2im(dcols, g, gxn);
    CHECK(bits_equal(colsn, cols1));
    CHECK(bits_equal(gxn, gx1));
  }
  set_num_threads(saved);
}

void check_fused_quant_gather(Rng& rng) {
  const ConvGeom g = geom_of(3, 4, 9, 7, 3, 1, 1);
  Tensor x({g.n, g.c, g.h, g.w});
  fill_normal(x, rng);
  ActQuantizer aq(4);
  aq.set_scale(0.17f);
  Tensor xq;
  aq.quantize(x, xq, nullptr);
  Tensor ref;
  im2col(xq, g, ref);
  Tensor fused;
  im2col_quant(x, g, aq.scale(), unsigned_qmax(aq.bits()), fused);
  CHECK(bits_equal(fused, ref));  // fusion must be arithmetic-identical
}

void check_maxpool(Rng& rng) {
  // Odd spatial sizes exercise the floor semantics (trailing rows/cols
  // that do not fill a window are dropped).
  for (index_t h : {8, 7}) {
    const index_t n = 2, c = 3, w = h + 1, k = 2;
    Tensor x({n, c, h, w});
    fill_normal(x, rng);
    Tensor y;
    std::vector<index_t> arg;
    maxpool2d(x, k, y, arg);
    const index_t oh = h / k, ow = w / k;
    CHECK(y.shape() == std::vector<index_t>({n, c, oh, ow}));
    // Reference: direct window max + first-max tie break.
    for (index_t nc = 0; nc < n * c; ++nc) {
      for (index_t oy = 0; oy < oh; ++oy) {
        for (index_t ox = 0; ox < ow; ++ox) {
          index_t best = (oy * k) * w + ox * k;
          float bv = x[nc * h * w + best];
          for (index_t dy = 0; dy < k; ++dy) {
            for (index_t dx = 0; dx < k; ++dx) {
              const index_t idx = (oy * k + dy) * w + ox * k + dx;
              if (x[nc * h * w + idx] > bv) {
                bv = x[nc * h * w + idx];
                best = idx;
              }
            }
          }
          const index_t oi = nc * oh * ow + oy * ow + ox;
          CHECK(y[oi] == bv);
          CHECK(arg[static_cast<std::size_t>(oi)] == nc * h * w + best);
        }
      }
    }
    // Backward scatters gy through argmax; everything else is zero.
    Tensor gy(y.shape());
    fill_normal(gy, rng);
    Tensor gx;
    maxpool2d_backward(gy, arg, x.shape(), gx);
    double sum_gx = 0.0, sum_gy = 0.0;
    for (index_t i = 0; i < gx.size(); ++i) sum_gx += gx[i];
    for (index_t i = 0; i < gy.size(); ++i) sum_gy += gy[i];
    CHECK(std::fabs(sum_gx - sum_gy) < 1e-3);
    for (index_t i = 0; i < gy.size(); ++i) {
      CHECK(gx[arg[static_cast<std::size_t>(i)]] == gy[i]);
    }
    // Thread bit-identity.
    const index_t saved = num_threads();
    for (index_t nt : {1, 2, 5}) {
      set_num_threads(nt);
      Tensor yn, gxn;
      std::vector<index_t> argn;
      maxpool2d(x, k, yn, argn);
      maxpool2d_backward(gy, argn, x.shape(), gxn);
      CHECK(bits_equal(yn, y));
      CHECK(argn == arg);
      CHECK(bits_equal(gxn, gx));
    }
    set_num_threads(saved);
  }
}

// Full conv layer forward+backward must be bit-identical for any thread
// count: output, input gradient, weight and bias gradients.
void check_conv_layer_thread_identity(Rng& rng) {
  const index_t saved = num_threads();
  Tensor x({4, 3, 11, 11});
  fill_normal(x, rng);

  auto run = [&](index_t nt, Tensor& y, Tensor& gx, Tensor& wg, Tensor& bg) {
    set_num_threads(nt);
    Rng wrng(7);  // same init per thread count
    QuantConv2d conv(3, 8, 3, 2, 1, 4, 2, wrng);
    conv.refresh_weight_scale();
    conv.act_quantizer().set_scale(0.2f);
    conv.set_training(true);
    conv.weight().ensure_grad();
    conv.weight().grad.zero();
    conv.bias().ensure_grad();
    conv.bias().grad.zero();
    y = conv.forward(x);
    Tensor gy(y.shape());
    Rng grng(9);
    fill_normal(gy, grng);
    gx = conv.backward(gy);
    wg = conv.weight().grad;
    bg = conv.bias().grad;
  };

  Tensor y1, gx1, wg1, bg1;
  run(1, y1, gx1, wg1, bg1);
  for (index_t nt : {2, 5}) {
    Tensor y, gx, wg, bg;
    run(nt, y, gx, wg, bg);
    CHECK(bits_equal(y, y1));
    CHECK(bits_equal(gx, gx1));
    CHECK(bits_equal(wg, wg1));
    CHECK(bits_equal(bg, bg1));
  }
  set_num_threads(saved);
}

// Batched Monte-Carlo evaluation: per-chip accuracies must be identical
// for any thread count (and match the sequential chip loop, which
// test_eval_batched already pins down).
void check_batched_eval_thread_identity() {
  const index_t saved = num_threads();
  SynthDigitsConfig dcfg;
  dcfg.n_train = 8;
  dcfg.n_test = 48;
  SplitDataset data = make_synth_digits(dcfg);
  ModelConfig mcfg;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.25f);
  }
  model->set_training(false);
  const VariabilityConfig vcfg =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.4);
  EvalConfig ecfg;
  ecfg.n_chips = 5;
  ecfg.max_test_samples = 48;
  ecfg.chip_batch = 4;  // one full group of 4 + a ragged single-chip tail

  set_num_threads(1);
  EvalStats ref = evaluate_under_variability(*model, data.test, vcfg, ecfg);
  for (index_t nt : {2, 5}) {
    set_num_threads(nt);
    EvalStats stats = evaluate_under_variability(*model, data.test, vcfg, ecfg);
    CHECK(stats.per_chip_acc == ref.per_chip_acc);
  }
  set_num_threads(saved);
}

// Zero-alloc steady state: after the first forward/backward sized the
// workspace, repeated same-shape passes must not grow it.
void check_workspace_steady_state(Rng& rng) {
  ModelConfig mcfg;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.25f);
  }
  model->set_training(true);
  Tensor x({8, 1, 12, 12});
  fill_normal(x, rng);
  std::vector<index_t> labels(8, 3);

  auto pass = [&] {
    model->zero_grad();
    Tensor logits = model->forward(x);
    Tensor grad;
    softmax_xent(logits, labels, &grad, nullptr);
    model->backward(grad);
  };
  pass();
  const std::size_t warm = model->workspace().retained_bytes();
  CHECK(warm > 0);
  pass();
  pass();
  CHECK(model->workspace().retained_bytes() == warm);

  // The QAVAT_WORKSPACE_MB cap is enforced by trim().
  model->workspace().trim(0);
  CHECK(model->workspace().retained_bytes() == 0);
  pass();  // re-grows transparently
  CHECK(model->workspace().retained_bytes() == warm);

  // Same invariant on the inference path (calibrated quantizer, fused /
  // quantize-into-scratch gathers — different slots than training).
  model->set_training(false);
  auto eval_pass = [&] {
    Tensor logits = model->forward(x);
    CHECK(logits.dim(0) == 8);
  };
  eval_pass();
  const std::size_t eval_warm = model->workspace().retained_bytes();
  CHECK(eval_warm > 0);
  eval_pass();
  eval_pass();
  CHECK(model->workspace().retained_bytes() == eval_warm);
}

}  // namespace

int main() {
  Rng rng(1234);

  // Odd pad/stride/kernel combos around the common 3x3-s1-p1 case,
  // including k > h, pad 2, stride 3, non-square images and 1x1 kernels.
  const index_t combos[][7] = {
      // n, c, h, w, k, stride, pad
      {2, 3, 12, 12, 3, 1, 1}, {1, 1, 5, 7, 3, 2, 1},  {3, 2, 9, 6, 2, 2, 0},
      {1, 4, 7, 7, 5, 1, 2},   {2, 1, 6, 11, 1, 1, 0}, {1, 2, 8, 8, 3, 3, 2},
      {4, 3, 11, 11, 3, 2, 1}, {1, 1, 4, 4, 5, 1, 2},
      // k > w + pad reaches taps no output window can supply at stride 2
      // (col2im's truncating-division edge: a negative xo numerator must
      // skip the tap, not clamp to xo = 0).
      {1, 1, 2, 2, 5, 2, 2},
  };
  for (const auto& s : combos) {
    const ConvGeom g = geom_of(s[0], s[1], s[2], s[3], s[4], s[5], s[6]);
    check_im2col_col2im(g, rng);
  }

  check_fused_quant_gather(rng);
  check_maxpool(rng);
  check_conv_layer_thread_identity(rng);
  check_batched_eval_thread_identity();
  check_workspace_steady_state(rng);

  return qavat::test::finish("test_conv_ops");
}
