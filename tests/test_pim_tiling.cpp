// Tier-1: crossbar tiling — TilePlan geometry on edge shapes (dims not
// multiples of the tile, 1x1, single-row), the partial-sum determinism
// contract (a tiled readout is bit-identical to an untiled array on a
// noise-free config, for any tile grid, any DAC/ADC setting and any
// thread count), per-array GTM aggregation, the circuit-backed
// Monte-Carlo evaluator, and the workspace zero-alloc steady state of
// the tiled MVM.
#include "pim/tiling.h"

#include <cstring>
#include <stdexcept>

#include "core/models/models.h"
#include "eval/evaluator.h"
#include "tensor/parallel_for.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

bool bits_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// The plan must cover every element exactly once with in-bound, <= tile
// extents; ragged remainders only on the trailing tiles.
void check_plan(index_t out, index_t in, index_t tile, index_t want_rt,
                index_t want_ct) {
  const TilePlan p = TilePlan::make(out, in, tile);
  CHECK(p.row_tiles() == want_rt);
  CHECK(p.col_tiles() == want_ct);
  CHECK(p.n_tiles() == want_rt * want_ct);
  index_t covered = 0;
  for (index_t i = 0; i < p.row_tiles(); ++i) {
    for (index_t j = 0; j < p.col_tiles(); ++j) {
      const TilePlan::Extent e = p.tile_at(i, j);
      CHECK(e.rows >= 1 && e.rows <= tile);
      CHECK(e.cols >= 1 && e.cols <= tile);
      CHECK(e.r0 == i * tile);
      CHECK(e.c0 == j * tile);
      CHECK(e.r0 + e.rows <= out);
      CHECK(e.c0 + e.cols <= in);
      const bool last_row = i == p.row_tiles() - 1;
      const bool last_col = j == p.col_tiles() - 1;
      if (!last_row) CHECK(e.rows == tile);
      if (!last_col) CHECK(e.cols == tile);
      if (last_row) CHECK(e.r0 + e.rows == out);
      if (last_col) CHECK(e.c0 + e.cols == in);
      covered += e.rows * e.cols;
    }
  }
  CHECK(covered == out * in);
}

void check_tile_plan_shapes() {
  check_plan(512, 512, 512, 1, 1);      // exact fit
  check_plan(513, 512, 512, 2, 1);      // one ragged row tile of height 1
  check_plan(1, 1, 512, 1, 1);          // 1x1 matrix
  check_plan(1, 2048, 512, 1, 4);       // single-row layer across 4 arrays
  check_plan(1000, 1000, 512, 2, 2);    // ragged in both dims (488 remainder)
  check_plan(70, 90, 32, 3, 3);         // small tiles, ragged both dims
  check_plan(3, 5, 1, 3, 5);            // degenerate 1x1 arrays
  bool threw = false;
  try {
    TilePlan::make(0, 4, 512);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  // tile <= 0 resolves QAVAT_TILE_SIZE (unset in ctest -> 512).
  CHECK(TilePlan::make(600, 1100).tile == tile_size_from_env());
}

// Noise-free configs: the tiled readout must be BIT-identical to one
// unbounded array, including with DAC/ADC periphery enabled (the DAC
// range is per full input row, the ADC range per assembled output row —
// both tile-invariant by construction).
void check_tiled_untiled_bit_equality(Rng& rng) {
  Tensor w({70, 90});
  fill_normal(w, rng);
  Tensor x({5, 90});
  fill_normal(x, rng);
  for (index_t dac : {index_t{0}, index_t{5}}) {
    CrossbarConfig cfg;  // no variability: both paths program the same g
    cfg.dac_bits = dac;
    cfg.adc_bits = dac > 0 ? dac + 2 : 0;
    Rng prng(7);
    CrossbarArray untiled(cfg, w, 0.0, prng);
    Tensor y_ref, scratch;
    untiled.mvm_into(x, y_ref, scratch);
    for (index_t tile : {index_t{32}, index_t{64}, index_t{128}}) {
      PimChip chip(cfg, 7, 0);
      TiledCrossbarLayer tiled(chip, w, TilePlan::make(70, 90, tile));
      CHECK(tiled.n_arrays() ==
            tiled.plan().row_tiles() * tiled.plan().col_tiles());
      Tensor y;
      tiled.mvm_into(x, y);
      CHECK(bits_equal(y, y_ref));
    }
  }
}

// The span/vector readout of a single input agrees with the batched
// Tensor form (double reference chain vs float GEMM chain) and the mvm()
// wrapper returns exactly what mvm_into writes. ADC off: a mid-tread
// level boundary could legitimately snap differently between the double
// and float accumulation paths.
void check_span_overloads(Rng& rng) {
  Tensor w({9, 17});
  fill_normal(w, rng);
  CrossbarConfig cfg;
  cfg.dac_bits = 4;
  Rng prng(3);
  CrossbarArray arr(cfg, w, 0.0, prng);
  std::vector<float> x(17);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<double> y_span(9, 0.0);
  arr.mvm_into(x.data(), y_span.data());
  const std::vector<double> y_wrap = arr.mvm(x);
  for (int i = 0; i < 9; ++i) CHECK(y_span[i] == y_wrap[i]);
  Tensor x2d({1, 17});
  std::memcpy(x2d.data(), x.data(), 17 * sizeof(float));
  Tensor y2d, scratch;
  arr.mvm_into(x2d, y2d, scratch);
  for (int i = 0; i < 9; ++i) CHECK_NEAR(y2d[i], y_span[i], 1e-4);
}

// Thread bit-identity of the tiled MVM (determinism contract).
void check_thread_identity(Rng& rng) {
  Tensor w({100, 130});
  fill_normal(w, rng);
  Tensor x({8, 130});
  fill_normal(x, rng);
  CrossbarConfig cfg;
  cfg.variability =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.4);
  const index_t saved = num_threads();
  set_num_threads(1);
  PimChip chip1(cfg, 11, 0);
  TiledCrossbarLayer tiled1(chip1, w, TilePlan::make(100, 130, 48));
  Tensor y1;
  tiled1.mvm_into(x, y1);
  for (index_t nt : {2, 5}) {
    set_num_threads(nt);
    PimChip chipn(cfg, 11, 0);  // same chip identity -> same conductances
    TiledCrossbarLayer tiledn(chipn, w, TilePlan::make(100, 130, 48));
    Tensor yn;
    tiledn.mvm_into(x, yn);
    CHECK(bits_equal(yn, y1));
  }
  set_num_threads(saved);
}

// Per-array GTM spare columns: every array measures the same chip-level
// eps_B; the aggregate estimate converges on it as geometry grows.
void check_per_array_gtm() {
  CrossbarConfig cfg;
  cfg.variability =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.5);
  Rng wrng(5);
  Tensor w({96, 96});
  fill_normal(w, wrng);
  double sq = 0.0;
  const int chips = 60;
  index_t n_arrays = 0;
  for (int c = 0; c < chips; ++c) {
    PimChip chip(cfg, 23, c);
    TiledCrossbarLayer tiled(chip, w, TilePlan::make(96, 96, 32),
                             /*with_gtm=*/true);
    n_arrays = tiled.n_arrays();
    CHECK(static_cast<index_t>(tiled.gtm_estimates().size()) == n_arrays);
    sq += (tiled.measured_eps_b() - chip.eps_b()) *
          (tiled.measured_eps_b() - chip.eps_b());
  }
  CHECK(n_arrays == 9);
  // 9 arrays x 32 cells = 288 cells: RMSE ~ sigma_W / sqrt(288).
  const double rmse = std::sqrt(sq / chips);
  const double analytic = cfg.variability.sigma_w / std::sqrt(288.0);
  CHECK(rmse < 3.0 * analytic);
}

// Zero-alloc steady state: after the first tiled MVM sized the workspace,
// repeated same-shape MVMs must not grow it (the invariant pattern from
// test_conv_ops).
void check_workspace_steady_state(Rng& rng) {
  Tensor w({70, 90});
  fill_normal(w, rng);
  Tensor x({6, 90});
  fill_normal(x, rng);
  CrossbarConfig cfg;
  cfg.dac_bits = 4;  // exercise the DAC scratch slot too
  Workspace ws;
  PimChip chip(cfg, 9, 0);
  {
    TiledCrossbarLayer tiled(chip, w, TilePlan::make(70, 90, 32),
                             /*with_gtm=*/false, &ws);
    Tensor y;
    tiled.mvm_into(x, y);
    const std::size_t warm = ws.retained_bytes();
    CHECK(warm > 0);
    tiled.mvm_into(x, y);
    tiled.mvm_into(x, y);
    CHECK(ws.retained_bytes() == warm);
  }
  // A torn-down layer releases its slots so dead owners never crowd a
  // shared workspace (the per-chip churn of the circuit evaluator).
  CHECK(ws.retained_bytes() == 0);
}

// End-to-end: the circuit backend produces sane accuracies and agrees
// with the weight-domain backend on a noise-free deployment, where both
// compute the same quantized forward up to the float rounding of the
// conductance mapping (w -> w/w_unit -> * w_unit) — logits match to a
// few ulp, so per-chip accuracies agree unless two logits tie within
// ~1e-5, which the tolerance of one argmax flip per chip absorbs.
void check_circuit_backend_eval() {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 8;
  dcfg.n_test = 32;
  SplitDataset data = make_synth_digits(dcfg);
  ModelConfig mcfg;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.25f);
  }
  model->set_training(false);
  VariabilityConfig clean;  // sigma 0: circuit == weight domain exactly
  EvalConfig ecfg;
  ecfg.n_chips = 3;
  ecfg.max_test_samples = 32;
  EvalStats ref = evaluate_under_variability(*model, data.test, clean, ecfg);
  ecfg.backend = EvalBackend::kCircuit;
  ecfg.tile_size = 64;  // small tiles so the wider layers really split
  EvalStats circ = evaluate_under_variability(*model, data.test, clean, ecfg);
  CHECK(circ.per_chip_acc.size() == ref.per_chip_acc.size());
  for (std::size_t i = 0; i < circ.per_chip_acc.size(); ++i) {
    CHECK_NEAR(circ.per_chip_acc[i], ref.per_chip_acc[i], 0.05);
  }
  // Noisy circuit eval with self-tuning: runs through per-array GTM and
  // the correction machinery; accuracies stay in range.
  const VariabilityConfig vcfg =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.3);
  SelfTuneConfig st;
  EvalStats noisy = evaluate_under_variability(*model, data.test, vcfg, ecfg, &st);
  CHECK(noisy.per_chip_acc.size() == 3);
  for (double a : noisy.per_chip_acc) CHECK(a >= 0.0 && a <= 1.0);
}

}  // namespace

int main() {
  Rng rng(4321);
  check_tile_plan_shapes();
  check_tiled_untiled_bit_equality(rng);
  check_span_overloads(rng);
  check_thread_identity(rng);
  check_per_array_gtm();
  check_workspace_steady_state(rng);
  check_circuit_backend_eval();
  return qavat::test::finish("test_pim_tiling");
}
