// qavat-store CLI smoke, promoted from ci/build_and_test.sh shell steps
// into a ctest-registered test so every local ctest run covers the
// operator tooling too. Drives the real binary (path in argv[1])
// end-to-end against a private store this test populates through the
// library: inspect, verify on a clean store, corruption detection +
// --quarantine healing, gc of backdated tmp/claim litter, and age-based
// eviction — asserting exit codes at every step.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "eval/store.h"
#include "tensor/serialize.h"
#include "tests/test_common.h"

using namespace qavat;
namespace fs = std::filesystem;

namespace {

std::string g_cli;   // path to the qavat-store binary
std::string g_root;  // private store root

// Run `qavat-store <args> --root <root>` and return its exit code
// (-1 if it did not exit normally).
int cli(const std::string& args) {
  const std::string cmd = g_cli + " " + args + " --root '" + g_root + "'";
  const int status = std::system(cmd.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

// Every regular artifact file under the store root (claims, tmp files
// and quarantine excluded) — the files verify/evict operate on.
std::vector<fs::path> artifact_files() {
  std::vector<fs::path> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(
           g_root, fs::directory_options::skip_permission_denied, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.find(".claim") != std::string::npos) continue;
    if (name.find(".tmp.") != std::string::npos) continue;
    if (it->path().string().find("quarantine") != std::string::npos) continue;
    out.push_back(it->path());
  }
  return out;
}

void backdate(const fs::path& p, int seconds_ago) {
  std::error_code ec;
  fs::last_write_time(
      p, fs::file_time_type::clock::now() - std::chrono::seconds(seconds_ago),
      ec);
  CHECK(!ec);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path-to-qavat-store>\n", argv[0]);
    return 2;
  }
  g_cli = argv[1];
  g_root = (fs::temp_directory_path() /
            ("qavat-test-store-cli-" + std::to_string(::getpid())))
               .string();
  ::setenv("QAVAT_STORE_DIR", g_root.c_str(), 1);
  std::error_code ec;
  fs::remove_all(g_root, ec);

  // Populate through the library: one doubles artifact, one state dict.
  CHECK(store_save_doubles("results", "cli_smoke_result", {1.0, 2.0, 3.0}));
  StateDict sd;
  sd.add_scalar("alpha", 0.5);
  sd.add_scalar("beta", 2.25);
  CHECK(store_save_state("models", "cli_smoke_model", sd));
  CHECK(store_has("results", "cli_smoke_result"));
  CHECK(store_has("models", "cli_smoke_model"));

  // inspect and verify succeed on a clean store.
  CHECK(cli("inspect") == 0);
  CHECK(cli("verify") == 0);

  // Corrupt one artifact in place: verify must flag it (exit 1), and
  // --quarantine must move it aside so the NEXT verify is clean again.
  std::vector<fs::path> files = artifact_files();
  CHECK(files.size() == 2);
  {
    std::ofstream f(files[0], std::ios::binary | std::ios::trunc);
    f << "garbage, not an artifact envelope";
  }
  CHECK(cli("verify") == 1);
  CHECK(cli("verify --quarantine") == 1);
  CHECK(cli("verify") == 0);
  CHECK(artifact_files().size() == 1);

  // gc removes backdated tmp litter and stale claims, leaves the
  // healthy artifact alone.
  const fs::path bucket_dir = artifact_files()[0].parent_path();
  const fs::path tmp = bucket_dir / "orphan.tmp.999";
  const fs::path claim = (artifact_files()[0].string() + ".claim");
  {
    std::ofstream(tmp) << "torn write";
    std::ofstream(claim) << "pid=0 host=gone";
  }
  backdate(tmp, 7200);
  backdate(claim, 7200);
  CHECK(cli("gc") == 0);
  CHECK(!fs::exists(tmp, ec));
  CHECK(!fs::exists(claim, ec));
  CHECK(artifact_files().size() == 1);

  // evict removes artifacts older than the cutoff — and only those.
  CHECK(store_save_doubles("results", "cli_smoke_fresh", {4.0}));
  // Backdate the ORIGINAL artifact (the fresh one keeps its mtime).
  for (const fs::path& p : artifact_files()) {
    if (p.string().find("cli_smoke_fresh") == std::string::npos) {
      backdate(p, 7200);
    }
  }
  CHECK(cli("evict --older-than 3600") == 0);
  CHECK(artifact_files().size() == 1);
  CHECK(store_has("results", "cli_smoke_fresh"));
  CHECK(cli("verify") == 0);

  // Bad usage exits nonzero.
  CHECK(cli("evict") != 0);
  CHECK(cli("frobnicate") != 0);

  fs::remove_all(g_root, ec);
  return qavat::test::finish("test_store_cli");
}
