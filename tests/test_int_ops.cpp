// Tier-1: integer GEMM + requantization kernels (tensor/int_ops.h) and the
// int8 inference backend (core/quant/int8_backend.h). The integer kernels
// carry a stronger determinism contract than the float path — results are
// bit-identical for ANY thread count and for both kernel modes (VNNI and
// portable) — so every comparison here is exact except the int8-vs-float
// logit checks, which are bounded by the requant grid step.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/quant/int8_backend.h"
#include "core/variability/variability.h"
#include "eval/evaluator.h"
#include "tensor/int_ops.h"
#include "tensor/parallel_for.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

// Reference s8 x s8 -> s32 NT GEMM. k stays small enough here that the
// true accumulator fits int32 (|acc| <= 128 * 127 * k).
void naive_gemm(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                index_t m, index_t k, index_t n) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      std::int32_t s = 0;
      for (index_t p = 0; p < k; ++p) {
        s += static_cast<std::int32_t>(a[i * k + p]) *
             static_cast<std::int32_t>(b[j * k + p]);
      }
      c[i * n + j] = s;
    }
  }
}

void fill_codes(std::vector<std::int8_t>& v, Rng& rng, int lo, int hi) {
  for (auto& x : v) {
    x = static_cast<std::int8_t>(lo + rng.below(hi - lo + 1));
  }
}

bool same_ints(const std::vector<std::int32_t>& a,
               const std::vector<std::int32_t>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(std::int32_t)) == 0;
}

// gemm_s8s8_s32 == naive reference == prepacked form, on one shape.
void check_gemm_shape(index_t m, index_t k, index_t n, Rng& rng) {
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(n * k));
  fill_codes(a, rng, -128, 127);
  fill_codes(b, rng, -127, 127);
  std::vector<std::int32_t> want(static_cast<std::size_t>(m * n));
  naive_gemm(a.data(), b.data(), want.data(), m, k, n);

  std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
  gemm_s8s8_s32(a.data(), b.data(), got.data(), m, k, n);
  CHECK(same_ints(got, want));

  // Prepacked form: identical integers, and the emitted row sums are the
  // per-row code sums.
  std::vector<std::uint8_t> packed(
      static_cast<std::size_t>(packed_b_s8_bytes(n, k)));
  std::vector<std::int32_t> bsum(static_cast<std::size_t>(n), -1);
  pack_b_s8(b.data(), n, k, packed.data(), bsum.data());
  for (index_t j = 0; j < n; ++j) {
    std::int32_t s = 0;
    for (index_t p = 0; p < k; ++p) s += b[j * k + p];
    CHECK(bsum[static_cast<std::size_t>(j)] == s);
  }
  std::vector<std::int32_t> got2(static_cast<std::size_t>(m * n), -1);
  gemm_s8s8_s32_prepacked(a.data(), packed.data(), bsum.data(), got2.data(), m,
                          k, n);
  CHECK(same_ints(got2, want));
}

}  // namespace

int main() {
  Rng rng(1234);

  // --- kernel correctness across shapes (degenerate, 1xN, Nx1, odd k/n
  // tails that exercise the VNNI k-group and column masks) ---
  const index_t shapes[][3] = {
      {1, 1, 1},   {1, 7, 1},   {5, 1, 3},    {1, 64, 9},
      {3, 5, 2},   {17, 33, 9}, {33, 261, 47}, {64, 128, 48},
  };
  for (const auto& s : shapes) check_gemm_shape(s[0], s[1], s[2], rng);

  // --- VNNI and portable kernels produce identical integers ---
  if (detail::int8_kernel_is_vnni()) {
    const index_t m = 19, k = 77, n = 23;
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(n * k));
    fill_codes(a, rng, -128, 127);
    fill_codes(b, rng, -127, 127);
    std::vector<std::int32_t> vnni(static_cast<std::size_t>(m * n));
    gemm_s8s8_s32(a.data(), b.data(), vnni.data(), m, k, n);
    detail::set_int8_force_portable(true);
    CHECK(!detail::int8_kernel_is_vnni());
    std::vector<std::int32_t> portable(static_cast<std::size_t>(m * n));
    gemm_s8s8_s32(a.data(), b.data(), portable.data(), m, k, n);
    detail::set_int8_force_portable(false);
    CHECK(same_ints(vnni, portable));
  }

  // --- thread-count bit-identity on a shape above the serial cutoff
  // (512 * 128 * 128 = 2^23 MACs > kSerialMacs) ---
  {
    const index_t m = 512, k = 128, n = 128;
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(n * k));
    fill_codes(a, rng, -128, 127);
    fill_codes(b, rng, -127, 127);
    const index_t saved = num_threads();
    set_num_threads(1);
    std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n));
    gemm_s8s8_s32(a.data(), b.data(), ref.data(), m, k, n);
    for (index_t nt : {index_t{2}, index_t{3}, index_t{5}}) {
      set_num_threads(nt);
      std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
      gemm_s8s8_s32(a.data(), b.data(), got.data(), m, k, n);
      CHECK(same_ints(got, ref));
    }
    set_num_threads(saved);
  }

  // --- quantize_to_s8: half-to-even rounding, bias, clamping, and exact
  // recovery of activation-grid values ---
  {
    const float xs[] = {0.5f, 1.5f, 2.5f, -0.5f, -1.5f, -2.5f, 200.0f,
                        -200.0f};
    std::int8_t out[8];
    quantize_to_s8(xs, 8, 1.0f, 0, -128, 127, out);
    const std::int8_t want[] = {0, 2, 2, 0, -2, -2, 127, -128};
    for (int i = 0; i < 8; ++i) CHECK(out[i] == want[i]);

    // Grid values scale * q, q in [0, 255], recover q - 128 exactly under
    // the a8 biased mapping.
    const float scale = 0.0123f;
    std::vector<float> grid(256);
    std::vector<std::int8_t> codes(256);
    for (int q = 0; q < 256; ++q) grid[q] = scale * static_cast<float>(q);
    quantize_to_s8(grid.data(), 256, 1.0f / scale, -128, -128, 127,
                   codes.data());
    for (int q = 0; q < 256; ++q) CHECK(codes[q] == q - 128);

    // Narrower clamp window (the w8 symmetric range).
    quantize_to_s8(xs, 8, 100.0f, 0, -127, 127, out);
    CHECK(out[0] == 50 && out[6] == 127 && out[7] == -127);
  }

  // --- requant_scale / requantize_one: gemmlowp pipeline ---
  {
    const RequantScale half = requant_scale(0.5);
    CHECK(half.multiplier == (1 << 30) && half.shift == 31);
    // Ties round away from zero: 0.5 -> 1, 1.5 -> 2, -1.5 -> -2.
    CHECK(requantize_one(1, half) == 1);
    CHECK(requantize_one(3, half) == 2);
    CHECK(requantize_one(-3, half) == -2);
    CHECK(requantize_one(-1, half) == -1);
    CHECK(requantize_one(4, half) == 2);
    CHECK(requantize_one(0, half) == 0);

    // Exact dyadic scale 3/1024: acc * 3 then half-away >> 10.
    const RequantScale r = requant_scale(3.0 / 1024.0);
    CHECK(requantize_one(1024, r) == 3);
    CHECK(requantize_one(1000, r) == 3);   // 2.93 -> 3
    CHECK(requantize_one(-1000, r) == -3);
    CHECK(requantize_one(171, r) == 1);    // 0.5009 -> 1

    // Saturation at both int32 rails.
    const RequantScale big = requant_scale(1048576.0);  // 2^20
    CHECK(requantize_one(1 << 20, big) == 2147483647);
    CHECK(requantize_one(-(1 << 20), big) == -2147483647 - 1);

    // Domain: outside [2^-24, 2^31) throws.
    for (double bad : {0.0, -1.0, 1.0 / (1 << 30) / (1 << 30),
                       4294967296.0}) {
      bool threw = false;
      try {
        requant_scale(bad);
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      CHECK(threw);
    }

    // requantize_s32_s8: zero-point shift then s8 clamp.
    const std::int32_t acc[] = {0, 200, -400, 1024, -1024};
    std::int8_t q[5];
    requantize_s32_s8(acc, 5, half, 10, q);
    const std::int8_t wantq[] = {10, 110, -128, 127, -128};
    for (int i = 0; i < 5; ++i) CHECK(q[i] == wantq[i]);
  }

  // --- Int8Backend vs the float weight-domain forward, exact grid
  // (noise-free): logits agree to float accumulation error ---
  {
    Rng lrng(7);
    QuantLinear layer(48, 12, 8, 8, lrng);
    layer.set_training(false);
    layer.refresh_weight_scale();
    const float a_scale = 0.01f;
    layer.act_quantizer().set_scale(a_scale);

    Tensor x({6, 48});
    for (index_t i = 0; i < x.size(); ++i) {
      x[i] = a_scale * static_cast<float>(lrng.below(256));  // on-grid input
    }
    Tensor y_float = layer.forward(x);

    Workspace ws;
    Int8Backend backend(layer, ws);
    layer.set_analog_backend(&backend);
    Tensor y_int = layer.forward(x);
    layer.set_analog_backend(nullptr);

    CHECK(backend.planes_exact_grid());
    CHECK(y_int.dim(0) == 6 && y_int.dim(1) == 12);
    for (index_t i = 0; i < y_int.size(); ++i) {
      CHECK_NEAR(y_int[i], y_float[i], 1e-4 * (1.0 + std::fabs(y_float[i])));
    }

    // Uncalibrated activation scale: the backend refuses.
    Rng lrng2(8);
    QuantLinear raw(8, 4, 8, 8, lrng2);
    raw.set_training(false);
    raw.refresh_weight_scale();
    Int8Backend backend2(raw, ws);
    raw.set_analog_backend(&backend2);
    Tensor xr({2, 8});
    bool threw = false;
    try {
      raw.forward(xr);
    } catch (const std::logic_error&) {
      threw = true;
    }
    raw.set_analog_backend(nullptr);
    CHECK(threw);
  }

  // --- Int8Backend grouped (noise-batched) forward under injected
  // variability: per-element error bounded by the per-slot requant grid
  // step (0.5 * unit * sum|x|), and the planes report the max-scaled grid ---
  {
    Rng lrng(9);
    QuantLinear layer(32, 10, 8, 8, lrng);
    layer.set_training(false);
    layer.refresh_weight_scale();
    const float a_scale = 0.02f;
    layer.act_quantizer().set_scale(a_scale);
    const index_t nb = 4, rows_per = 3;
    ensure_noise_batch(layer, nb);
    const VariabilityConfig vcfg =
        VariabilityConfig::within_only(VarianceModel::kWeightProportional, 0.3);
    Rng noise_rng(10);
    for (index_t s = 0; s < nb; ++s) {
      sample_variability_slot(layer, vcfg, noise_rng, s);
    }

    Tensor x({nb * rows_per, 32});
    for (index_t i = 0; i < x.size(); ++i) {
      x[i] = a_scale * static_cast<float>(lrng.below(256));
    }
    Tensor y_float = layer.forward(x);

    Workspace ws;
    Int8Backend backend(layer, ws);
    layer.set_analog_backend(&backend);
    Tensor y_int = layer.forward(x);
    layer.set_analog_backend(nullptr);
    CHECK(!backend.planes_exact_grid());  // noisy weights: max-scaled grid

    // Per-slot error bound from that slot's |w|max / 127 grid step.
    const Tensor& weff = layer.backend_effective_weight();
    CHECK(weff.dim(0) == nb * 10 && weff.dim(1) == 32);
    for (index_t g = 0; g < nb; ++g) {
      float wmax = 0.0f;
      for (index_t i = 0; i < 10 * 32; ++i) {
        const float v = std::fabs(weff[g * 10 * 32 + i]);
        if (v > wmax) wmax = v;
      }
      const double unit = (wmax > 0.0f ? wmax : 1.0f) / 127.0;
      for (index_t r = 0; r < rows_per; ++r) {
        const index_t row = g * rows_per + r;
        double xsum = 0.0;
        for (index_t p = 0; p < 32; ++p) xsum += std::fabs(x[row * 32 + p]);
        const double tol = 0.5 * unit * xsum * 1.05 + 1e-4;
        for (index_t j = 0; j < 10; ++j) {
          CHECK_NEAR(y_int[row * 10 + j], y_float[row * 10 + j], tol);
        }
      }
    }
  }

  // --- evaluate_under_variability through the int8 backend: per-chip
  // accuracies invariant to chip_batch and thread count, and equal to the
  // float weight-domain backend on the noise-free (exact-grid) path ---
  {
    SynthDigitsConfig dcfg;
    dcfg.n_train = 16;
    dcfg.n_test = 96;
    SplitDataset data = make_synth_digits(dcfg);
    ModelConfig mcfg;
    mcfg.a_bits = 4;
    mcfg.w_bits = 2;
    mcfg.in_channels = 1;
    mcfg.image_size = 12;
    auto model = make_model(ModelKind::kLeNet5s, mcfg);
    for (QuantLayerBase* q : model->quant_layers()) {
      q->refresh_weight_scale();
      q->act_quantizer().set_scale(0.25f);
    }
    model->set_training(false);

    EvalConfig base;
    base.n_chips = 5;
    base.max_test_samples = 96;
    base.batch_size = 32;
    base.seed = 321;
    base.backend = EvalBackend::kInt8;

    const VariabilityConfig vcfg =
        VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.4);
    EvalConfig seq = base;
    seq.chip_batch = 1;
    const EvalStats ref =
        evaluate_under_variability(*model, data.test, vcfg, seq);
    CHECK(static_cast<index_t>(ref.per_chip_acc.size()) == base.n_chips);
    for (index_t cb : {index_t{2}, index_t{4}, index_t{0}}) {
      EvalConfig batched = base;
      batched.chip_batch = cb;
      const EvalStats got =
          evaluate_under_variability(*model, data.test, vcfg, batched);
      CHECK(got.per_chip_acc == ref.per_chip_acc);
    }
    const index_t saved = num_threads();
    for (index_t nt : {index_t{2}, index_t{3}}) {
      set_num_threads(nt);
      EvalConfig batched = base;
      batched.chip_batch = 4;
      const EvalStats got =
          evaluate_under_variability(*model, data.test, vcfg, batched);
      CHECK(got.per_chip_acc == ref.per_chip_acc);
    }
    set_num_threads(saved);

    // Noise-free: requant grid exact, so int8 and weight-domain chips
    // classify identically.
    const VariabilityConfig off;  // sigma_w = sigma_b = 0
    EvalConfig wd = base;
    wd.backend = EvalBackend::kWeightDomain;
    const EvalStats a = evaluate_under_variability(*model, data.test, off, wd);
    const EvalStats b =
        evaluate_under_variability(*model, data.test, off, base);
    CHECK(a.per_chip_acc == b.per_chip_acc);
  }

  // --- eval_backend_from_env re-reads the environment every call
  // (scenario sweeps flip it between runs) ---
  {
    setenv("QAVAT_EVAL_BACKEND", "int8", 1);
    CHECK(eval_backend_from_env() == EvalBackend::kInt8);
    setenv("QAVAT_EVAL_BACKEND", "circuit", 1);
    CHECK(eval_backend_from_env() == EvalBackend::kCircuit);
    setenv("QAVAT_EVAL_BACKEND", "weight_domain", 1);
    CHECK(eval_backend_from_env() == EvalBackend::kWeightDomain);
    unsetenv("QAVAT_EVAL_BACKEND");
    CHECK(eval_backend_from_env() == EvalBackend::kWeightDomain);
    CHECK(std::strcmp(to_string(EvalBackend::kInt8), "int8") == 0);
  }

  return qavat::test::finish("test_int_ops");
}
