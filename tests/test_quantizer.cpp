// Tier-1: quantize_dequantize round-trip and STE mask, mmse_scale
// scale-equivariance/monotonicity, activation quantizer behavior.
#include "core/quant/quantizer.h"

#include "tensor/ops.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

double qdq_mse(const Tensor& x, float scale, index_t bits) {
  Tensor out;
  quantize_dequantize(x, scale, bits, out);
  double err = 0.0;
  for (index_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x[i]) - static_cast<double>(out[i]);
    err += d * d;
  }
  return err / static_cast<double>(x.size());
}

}  // namespace

int main() {
  // Round-trip: values already on the grid are reproduced exactly and the
  // quantization is idempotent.
  const float scale = 0.25f;
  Tensor grid({7});
  const float vals[7] = {-0.75f, -0.5f, -0.25f, 0.0f, 0.25f, 0.5f, 0.75f};
  for (index_t i = 0; i < 7; ++i) grid[i] = vals[i];
  Tensor out, mask;
  quantize_dequantize(grid, scale, 4, out, &mask);
  for (index_t i = 0; i < 7; ++i) {
    CHECK_NEAR(out[i], grid[i], 1e-6);
    CHECK(mask[i] == 1.0f);
  }
  Tensor out2;
  quantize_dequantize(out, scale, 4, out2);
  for (index_t i = 0; i < 7; ++i) CHECK_NEAR(out2[i], out[i], 0.0);

  // Ternary (2-bit): grid is {-s, 0, +s}; out-of-range values clip and
  // fall outside the STE pass region.
  Tensor t({3});
  t[0] = 0.9f;
  t[1] = -0.04f;
  t[2] = 0.06f;
  quantize_dequantize(t, 0.1f, 2, out, &mask);
  CHECK_NEAR(out[0], 0.1f, 1e-6);   // clipped to +s
  CHECK(mask[0] == 0.0f);
  CHECK_NEAR(out[1], 0.0f, 1e-6);
  CHECK(mask[1] == 1.0f);
  CHECK_NEAR(out[2], 0.1f, 1e-6);
  CHECK(mask[2] == 1.0f);

  // mmse_scale: equivariant under input scaling, beats the max-based
  // scale for ternary on heavy-tailed data, and its MSE is monotonically
  // non-increasing in bit width.
  Rng rng(3);
  Tensor w({4096});
  fill_normal(w, rng);
  const float s1 = mmse_scale(w, 2);
  Tensor w2 = w;
  for (index_t i = 0; i < w2.size(); ++i) w2[i] *= 3.0f;
  const float s2 = mmse_scale(w2, 2);
  CHECK_NEAR(s2 / s1, 3.0, 0.1);

  const float max_based = w.abs_max() / static_cast<float>(signed_qmax(2));
  CHECK(qdq_mse(w, s1, 2) <= qdq_mse(w, max_based, 2) + 1e-9);

  double prev = 1e9;
  for (index_t bits : {index_t{2}, index_t{3}, index_t{4}, index_t{6}}) {
    const double err = qdq_mse(w, mmse_scale(w, bits), bits);
    CHECK(err <= prev + 1e-12);
    prev = err;
  }

  // Activation quantizer: EMA calibration then unsigned quantization.
  ActQuantizer aq(4);
  CHECK(!aq.calibrated());
  Tensor x({100});
  fill_uniform(x, rng, 0.0, 2.0);
  aq.observe(x);
  CHECK(aq.calibrated());
  Tensor xq;
  aq.quantize(x, xq);
  for (index_t i = 0; i < x.size(); ++i) {
    CHECK(xq[i] >= 0.0f);
    CHECK_NEAR(xq[i], x[i], aq.scale() * 0.51);
  }
  return qavat::test::finish("test_quantizer");
}
