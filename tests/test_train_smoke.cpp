// Tier-1 acceptance smoke: the full pipeline learns, and QAVAT-trained
// mean accuracy under within-chip variability (sigma_W = 0.3,
// weight-proportional) measurably exceeds the QAT-only baseline.
#include "eval/experiment.h"

#include "tests/test_common.h"

using namespace qavat;

int main() {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 2000;
  dcfg.n_test = 400;
  SplitDataset data = make_synth_digits(dcfg);

  const ModelKind kind = ModelKind::kLeNet5s;
  ModelConfig mcfg = default_model_config(kind, 4, 2);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  const VariabilityConfig env =
      VariabilityConfig::within_only(VarianceModel::kWeightProportional, 0.3);
  tcfg.train_noise = env;

  auto qat = train_cached(kind, mcfg, TrainAlgo::kQAT, data, tcfg);
  std::printf("QAT clean accuracy: %.3f\n", qat.clean_test_acc);
  CHECK(qat.clean_test_acc > 0.6);  // the pipeline actually learns

  EvalConfig ecfg;
  ecfg.n_chips = 30;
  EvalStats qat_noisy =
      evaluate_under_variability(*qat.model, data.test, env, ecfg);

  auto qavat = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  std::printf("QAVAT clean accuracy: %.3f\n", qavat.clean_test_acc);
  EvalStats qavat_noisy =
      evaluate_under_variability(*qavat.model, data.test, env, ecfg);

  std::printf("mean accuracy under sigma_W=0.3: QAT %.3f, QAVAT %.3f\n",
              qat_noisy.accuracy.mean, qavat_noisy.accuracy.mean);
  CHECK(qavat_noisy.accuracy.mean > 0.5);
  // The paper's core claim at smoke scale: variability-aware training
  // measurably beats quantization-aware training alone under deployment
  // noise.
  CHECK(qavat_noisy.accuracy.mean > qat_noisy.accuracy.mean + 0.01);

  // Determinism: the result cache and a fresh evaluation agree.
  const double cached = with_result_cache("smoke_qavat", [&] {
    return evaluate_under_variability(*qavat.model, data.test, env, ecfg)
        .accuracy.mean;
  });
  const double again = with_result_cache("smoke_qavat", [] { return -1.0; });
  CHECK_NEAR(cached, again, 0.0);
  return qavat::test::finish("test_train_smoke");
}
