// Direct Session coverage over the runner/claim stack: run_all's
// spec-order bit-identity against a sequential run() loop (cold and
// warm), provenance counter aggregation (counters()), failure
// surfacing at the failing spec's position with nothing executing past
// it, and the claim-aware scheduler's busy-skip behavior — a unit whose
// claim is held elsewhere is deferred, not waited on, and results still
// return in manifest order. Runs against a private temp store
// (QAVAT_STORE_DIR is set first thing in main, before any store call).
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/manifest.h"
#include "eval/runner.h"
#include "eval/store.h"
#include "tests/test_common.h"

using namespace qavat;
namespace fs = std::filesystem;

namespace {

// Tiny-but-real scenario: one epoch, two Monte-Carlo chips, a handful
// of test samples — enough to exercise every cache/claim path fast.
ScenarioSpec tiny_spec(std::uint64_t init_seed, double sigma) {
  ScenarioSpec s = ScenarioSpec::within(ModelKind::kLeNet5s, 4, 4,
                                        ScenarioAlgo::kQAVAT,
                                        VarianceModel::kWeightProportional,
                                        sigma);
  s.model_cfg.init_seed = init_seed;
  s.train.epochs = 1;
  s.eval.n_chips = 2;
  s.eval.max_test_samples = 32;
  return s;
}

// Clean-only (no deploy noise) QAT spec: exactly one claim unit, the
// QAT pretrain model — the minimal unit for scheduler probes.
ScenarioSpec clean_qat_spec(std::uint64_t init_seed) {
  ScenarioSpec s = ScenarioSpec::base(ModelKind::kLeNet5s, 4, 4,
                                      ScenarioAlgo::kQAT);
  s.model_cfg.init_seed = init_seed;
  s.train.epochs = 1;
  return s;
}

bool results_identical(const ScenarioResult& a, const ScenarioResult& b) {
  return a.key == b.key && a.clean_acc == b.clean_acc &&
         a.mean_acc == b.mean_acc &&
         a.mc.accuracy.mean == b.mc.accuracy.mean &&
         a.mc.accuracy.stddev == b.mc.accuracy.stddev &&
         a.mc.n_chips == b.mc.n_chips;
}

void test_run_all_matches_run_loop() {
  const std::vector<ScenarioSpec> specs = {tiny_spec(11, 0.1),
                                           tiny_spec(22, 0.3)};

  // Cold sequential reference.
  clear_experiment_caches(true);
  Session loop_session;
  std::vector<ScenarioResult> loop_results;
  for (const ScenarioSpec& s : specs) loop_results.push_back(loop_session.run(s));

  // Cold pipelined run_all on a re-dropped store: same numbers, same
  // order, same provenance.
  clear_experiment_caches(true);
  Session all_session;
  const std::vector<ScenarioResult> all_results = all_session.run_all(specs);
  CHECK(all_results.size() == specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CHECK(all_results[i].key == specs[i].key());
    CHECK(results_identical(all_results[i], loop_results[i]));
    CHECK(all_results[i].trained);
    CHECK(all_results[i].eval_computed);
  }
  const SessionCounters cold = all_session.counters();
  CHECK(cold.scenarios == 2);
  CHECK(cold.trained == 2);
  CHECK(cold.evals_computed == 2);
  CHECK(cold.eval_cache_hits == 0);

  // Warm run_all through the store (memory caches dropped): nothing
  // trains or evaluates, numbers bit-identical.
  clear_experiment_caches(false);
  Session warm_session;
  const std::vector<ScenarioResult> warm_results = warm_session.run_all(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CHECK(results_identical(warm_results[i], all_results[i]));
    CHECK(!warm_results[i].trained);
    CHECK(warm_results[i].model_from_store);
    CHECK(!warm_results[i].eval_computed);
  }
  const SessionCounters warm = warm_session.counters();
  CHECK(warm.scenarios == 2);
  CHECK(warm.trained == 0);
  CHECK(warm.model_store_hits == 2);
  CHECK(warm.evals_computed == 0);
  CHECK(warm.eval_cache_hits == 2);

  // run_manifest (uncontended) over the same specs: manifest-order
  // results, identical numbers, in-order completion trace.
  clear_experiment_caches(false);
  SweepManifest m;
  m.name = "test";
  m.specs = specs;
  Session manifest_session;
  SweepSchedule schedule;
  const std::vector<ScenarioResult> manifest_results =
      manifest_session.run_manifest(m, &schedule);
  CHECK(manifest_results.size() == specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CHECK(results_identical(manifest_results[i], all_results[i]));
  }
  CHECK(schedule.completion_order.size() == specs.size());
  CHECK(schedule.completion_order[0] == 0);
  CHECK(schedule.completion_order[1] == 1);
  CHECK(schedule.deferrals == 0);
  CHECK(schedule.wait_rounds == 0);
}

void test_failure_position() {
  clear_experiment_caches(true);
  // The bad spec's model geometry disagrees with the workload dataset
  // (image_size +4), so its first forward pass hits the always-on layer
  // input-shape check — a deterministic std::invalid_argument mid-grid.
  ScenarioSpec bad = tiny_spec(33, 0.2);
  bad.model_cfg.image_size += 4;
  const std::vector<ScenarioSpec> specs = {tiny_spec(44, 0.1), bad,
                                           tiny_spec(55, 0.3)};

  Session session;
  bool threw = false;
  try {
    session.run_all(specs);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  // Sequential semantics: the spec before the failure completed, the
  // one after it never started.
  const SessionCounters c = session.counters();
  CHECK(c.scenarios == 1);
  const std::vector<ClaimUnitRef> after = session.claim_units(specs[2]);
  CHECK(!after.empty());
  CHECK(!store_has(after[0].bucket, after[0].key));
  // And the completed spec's artifacts did publish.
  const std::vector<ClaimUnitRef> before = session.claim_units(specs[0]);
  CHECK(!before.empty());
  CHECK(store_has(before[0].bucket, before[0].key));
}

void test_scheduler_busy_skip() {
  clear_experiment_caches(true);
  const std::vector<ScenarioSpec> specs = {clean_qat_spec(101),
                                           clean_qat_spec(202)};
  SweepManifest m;
  m.name = "busy_skip";
  m.specs = specs;

  Session probe_session;
  const std::string key0 = probe_session.claim_units(specs[0])[0].key;
  const std::string key1 = probe_session.claim_units(specs[1])[0].key;
  CHECK(key0 != key1);

  // Hold spec 0's claim like a concurrent producer would, then run the
  // scheduler in another thread: it must defer spec 0, run spec 1, and
  // only come back to spec 0 once the claim is dropped.
  StoreClaimStatus status = StoreClaimStatus::kUnavailable;
  StoreClaim held = store_try_claim("models", key0, &status);
  CHECK(status == StoreClaimStatus::kAcquired);
  CHECK(held.held());
  CHECK(store_claim_busy("models", key0));

  SweepSchedule schedule;
  std::vector<ScenarioResult> results;
  std::thread runner([&] {
    Session session;
    results = session.run_manifest(m, &schedule);
  });

  // Wait (bounded) for the scheduler to finish the unblocked spec,
  // then release the lease so it can drain spec 0.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (!store_has("models", key1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  CHECK(store_has("models", key1));
  held.release();
  runner.join();

  // Manifest-order results, out-of-order execution.
  CHECK(results.size() == 2);
  CHECK(results[0].key == specs[0].key());
  CHECK(results[1].key == specs[1].key());
  CHECK(schedule.completion_order.size() == 2);
  CHECK(schedule.completion_order[0] == 1);
  CHECK(schedule.completion_order[1] == 0);
  CHECK(schedule.deferrals >= 1);
}

}  // namespace

int main() {
  // Private store, enabled, before any store call; fast claim backoff
  // so the drain phase of the busy-skip test turns around quickly.
  const std::string store_dir =
      (fs::temp_directory_path() /
       ("qavat-test-runner-" + std::to_string(::getpid())))
          .string();
  ::setenv("QAVAT_STORE_DIR", store_dir.c_str(), 1);
  ::setenv("QAVAT_CLAIM_BACKOFF_MS", "5", 1);
  std::error_code ec;
  fs::remove_all(store_dir, ec);

  test_run_all_matches_run_loop();
  test_failure_position();
  test_scheduler_busy_skip();

  fs::remove_all(store_dir, ec);
  return qavat::test::finish("test_runner");
}
