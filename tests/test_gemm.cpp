// Tier-1: the tiled/threaded GEMM layer against a naive reference across
// odd/non-tile-multiple shapes and all three transpose variants, the
// always-on shape checks (must throw in Release builds too), thread-count
// bit-identity, and the grouped (noise-batched) NT kernel.
#include <cstring>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/parallel_for.h"
#include "tests/test_common.h"

using namespace qavat;

namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * static_cast<double>(b[p * n + j]);
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  const index_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) t[j * m + i] = a[i * n + j];
  }
  return t;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  double m = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// Max |reference| so tolerances scale with the contraction length.
double scale_of(const Tensor& t) {
  double s = 1.0;
  for (index_t i = 0; i < t.size(); ++i) {
    s = std::max(s, std::fabs(static_cast<double>(t[i])));
  }
  return s;
}

void check_all_variants(index_t m, index_t k, index_t n, Rng& rng) {
  Tensor a({m, k}), b({k, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  Tensor ref = naive_matmul(a, b);
  const double tol = 1e-5 * scale_of(ref) * std::sqrt(static_cast<double>(k));

  Tensor c = matmul(a, b);
  CHECK(c.shape() == ref.shape());
  CHECK(max_abs_diff(c, ref) < tol);
  CHECK(max_abs_diff(matmul_nt(a, transpose(b)), ref) < tol);
  CHECK(max_abs_diff(matmul_tn(transpose(a), b), ref) < tol);
}

template <typename Fn>
bool throws_invalid_argument(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument&) {
    return true;
  } catch (...) {
    return false;
  }
  return false;
}

}  // namespace

int main() {
  Rng rng(42);

  // Odd / non-tile-multiple shapes around the register (4) and column (64)
  // tile sizes, plus degenerate and skinny cases.
  const index_t shapes[][3] = {
      {1, 1, 1},   {3, 5, 7},    {7, 13, 5},  {4, 4, 4},    {16, 16, 16},
      {17, 31, 9}, {64, 48, 33}, {5, 257, 3}, {33, 1, 65},  {1, 96, 130},
      {66, 66, 66}, {31, 7, 127},
  };
  for (const auto& s : shapes) check_all_variants(s[0], s[1], s[2], rng);

  // Shape mismatches throw std::invalid_argument in EVERY build type
  // (the old assert-only checks compiled out under NDEBUG).
  Tensor a23({2, 3}), b45({4, 5}), v3({3});
  CHECK(throws_invalid_argument([&] { matmul(a23, b45); }));
  CHECK(throws_invalid_argument([&] { matmul(a23, v3); }));
  CHECK(throws_invalid_argument([&] { matmul_nt(a23, b45); }));
  CHECK(throws_invalid_argument([&] { matmul_tn(a23, b45); }));
  CHECK(throws_invalid_argument([&] { matmul_nt_batched(a23, a23, 0); }));
  {
    Tensor a63({6, 3}), b43({4, 3});
    CHECK(throws_invalid_argument([&] { matmul_nt_batched(a63, b43, 4); }));
  }

  // Zero entries must not change the accumulation order: a GEMM where some
  // weights are exactly 0 must equal the same GEMM with those positions
  // contributing 0.0f products (no value-dependent skip branch).
  {
    Tensor a({9, 33}), b({33, 17});
    fill_normal(a, rng);
    fill_normal(b, rng);
    for (index_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
    Tensor dense = naive_matmul(a, b);
    CHECK(max_abs_diff(matmul(a, b), dense) <
          1e-5 * scale_of(dense) * std::sqrt(33.0));
  }

  // Thread-count bit-identity: the same product computed with 1, 2, 3 and
  // 5 threads must match bit for bit (deterministic row partitioning).
  {
    const index_t saved = num_threads();
    Tensor a({67, 129}), b({129, 43});
    fill_normal(a, rng);
    fill_normal(b, rng);
    Tensor bt = transpose(b);
    Tensor at = transpose(a);
    set_num_threads(1);
    Tensor c1 = matmul(a, b), c1nt = matmul_nt(a, bt), c1tn = matmul_tn(at, b);
    for (index_t nt : {2, 3, 5}) {
      set_num_threads(nt);
      CHECK(bit_identical(matmul(a, b), c1));
      CHECK(bit_identical(matmul_nt(a, bt), c1nt));
      CHECK(bit_identical(matmul_tn(at, b), c1tn));
    }
    set_num_threads(saved);
  }

  // Grouped NT GEMM == per-group matmul_nt, bit for bit, for any thread
  // count (this is the batched Monte-Carlo effective-weight path).
  {
    const index_t saved = num_threads();
    const index_t groups = 3, rows = 5, k = 37, n = 11;
    Tensor a({groups * rows, k}), b({groups * n, k});
    fill_normal(a, rng);
    fill_normal(b, rng);
    for (index_t nt : {1, 4}) {
      set_num_threads(nt);
      Tensor c = matmul_nt_batched(a, b, groups);
      CHECK(c.dim(0) == groups * rows && c.dim(1) == n);
      for (index_t g = 0; g < groups; ++g) {
        Tensor ag({rows, k}), bg({n, k});
        std::memcpy(ag.data(), a.data() + g * rows * k,
                    static_cast<std::size_t>(rows * k) * sizeof(float));
        std::memcpy(bg.data(), b.data() + g * n * k,
                    static_cast<std::size_t>(n * k) * sizeof(float));
        Tensor cg = matmul_nt(ag, bg);
        CHECK(std::memcmp(c.data() + g * rows * n, cg.data(),
                          static_cast<std::size_t>(rows * n) * sizeof(float)) == 0);
      }
    }
    set_num_threads(saved);
  }

  return qavat::test::finish("test_gemm");
}
