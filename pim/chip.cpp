#include "pim/chip.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qavat {

namespace {

/// Symmetric mid-tread quantization with dynamic full scale (the
/// converters range over the signal's max magnitude). bits <= 0 = ideal.
template <typename T>
void quantize_signal(std::vector<T>& x, index_t bits) {
  if (bits <= 0) return;
  double fs = 0.0;
  for (T v : x) fs = std::max(fs, std::fabs(static_cast<double>(v)));
  if (fs <= 0.0) return;
  const double levels = static_cast<double>(
      std::max<index_t>(1, (index_t{1} << (bits - 1)) - 1));
  const double step = fs / levels;
  for (T& v : x) {
    v = static_cast<T>(step * std::nearbyint(static_cast<double>(v) / step));
  }
}

}  // namespace

CrossbarArray::CrossbarArray(const CrossbarConfig& cfg, const Tensor& w,
                             double eps_b, Rng& rng)
    : cfg_(cfg), rows_(w.dim(0)), cols_(w.dim(1)), w_ideal_(w) {
  assert(w.ndim() == 2);
  const float wmax = w.abs_max();
  w_unit_ = wmax > 0.0f ? static_cast<double>(wmax) : 1.0;
  g_pos_.resize(w.shape());
  g_neg_.resize(w.shape());
  const VariabilityConfig& var = cfg_.variability;
  const float* pw = w.data();
  float* gp = g_pos_.data();
  float* gn = g_neg_.data();
  for (index_t i = 0; i < w.size(); ++i) {
    // Per-pair programming deviation: within-chip draw + chip-level eps_B.
    float w_eff = pw[i];
    if (var.enabled()) {
      const float eps = var.sigma_w > 0.0
                            ? static_cast<float>(rng.normal(0.0, var.sigma_w))
                            : 0.0f;
      if (var.model == VarianceModel::kWeightProportional) {
        w_eff *= 1.0f + eps + static_cast<float>(eps_b);
      } else {
        w_eff += (eps + static_cast<float>(eps_b)) * static_cast<float>(w_unit_);
      }
    }
    const double g = static_cast<double>(w_eff) / w_unit_ * cfg_.g_max;
    gp[i] = g > 0.0 ? static_cast<float>(g) : 0.0f;
    gn[i] = g < 0.0 ? static_cast<float>(-g) : 0.0f;
  }
}

std::vector<double> CrossbarArray::mvm(const std::vector<float>& x) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  std::vector<float> v = x;
  quantize_signal(v, cfg_.dac_bits);  // wordline DACs
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  const float* gp = g_pos_.data();
  const float* gn = g_neg_.data();
  for (index_t r = 0; r < rows_; ++r) {
    // Differential bitline currents: I+ - I- in conductance units.
    double ip = 0.0, in = 0.0;
    const float* rp = gp + r * cols_;
    const float* rn = gn + r * cols_;
    for (index_t c = 0; c < cols_; ++c) {
      ip += static_cast<double>(rp[c]) * v[static_cast<std::size_t>(c)];
      in += static_cast<double>(rn[c]) * v[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = (ip - in) / cfg_.g_max * w_unit_;
  }
  quantize_signal(y, cfg_.adc_bits);  // bitline ADCs
  return y;
}

std::vector<double> CrossbarArray::ideal_mvm(const std::vector<float>& x) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  const float* pw = w_ideal_.data();
  for (index_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const float* row = pw + r * cols_;
    for (index_t c = 0; c < cols_; ++c) {
      acc += static_cast<double>(row[c]) * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

PimChip::PimChip(const CrossbarConfig& cfg, std::uint64_t seed, index_t chip_idx)
    : cfg_(cfg), rng_(seed, static_cast<std::uint64_t>(chip_idx)) {
  eps_b_ = cfg_.variability.sigma_b > 0.0
               ? rng_.normal(0.0, cfg_.variability.sigma_b)
               : 0.0;
}

CrossbarArray PimChip::program_array(const Tensor& w) {
  return CrossbarArray(cfg_, w, eps_b_, rng_);
}

GtmColumn PimChip::program_gtm(index_t cells, double cell_weight) {
  GtmColumn gtm;
  gtm.cell_weight = cell_weight;
  gtm.cells.resize(static_cast<std::size_t>(cells));
  const VariabilityConfig& var = cfg_.variability;
  for (auto& cell : gtm.cells) {
    const double eps =
        (var.sigma_w > 0.0 ? rng_.normal(0.0, var.sigma_w) : 0.0) + eps_b_;
    if (var.model == VarianceModel::kWeightProportional) {
      cell = static_cast<float>(cell_weight * (1.0 + eps));
    } else {
      cell = static_cast<float>(cell_weight + eps * std::fabs(cell_weight));
    }
  }
  return gtm;
}

double PimChip::measure_eps_b(const GtmColumn& gtm) const {
  if (gtm.cells.empty() || gtm.cell_weight == 0.0) return 0.0;
  double mean = 0.0;
  for (float c : gtm.cells) mean += static_cast<double>(c);
  mean /= static_cast<double>(gtm.cells.size());
  // Both variance models reduce to the same normalized estimator.
  return (mean - gtm.cell_weight) / std::fabs(gtm.cell_weight);
}

}  // namespace qavat
