#include "pim/chip.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace qavat {

namespace {

/// Symmetric mid-tread quantization over [0, n) of `x` with dynamic full
/// scale (the converters range over the signal's max magnitude).
/// bits <= 0 = ideal (no-op).
template <typename T>
void quantize_signal(T* x, index_t n, index_t bits) {
  if (bits <= 0) return;
  double fs = 0.0;
  for (index_t i = 0; i < n; ++i) {
    fs = std::max(fs, std::fabs(static_cast<double>(x[i])));
  }
  if (fs <= 0.0) return;
  const double levels = static_cast<double>(
      std::max<index_t>(1, (index_t{1} << (bits - 1)) - 1));
  const double step = fs / levels;
  for (index_t i = 0; i < n; ++i) {
    x[i] = static_cast<T>(step *
                          std::nearbyint(static_cast<double>(x[i]) / step));
  }
}

}  // namespace

void quantize_rows(Tensor& t, index_t bits) {
  if (bits <= 0 || t.size() <= 0) return;
  const index_t n = t.dim(0), w = t.size() / t.dim(0);
  for (index_t r = 0; r < n; ++r) quantize_signal(t.data() + r * w, w, bits);
}

CrossbarArray::CrossbarArray(const CrossbarConfig& cfg, const Tensor& w,
                             double eps_b, Rng& rng, double w_unit,
                             bool keep_ideal)
    : cfg_(cfg), rows_(w.dim(0)), cols_(w.dim(1)) {
  assert(w.ndim() == 2);
  if (keep_ideal) w_ideal_ = w;
  if (w_unit > 0.0) {
    w_unit_ = w_unit;
  } else {
    w_unit_ = w_unit_from_max(w.abs_max());
  }
  g_.resize(w.shape());
  const VariabilityConfig& var = cfg_.variability;
  const float* pw = w.data();
  float* pg = g_.data();
  for (index_t i = 0; i < w.size(); ++i) {
    // Per-pair programming deviation: within-chip draw + chip-level eps_B.
    float w_eff = pw[i];
    if (var.enabled()) {
      const float eps = var.sigma_w > 0.0
                            ? static_cast<float>(rng.normal(0.0, var.sigma_w))
                            : 0.0f;
      if (var.model == VarianceModel::kWeightProportional) {
        w_eff *= 1.0f + eps + static_cast<float>(eps_b);
      } else {
        w_eff += (eps + static_cast<float>(eps_b)) * static_cast<float>(w_unit_);
      }
    }
    // Signed differential conductance: positive weights program G+, negative
    // G-; the stored difference is exact since the other pole is zero.
    pg[i] = static_cast<float>(static_cast<double>(w_eff) / w_unit_ * cfg_.g_max);
  }
}

void CrossbarArray::accumulate_currents(const Tensor& xq, Tensor& y,
                                        bool accumulate) const {
  if (accumulate) {
    matmul_nt_acc_into(xq, g_, y);
  } else {
    matmul_nt_into(xq, g_, y);
  }
}

void CrossbarArray::mvm_into(const Tensor& x, Tensor& y,
                             Tensor& dac_scratch) const {
  assert(x.ndim() == 2 && x.dim(1) == cols_);
  const Tensor* xr = &x;
  if (cfg_.dac_bits > 0) {
    dac_scratch.resize_for_overwrite(x.shape());
    std::memcpy(dac_scratch.data(), x.data(),
                static_cast<std::size_t>(x.size()) * sizeof(float));
    quantize_rows(dac_scratch, cfg_.dac_bits);
    xr = &dac_scratch;
  }
  accumulate_currents(*xr, y, /*accumulate=*/false);
  // Currents (conductance units) back to weight units. Applied after the
  // whole accumulation so tiled readouts can share the same epilogue.
  scale(y, static_cast<float>(w_unit_ / cfg_.g_max));
  quantize_rows(y, cfg_.adc_bits);
}

void CrossbarArray::mvm_into(const float* x, double* y) const {
  // Reference readout: one double accumulation chain per output row, in
  // ascending column order. thread_local DAC scratch keeps repeated calls
  // allocation-free (the eval hot loop this overload exists for).
  thread_local std::vector<float> v;
  const float* xr = x;
  if (cfg_.dac_bits > 0) {
    v.assign(x, x + cols_);
    quantize_signal(v.data(), cols_, cfg_.dac_bits);
    xr = v.data();
  }
  const float* pg = g_.data();
  for (index_t r = 0; r < rows_; ++r) {
    const float* row = pg + r * cols_;
    double acc = 0.0;
    for (index_t c = 0; c < cols_; ++c) {
      acc += static_cast<double>(row[c]) * xr[c];
    }
    y[r] = acc / cfg_.g_max * w_unit_;
  }
  quantize_signal(y, rows_, cfg_.adc_bits);
}

std::vector<double> CrossbarArray::mvm(const std::vector<float>& x) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  mvm_into(x.data(), y.data());
  return y;
}

void CrossbarArray::ideal_mvm_into(const float* x, double* y) const {
  if (w_ideal_.size() != rows_ * cols_) {
    throw std::logic_error(
        "CrossbarArray::ideal_mvm: programmed without keep_ideal");
  }
  const float* pw = w_ideal_.data();
  for (index_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const float* row = pw + r * cols_;
    for (index_t c = 0; c < cols_; ++c) {
      acc += static_cast<double>(row[c]) * x[c];
    }
    y[r] = acc;
  }
}

std::vector<double> CrossbarArray::ideal_mvm(const std::vector<float>& x) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  ideal_mvm_into(x.data(), y.data());
  return y;
}

PimChip::PimChip(const CrossbarConfig& cfg, std::uint64_t seed, index_t chip_idx)
    : cfg_(cfg), rng_(seed, static_cast<std::uint64_t>(chip_idx)) {
  eps_b_ = cfg_.variability.sigma_b > 0.0
               ? rng_.normal(0.0, cfg_.variability.sigma_b)
               : 0.0;
}

CrossbarArray PimChip::program_array(const Tensor& w, double w_unit,
                                     bool keep_ideal) {
  return CrossbarArray(cfg_, w, eps_b_, rng_, w_unit, keep_ideal);
}

GtmColumn PimChip::program_gtm(index_t cells, double cell_weight) {
  GtmColumn gtm;
  gtm.cell_weight = cell_weight;
  gtm.cells.resize(static_cast<std::size_t>(cells));
  const VariabilityConfig& var = cfg_.variability;
  for (auto& cell : gtm.cells) {
    const double eps =
        (var.sigma_w > 0.0 ? rng_.normal(0.0, var.sigma_w) : 0.0) + eps_b_;
    if (var.model == VarianceModel::kWeightProportional) {
      cell = static_cast<float>(cell_weight * (1.0 + eps));
    } else {
      cell = static_cast<float>(cell_weight + eps * std::fabs(cell_weight));
    }
  }
  return gtm;
}

double PimChip::measure_eps_b(const GtmColumn& gtm) const {
  if (gtm.cells.empty() || gtm.cell_weight == 0.0) return 0.0;
  double mean = 0.0;
  for (float c : gtm.cells) mean += static_cast<double>(c);
  mean /= static_cast<double>(gtm.cells.size());
  // Both variance models reduce to the same normalized estimator.
  return (mean - gtm.cell_weight) / std::fabs(gtm.cell_weight);
}

}  // namespace qavat
