// Crossbar tiling: partition one layer's {out, in} weight matrix across
// multiple physical arrays of bounded geometry (<= 512x512 by default,
// QAVAT_TILE_SIZE overrides) and run the circuit-level MVM through them.
// Following the Halide algorithm/schedule split, TilePlan is the pure
// partition description and TiledCrossbarLayer the kernel that consumes
// it; the math never changes with the tile grid.
//
// Determinism contract (tested by tests/test_pim_tiling.cpp):
//  * Column-tile partial sums accumulate in ascending tile order through
//    matmul_nt_acc_into, whose per-element chain CONTINUES from the
//    running value — so a tiled readout is bit-identical to an untiled
//    CrossbarArray::mvm_into on a noise-free config, for ANY tile grid
//    and any QAVAT_THREADS (DESIGN.md §10).
//  * All scratch (DAC-quantized input, column slices, row-tile partials)
//    is (owner, slot) Workspace storage: steady-shape MVMs perform zero
//    heap allocation after warm-up.
#pragma once

#include <vector>

#include "core/quant/qlayers.h"
#include "pim/chip.h"
#include "tensor/workspace.h"

namespace qavat {

/// QAVAT_TILE_SIZE (positive integer) as the max crossbar side length;
/// default 512. Resolved once and cached.
index_t tile_size_from_env();

/// Pure description of how a {out, in} weight matrix partitions into a
/// grid of <= tile x tile sub-arrays: row tile i covers output rows
/// [i*tile, min(out, (i+1)*tile)), column tile j covers input columns
/// likewise — only the trailing tiles are ragged. Value type; no
/// allocation beyond construction.
struct TilePlan {
  index_t out = 0;   ///< layer fan_out (rows of the weight matrix)
  index_t in = 0;    ///< layer fan_in (columns of the weight matrix)
  index_t tile = 0;  ///< max array side length

  /// Half-open extents of one tile within the layer matrix.
  struct Extent {
    index_t r0 = 0;    ///< first output row
    index_t rows = 0;  ///< output rows covered (<= tile)
    index_t c0 = 0;    ///< first input column
    index_t cols = 0;  ///< input columns covered (<= tile)
  };

  /// Build the plan for a {out, in} matrix; `tile` <= 0 selects
  /// QAVAT_TILE_SIZE (default 512). Throws std::invalid_argument on
  /// non-positive dimensions.
  static TilePlan make(index_t out, index_t in, index_t tile = 0);

  index_t row_tiles() const { return (out + tile - 1) / tile; }
  index_t col_tiles() const { return (in + tile - 1) / tile; }
  index_t n_tiles() const { return row_tiles() * col_tiles(); }

  /// Extents of tile (i, j); i in [0, row_tiles()), j in [0, col_tiles()).
  Extent tile_at(index_t i, index_t j) const;
};

/// One layer's weights programmed across a TilePlan grid of CrossbarArray
/// tiles on one PimChip, with an optional GTM spare column per array.
/// Every tile shares the layer-level conductance mapping (w_unit = max
/// |w| of the whole layer), so the programmed conductances are the same
/// floats an untiled array would hold — the precondition for the
/// bit-equality contract above. Implements AnalogBackend, so the
/// Monte-Carlo evaluator can route a quant layer's analog MVM through it
/// (EvalConfig::backend = kCircuit).
///
/// Thread-safety: construction programs arrays (advances the chip's RNG)
/// and mvm_into acquires workspace slots — both single-driver-thread,
/// like the rest of the eval pipeline. Inside one mvm_into call, row
/// tiles (disjoint output blocks, scratch pre-acquired by the driver)
/// run as a pool job whose per-array GEMMs nest on the same worker
/// budget, with bit-identical results for any QAVAT_THREADS.
class TiledCrossbarLayer : public AnalogBackend {
 public:
  /// Program `w` {out, in} across `plan`'s tiles on `chip`, in row-major
  /// tile order (array, then its GTM column when `with_gtm`). `ws` is
  /// the scratch arena for MVM staging (nullptr = private arena). Each
  /// GTM spare column has as many cells as its array has rows — the
  /// estimate error is set by geometry, ~ sigma_W / sqrt(sum of rows).
  TiledCrossbarLayer(PimChip& chip, const Tensor& w, const TilePlan& plan,
                     bool with_gtm = false, Workspace* ws = nullptr);
  /// Releases this layer's scratch slots from the shared workspace, so a
  /// torn-down chip never crowds live layers out of the retention cap.
  ~TiledCrossbarLayer() override;
  // Slot keys embed `this` and arrays_ holds RNG-realized state; a
  // copied/moved layer would alias or orphan both.
  TiledCrossbarLayer(const TiledCrossbarLayer&) = delete;
  TiledCrossbarLayer& operator=(const TiledCrossbarLayer&) = delete;

  /// Tiled analog MVM: `x2d` {n, in} -> `y` {n, out} (resized without
  /// zero-fill). DAC-quantizes each input row once over its full-row
  /// dynamic range (the wordline drivers are shared by a row of tiles),
  /// accumulates column-tile partial currents in ascending tile order,
  /// scales to weight units, and ADC-quantizes each assembled output row.
  /// Zero heap allocation at steady shape.
  void mvm_into(const Tensor& x2d, Tensor& y) override;

  index_t rows() const { return plan_.out; }  ///< layer fan_out
  index_t cols() const { return plan_.in; }   ///< layer fan_in
  const TilePlan& plan() const { return plan_; }
  index_t n_arrays() const { return static_cast<index_t>(arrays_.size()); }
  /// Array of tile (i, j) (row-major grid order).
  const CrossbarArray& array(index_t i, index_t j) const;

  /// Chip-level eps_B estimate: cell-count-weighted mean of the
  /// per-array GTM estimates — equivalent to pooling every spare-column
  /// cell, so the error is ~ sigma_W / sqrt(total_gtm_cells()) even with
  /// ragged (unequal-row) tiles. 0 when built without GTM.
  double measured_eps_b() const;
  /// Spare-column cells across all arrays (0 without GTM).
  index_t total_gtm_cells() const { return gtm_cells_total_; }
  /// Per-array GTM estimates in row-major tile order (empty without GTM).
  const std::vector<double>& gtm_estimates() const { return gtm_est_; }

 private:
  TilePlan plan_;
  CrossbarConfig cfg_;    // periphery/conductance description (chip copy)
  double w_unit_ = 1.0;   // layer-level conductance mapping, shared by tiles
  std::vector<CrossbarArray> arrays_;  // row-major [i * col_tiles + j]
  std::vector<double> gtm_est_;        // per-array GTM eps_B estimates
  double gtm_weighted_sum_ = 0.0;      // sum(estimate * cells) over arrays
  index_t gtm_cells_total_ = 0;        // sum of spare-column cells
  // Workspace slot ids: 0 = DAC-quantized input, 1+j = column slice j,
  // 1 + col_tiles + i = row-tile i partial sums.
  Workspace local_ws_;
  Workspace* ws_ = &local_ws_;
  // Per-column-tile input views for the current MVM; member so its
  // capacity persists (zero-alloc steady state).
  std::vector<const Tensor*> slice_ptrs_;
  // Per-row-tile partial-sum targets, acquired serially before the
  // parallel row-tile sweep (Workspace::acquire is single-driver-thread);
  // member for the same zero-alloc reason.
  std::vector<Tensor*> part_ptrs_;
};

}  // namespace qavat
