#include "pim/tiling.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "tensor/parallel_for.h"

namespace qavat {

index_t tile_size_from_env() {
  static const index_t tile = [] {
    const char* v = std::getenv("QAVAT_TILE_SIZE");
    if (v != nullptr && v[0] != '\0') {
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      // Full-string parse only: a partial parse ("5.12", "4O0") would
      // silently run a wildly different array geometry than intended.
      if (end != v && *end == '\0' && n > 0) return static_cast<index_t>(n);
      std::fprintf(stderr,
                   "qavat: unrecognized QAVAT_TILE_SIZE=\"%s\" "
                   "(expected a positive integer); using 512\n",
                   v);
    }
    return index_t{512};
  }();
  return tile;
}

TilePlan TilePlan::make(index_t out, index_t in, index_t tile) {
  if (out <= 0 || in <= 0) {
    throw std::invalid_argument("TilePlan: matrix dims must be positive, got {" +
                                std::to_string(out) + "," + std::to_string(in) +
                                "}");
  }
  TilePlan p;
  p.out = out;
  p.in = in;
  p.tile = tile > 0 ? tile : tile_size_from_env();
  return p;
}

TilePlan::Extent TilePlan::tile_at(index_t i, index_t j) const {
  Extent e;
  e.r0 = i * tile;
  e.rows = std::min(tile, out - e.r0);
  e.c0 = j * tile;
  e.cols = std::min(tile, in - e.c0);
  return e;
}

TiledCrossbarLayer::TiledCrossbarLayer(PimChip& chip, const Tensor& w,
                                       const TilePlan& plan, bool with_gtm,
                                       Workspace* ws)
    : plan_(plan), cfg_(chip.config()), ws_(ws != nullptr ? ws : &local_ws_) {
  // Validate the plan itself too: TilePlan is an aggregate, so a
  // hand-built one can bypass TilePlan::make and carry tile == 0, which
  // would otherwise reach row_tiles()'s division.
  if (plan.tile <= 0 || plan.out <= 0 || plan.in <= 0) {
    throw std::invalid_argument(
        "TiledCrossbarLayer: invalid plan (use TilePlan::make)");
  }
  if (w.ndim() != 2 || w.dim(0) != plan.out || w.dim(1) != plan.in) {
    throw std::invalid_argument(
        "TiledCrossbarLayer: weight shape does not match the plan");
  }
  // Layer-level conductance mapping: every tile is programmed against the
  // whole layer's max |w|, exactly as a single unbounded array would be —
  // the tiled conductances are then the same floats, which is what makes
  // the noise-free tiled readout bit-identical to an untiled one.
  w_unit_ = w_unit_from_max(w.abs_max());

  const index_t rt = plan_.row_tiles(), ct = plan_.col_tiles();
  arrays_.reserve(static_cast<std::size_t>(rt * ct));
  if (with_gtm) gtm_est_.reserve(static_cast<std::size_t>(rt * ct));
  Tensor sub;
  for (index_t i = 0; i < rt; ++i) {
    for (index_t j = 0; j < ct; ++j) {
      const TilePlan::Extent e = plan_.tile_at(i, j);
      sub.resize_for_overwrite({e.rows, e.cols});
      for (index_t r = 0; r < e.rows; ++r) {
        std::memcpy(sub.data() + r * e.cols,
                    w.data() + (e.r0 + r) * plan_.in + e.c0,
                    static_cast<std::size_t>(e.cols) * sizeof(float));
      }
      // The per-tile ideal-weight copy is dropped: the circuit-eval hot
      // path programs every layer once per Monte-Carlo chip and never
      // reads it (use an untiled array for ideal_mvm references).
      arrays_.push_back(chip.program_array(sub, w_unit_, /*keep_ideal=*/false));
      if (with_gtm) {
        // One spare column per array: as many cells as the array has rows.
        GtmColumn gtm = chip.program_gtm(e.rows, 1.0);
        const double est = chip.measure_eps_b(gtm);
        gtm_est_.push_back(est);
        gtm_weighted_sum_ += est * static_cast<double>(e.rows);
        gtm_cells_total_ += e.rows;
      }
    }
  }
}

TiledCrossbarLayer::~TiledCrossbarLayer() { ws_->release(this); }

const CrossbarArray& TiledCrossbarLayer::array(index_t i, index_t j) const {
  return arrays_[static_cast<std::size_t>(i * plan_.col_tiles() + j)];
}

double TiledCrossbarLayer::measured_eps_b() const {
  if (gtm_cells_total_ <= 0) return 0.0;
  // Cell-count weighting = pooling all spare-column cells into one
  // estimator, so ragged tiles' noisier columns do not dominate.
  return gtm_weighted_sum_ / static_cast<double>(gtm_cells_total_);
}

void TiledCrossbarLayer::mvm_into(const Tensor& x2d, Tensor& y) {
  if (x2d.ndim() != 2 || x2d.dim(1) != plan_.in) {
    throw std::invalid_argument(
        "TiledCrossbarLayer::mvm_into: input must be {n, " +
        std::to_string(plan_.in) + "}");
  }
  const index_t n = x2d.dim(0);
  const index_t rt = plan_.row_tiles(), ct = plan_.col_tiles();
  y.resize_for_overwrite({n, plan_.out});

  // Wordline DACs: one quantization per input row over its full-row
  // dynamic range (the row of tiles shares its wordline drivers), THEN
  // sliced per column tile — so the driven voltages, and hence the tiled
  // result, do not depend on the tile grid.
  const Tensor* xr = &x2d;
  if (cfg_.dac_bits > 0) {
    Tensor& xq = ws_->acquire(this, 0, x2d.shape());
    std::memcpy(xq.data(), x2d.data(),
                static_cast<std::size_t>(x2d.size()) * sizeof(float));
    quantize_rows(xq, cfg_.dac_bits);
    xr = &xq;
  }

  // Stage the column slices once (they are shared by every row tile).
  // With a single column tile the full input feeds the arrays directly.
  // slice_ptrs_ is a member so its capacity survives across calls — the
  // zero-alloc steady state covers it.
  slice_ptrs_.assign(static_cast<std::size_t>(ct), xr);
  if (ct > 1) {
    const float* px = xr->data();
    for (index_t j = 0; j < ct; ++j) {
      const TilePlan::Extent e = plan_.tile_at(0, j);
      Tensor& slice = ws_->acquire(this, static_cast<int>(1 + j), {n, e.cols});
      for (index_t r = 0; r < n; ++r) {
        std::memcpy(slice.data() + r * e.cols, px + r * plan_.in + e.c0,
                    static_cast<std::size_t>(e.cols) * sizeof(float));
      }
      slice_ptrs_[static_cast<std::size_t>(j)] = &slice;
    }
  }

  // Row tile i writes output columns [er.r0, er.r0 + er.rows) — disjoint
  // blocks — so row tiles run in parallel once their scratch partials
  // are staged. Workspace::acquire is single-driver-thread, so with
  // multiple row tiles every partial is acquired HERE, serially, before
  // the parallel region; part_ptrs_ is a member so its capacity survives
  // across calls (zero-alloc steady state).
  part_ptrs_.assign(static_cast<std::size_t>(rt), &y);
  if (rt > 1) {
    for (index_t i = 0; i < rt; ++i) {
      const TilePlan::Extent er = plan_.tile_at(i, 0);
      part_ptrs_[static_cast<std::size_t>(i)] =
          &ws_->acquire(this, static_cast<int>(1 + ct + i), {n, er.rows});
    }
  }
  auto run_row_tile = [&](index_t i) {
    const TilePlan::Extent er = plan_.tile_at(i, 0);
    // With one row tile the partial is all of y; otherwise partials
    // stage in scratch and scatter into y's column block afterwards.
    Tensor* part = part_ptrs_[static_cast<std::size_t>(i)];
    // Partial-sum determinism contract: ascending column-tile order, each
    // array CONTINUING the per-element accumulation chain — bit-identical
    // to one full-width readout (see matmul_nt_acc_into). The column loop
    // must therefore stay serial within a row tile; the GEMM inside each
    // array threads on its own (a nested job of the row-tile dispatch).
    for (index_t j = 0; j < ct; ++j) {
      array(i, j).accumulate_currents(*slice_ptrs_[static_cast<std::size_t>(j)],
                                      *part, /*accumulate=*/j > 0);
    }
    // Same epilogue as CrossbarArray::mvm_into: conductance units back to
    // weight units under the shared layer mapping.
    scale(*part, static_cast<float>(w_unit_ / cfg_.g_max));
    if (rt > 1) {
      float* py = y.data();
      const float* pp = part->data();
      for (index_t r = 0; r < n; ++r) {
        std::memcpy(py + r * plan_.out + er.r0, pp + r * er.rows,
                    static_cast<std::size_t>(er.rows) * sizeof(float));
      }
    }
  };
  if (rt > 1) {
    parallel_for(index_t{0}, rt, index_t{1}, [&](index_t i0, index_t i1) {
      for (index_t i = i0; i < i1; ++i) run_row_tile(i);
    });
  } else {
    run_row_tile(0);
  }

  // Bitline ADCs on the assembled output rows: partial sums combine
  // before quantization (modeled as digital accumulation feeding one
  // converter range per row), keeping periphery error tile-invariant.
  quantize_rows(y, cfg_.adc_bits);
}

}  // namespace qavat
