// Circuit-level crossbar simulator — the faithful counterpart of the
// weight-domain abstraction the training/eval pipeline uses. A weight
// maps onto a differential conductance pair (G+, G-); programming
// variability perturbs each synaptic pair per the configured variance
// model (within-chip iid + the chip's correlated eps_B); the MVM applies
// DAC-quantized wordline voltages and ADC-quantized bitline currents.
// bench_pim_equivalence validates statistical equivalence with the
// weight-domain injection.
#pragma once

#include <vector>

#include "core/variability/variability.h"
#include "tensor/ops.h"

namespace qavat {

struct CrossbarConfig {
  VariabilityConfig variability;  // programming-noise model
  index_t dac_bits = 0;           // wordline DAC resolution (0 = ideal)
  index_t adc_bits = 0;           // bitline ADC resolution (0 = ideal)
  double g_max = 1.0;             // max device conductance (arbitrary units)
};

/// One programmed crossbar array holding a {rows=fan_out, cols=fan_in}
/// weight matrix as differential conductance pairs.
class CrossbarArray {
 public:
  /// Program `w` {out, in} with the given correlated deviation eps_b and
  /// per-pair programming noise drawn from `rng`.
  CrossbarArray(const CrossbarConfig& cfg, const Tensor& w, double eps_b,
                Rng& rng);

  /// Analog MVM: DAC(x) -> bitline current difference -> ADC. Returns one
  /// value per output row.
  std::vector<double> mvm(const std::vector<float>& x) const;
  /// Noise-free, infinite-precision reference on the ideal weights.
  std::vector<double> ideal_mvm(const std::vector<float>& x) const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

 private:
  CrossbarConfig cfg_;
  index_t rows_, cols_;
  Tensor w_ideal_;   // the weights as requested
  Tensor g_pos_, g_neg_;  // programmed (noisy) conductance planes
  double w_unit_;    // weight represented by g_max conductance
};

/// A spare column of `cells` devices all programmed to `cell_weight`,
/// used to estimate the chip's eps_B by reading them back.
struct GtmColumn {
  std::vector<float> cells;
  double cell_weight = 1.0;
};

/// A simulated chip: owns the per-chip correlated deviation eps_B and the
/// programming-noise stream used for every array programmed onto it.
class PimChip {
 public:
  PimChip(const CrossbarConfig& cfg, std::uint64_t seed, index_t chip_idx);

  CrossbarArray program_array(const Tensor& w);
  GtmColumn program_gtm(index_t cells, double cell_weight);

  /// Ground-truth correlated deviation of this chip.
  double eps_b() const { return eps_b_; }
  /// Estimate eps_B from a GTM readout (mean cell deviation).
  double measure_eps_b(const GtmColumn& gtm) const;

 private:
  CrossbarConfig cfg_;
  Rng rng_;
  double eps_b_ = 0.0;
};

}  // namespace qavat
