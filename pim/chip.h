// Circuit-level crossbar simulator — the faithful counterpart of the
// weight-domain abstraction the training/eval pipeline uses. A weight
// maps onto a differential conductance pair (G+, G-); programming
// variability perturbs each synaptic pair per the configured variance
// model (within-chip iid + the chip's correlated eps_B); the MVM applies
// DAC-quantized wordline voltages and ADC-quantized bitline currents.
// Large layers tile across multiple arrays via pim/tiling.h;
// bench_pim_equivalence validates statistical equivalence with the
// weight-domain injection.
//
// Thread-safety: programming (PimChip, the CrossbarArray constructor)
// consumes the chip's RNG stream and must run from one thread. All
// readout entry points (mvm / mvm_into / ideal_mvm / accumulate_currents)
// are const, internally threaded through the tensor/ GEMM kernels, and
// bit-identical for any QAVAT_THREADS.
#pragma once

#include <vector>

#include "core/variability/variability.h"
#include "tensor/ops.h"

namespace qavat {

/// Physical description of one crossbar array and its periphery. Units:
/// conductances are in arbitrary units with `g_max` the full-scale device
/// conductance; weights map linearly onto [-g_max, g_max] of differential
/// conductance via the array's `w_unit` (max |w| it was programmed for).
struct CrossbarConfig {
  VariabilityConfig variability;  ///< programming-noise model (sigma_w/sigma_b)
  index_t dac_bits = 0;           ///< wordline DAC resolution in bits (0 = ideal)
  index_t adc_bits = 0;           ///< bitline ADC resolution in bits (0 = ideal)
  double g_max = 1.0;             ///< max device conductance (arbitrary units)
};

/// One programmed crossbar array holding a {rows = fan_out, cols = fan_in}
/// weight matrix as differential conductance pairs. The pair is stored as
/// its signed difference G+ - G- (one plane): programming noise acts on
/// the synaptic pair as a whole and the readout is differential, so the
/// split into (G+, G-) carries no extra information — by construction one
/// of the two is always zero.
class CrossbarArray {
 public:
  /// Program `w` {out, in} with the chip-level correlated deviation
  /// `eps_b` and per-pair programming noise drawn from `rng`. `w_unit`
  /// is the weight represented by full-scale conductance; pass 0 to
  /// derive it from `w` (max |w|, the single-array default). Tiled
  /// layers pass the whole layer's max |w| so every tile shares one
  /// conductance mapping (pim/tiling.h). `keep_ideal` false drops the
  /// ideal-weight copy (halving programming memory/traffic on the
  /// circuit-eval hot path); ideal_mvm then throws.
  CrossbarArray(const CrossbarConfig& cfg, const Tensor& w, double eps_b,
                Rng& rng, double w_unit = 0.0, bool keep_ideal = true);

  /// Batched analog MVM over a whole activation matrix: `x` {n, cols()}
  /// -> `y` {n, rows()} (resized without zero-fill). Wordline DACs
  /// quantize each input row over its own dynamic full scale (into the
  /// caller-provided `dac_scratch`, untouched when dac_bits == 0), the
  /// differential readout runs through the shared NT GEMM kernel, and
  /// bitline ADCs quantize each output row. Allocation-free at steady
  /// shape when `y`/`dac_scratch` are workspace buffers.
  void mvm_into(const Tensor& x, Tensor& y, Tensor& dac_scratch) const;

  /// Span form of the analog MVM for one input vector: reads cols()
  /// floats from `x`, writes rows() doubles to `y`. Reference readout in
  /// double precision (a single ascending-column accumulation chain per
  /// output); allocation-free at steady state (thread_local DAC scratch).
  void mvm_into(const float* x, double* y) const;

  /// Analog MVM of one input vector: DAC(x) -> bitline current
  /// difference -> ADC. Returns one value per output row. Thin wrapper
  /// over the span-form mvm_into (allocates the result vector).
  std::vector<double> mvm(const std::vector<float>& x) const;

  /// Noise-free, infinite-precision reference on the ideal weights:
  /// reads cols() floats from `x`, writes rows() doubles to `y`. Throws
  /// std::logic_error if the array was programmed without keep_ideal.
  void ideal_mvm_into(const float* x, double* y) const;

  /// Thin wrapper over ideal_mvm_into (allocates the result vector).
  std::vector<double> ideal_mvm(const std::vector<float>& x) const;

  /// Accumulate the raw differential bitline currents of `xq` {n, cols()}
  /// into `y` {n, rows()}, in conductance units (no w_unit scaling, no
  /// periphery). With `accumulate` the per-element chain CONTINUES from
  /// y's current values (matmul_nt_acc_into), so summing column-tile
  /// partials in ascending tile order is bit-identical to one full-width
  /// readout — the tiling determinism contract (DESIGN.md §10). With
  /// `accumulate` false, `y` is resized and overwritten.
  void accumulate_currents(const Tensor& xq, Tensor& y, bool accumulate) const;

  index_t rows() const { return rows_; }  ///< fan_out (bitlines)
  index_t cols() const { return cols_; }  ///< fan_in (wordlines)
  /// Weight represented by full-scale conductance (the conductance
  /// mapping this array was programmed with).
  double w_unit() const { return w_unit_; }

 private:
  CrossbarConfig cfg_;
  index_t rows_, cols_;
  Tensor w_ideal_;   // the weights as requested (empty if !keep_ideal)
  Tensor g_;         // programmed (noisy) signed conductance plane G+ - G-
  double w_unit_;    // weight represented by g_max conductance
};

/// Converter model shared by the single-array and tiled readout paths:
/// symmetric mid-tread quantization of each row of `t` {n, w} over that
/// row's own dynamic full scale (max |x| of the row). `bits` <= 0 is the
/// ideal periphery (no-op). Deterministic and serial per row.
void quantize_rows(Tensor& t, index_t bits);

/// A spare column of `cells` devices all programmed to `cell_weight`,
/// used to estimate the chip's eps_B by reading them back. Tiled layers
/// program one per array (cells = the array's row count).
struct GtmColumn {
  std::vector<float> cells;   ///< read-back device values (weight units)
  double cell_weight = 1.0;   ///< the value every cell was programmed to
};

/// A simulated chip: owns the per-chip correlated deviation eps_B and the
/// programming-noise stream used for every array programmed onto it.
/// Programming order is part of the realization (each program_* call
/// advances the RNG stream); keep it fixed for reproducibility.
class PimChip {
 public:
  /// Chip `chip_idx` of a Monte-Carlo population: eps_B and all
  /// programming noise derive from Rng(seed, chip_idx), so chip identity
  /// is explicit in the index (the evaluator's determinism contract).
  PimChip(const CrossbarConfig& cfg, std::uint64_t seed, index_t chip_idx);

  /// Program one array from `w` {out, in}; `w_unit` / `keep_ideal` as in
  /// the CrossbarArray constructor.
  CrossbarArray program_array(const Tensor& w, double w_unit = 0.0,
                              bool keep_ideal = true);
  /// Program a GTM spare column of `cells` devices at `cell_weight`.
  GtmColumn program_gtm(index_t cells, double cell_weight);

  /// Ground-truth correlated deviation of this chip.
  double eps_b() const { return eps_b_; }
  /// Estimate eps_B from a GTM readout (mean relative cell deviation);
  /// error ~ sigma_W / sqrt(cells).
  double measure_eps_b(const GtmColumn& gtm) const;

  /// The periphery/variability description every array is programmed with.
  const CrossbarConfig& config() const { return cfg_; }

 private:
  CrossbarConfig cfg_;
  Rng rng_;
  double eps_b_ = 0.0;
};

}  // namespace qavat
