// Quickstart: train a small quantized model with QAVAT and evaluate it
// under within-chip variability.
//
//   $ ./quickstart
//
// Walks the whole pipeline on the smallest workload (LeNet-5-style model,
// synthetic digits): build an A2W2 model, train it with variability
// injection, then Monte-Carlo-evaluate the deployed accuracy across
// simulated chips and compare against the clean accuracy.
#include <cstdio>

#include "core/models/models.h"
#include "core/train/trainer.h"
#include "data/synth.h"
#include "eval/evaluator.h"

int main() {
  using namespace qavat;

  // 1. Synthetic MNIST stand-in (see DESIGN.md for the substitution note).
  SynthDigitsConfig dcfg;
  dcfg.n_train = 3000;
  dcfg.n_test = 500;
  SplitDataset data = make_synth_digits(dcfg);
  std::printf("dataset: %lld train / %lld test, %lld classes\n",
              static_cast<long long>(data.train.size()),
              static_cast<long long>(data.test.size()),
              static_cast<long long>(data.train.num_classes));

  // 2. A4W2 LeNet-5-style model (4-bit activations, ternary weights).
  ModelConfig mcfg;
  mcfg.a_bits = 4;
  mcfg.w_bits = 2;
  mcfg.in_channels = 1;
  mcfg.image_size = 12;
  mcfg.num_classes = 10;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  std::printf("model: lenet5s A4W2, %lld parameters\n",
              static_cast<long long>(model->parameter_count()));

  // 3. Train with the recommended two-phase recipe: quantization-aware
  //    pretraining, then QAVAT fine-tuning that injects within-chip
  //    variability (sigma_W = 0.3, weight-proportional) into every forward
  //    pass. (Noisy-forward training converges much faster from a trained
  //    starting point; eval/experiment.h automates this with caching.)
  TrainConfig pre;
  pre.epochs = 4;
  pre.verbose = true;
  train(*model, data.train, TrainAlgo::kQAT, pre);

  TrainConfig tcfg;
  tcfg.epochs = 3;
  tcfg.lr = 1.5e-3;
  tcfg.train_noise =
      VariabilityConfig::within_only(VarianceModel::kWeightProportional, 0.3);
  tcfg.verbose = true;
  TrainResult log = train(*model, data.train, TrainAlgo::kQAVAT, tcfg);
  std::printf("final train acc (under injected noise): %.3f\n",
              log.epoch_train_acc.back());

  // 4. Deployment: clean accuracy vs mean accuracy across simulated chips.
  const double clean = evaluate_clean(*model, data.test);
  EvalConfig ecfg;
  ecfg.n_chips = 50;
  EvalStats stats = evaluate_under_variability(
      *model, data.test,
      VariabilityConfig::within_only(VarianceModel::kWeightProportional, 0.3), ecfg);
  std::printf("clean accuracy:          %.3f\n", clean);
  std::printf("mean accuracy (50 chips): %.3f  (std %.3f, min %.3f)\n",
              stats.accuracy.mean, stats.accuracy.stddev, stats.accuracy.min);
  return 0;
}
