// Declarative scenario API + artifact store walkthrough.
//
//   $ ./scenario_store          # cold: trains, evaluates, persists
//   $ ./scenario_store          # warm: everything loads from the store
//
// Declares one experiment point as a ScenarioSpec (model, bits,
// algorithm, training recipe, deployment variability, Monte-Carlo
// protocol), runs it through a Session, and shows the provenance: the
// first run trains and persists the model and per-chip results under
// QAVAT_STORE_DIR (default artifacts/store/); a second run — even in a
// new process — loads both and reproduces the same numbers
// bit-identically. QAVAT_STORE=0 disables persistence.
#include <cstdio>

#include "eval/runner.h"
#include "eval/store.h"

int main() {
  using namespace qavat;

  // One experiment point: LeNet-5s A4W2, QAVAT-trained for a within-chip
  // weight-proportional deployment at sigma_W = 0.3.
  ScenarioSpec spec =
      ScenarioSpec::within(ModelKind::kLeNet5s, 4, 2, ScenarioAlgo::kQAVAT,
                           VarianceModel::kWeightProportional, 0.3);

  std::printf("scenario key:\n  %s\n\n", spec.key().c_str());
  std::printf("scenario JSON:\n  %s\n\n", spec.to_json().c_str());

  // The JSON round-trips losslessly — specs can be stored, diffed and
  // replayed.
  ScenarioSpec replayed;
  if (!ScenarioSpec::from_json(spec.to_json(), &replayed) ||
      replayed.key() != spec.key()) {
    std::printf("JSON round-trip FAILED\n");
    return 1;
  }

  Session session;
  const ScenarioResult r = session.run(spec);
  std::printf("clean accuracy:           %.3f\n", r.clean_acc);
  std::printf("mean accuracy (%lld chips): %.3f  (std %.3f, min %.3f)\n",
              static_cast<long long>(r.mc.n_chips), r.mc.accuracy.mean,
              r.mc.accuracy.stddev, r.mc.accuracy.min);
  std::printf("provenance: model %s, Monte-Carlo %s\n",
              r.trained ? "trained this run"
                        : (r.model_from_store ? "loaded from store"
                                              : "from memory cache"),
              r.eval_computed ? "computed this run" : "loaded from cache/store");

  // Second run in the same process: pure memory-cache hits.
  const ScenarioResult again = session.run(spec);
  std::printf("re-run: mean accuracy %.3f (%s)\n", again.mean_acc,
              again.eval_computed ? "recomputed - unexpected!" : "cached");
  if (store_enabled()) {
    std::printf("\nartifacts persisted under %s — run this binary again to\n"
                "see the warm path (no training, identical numbers).\n",
                store_root().c_str());
  } else {
    std::printf("\nQAVAT_STORE=0: persistence disabled for this run.\n");
  }
  return again.mean_acc == r.mean_acc ? 0 : 1;
}
