// Circuit-level deployment walk-through: program one quantized layer of a
// trained model onto simulated crossbar chips, run the analog MVM with
// DAC/ADC periphery, and compare against the weight-domain abstraction the
// training pipeline uses.
//
//   $ ./pim_deployment
//
// This is the bridge between the two views of the system: the evaluation
// harness injects variability directly on weights (fast), while the pim/
// library simulates conductance pairs, wordline voltages and bitline
// currents (faithful). The demo shows they agree, and how much the DAC/ADC
// resolution costs.
#include <cmath>
#include <cstdio>

#include "core/models/models.h"
#include "core/quant/qlayers.h"
#include "core/quant/quantizer.h"
#include "core/train/trainer.h"
#include "data/synth.h"
#include "pim/chip.h"

int main() {
  using namespace qavat;

  // Train a small A4W2 model so the deployed weights are realistic.
  SynthDigitsConfig dcfg;
  dcfg.n_train = 2000;
  dcfg.n_test = 400;
  SplitDataset data = make_synth_digits(dcfg);
  ModelConfig mcfg;
  mcfg.a_bits = 4;
  mcfg.w_bits = 2;
  mcfg.in_channels = 1;
  mcfg.image_size = 12;
  mcfg.num_classes = 10;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  TrainConfig tcfg;
  tcfg.epochs = 3;
  train(*model, data.train, TrainAlgo::kQAT, tcfg);
  std::printf("trained model, clean accuracy %.3f\n\n", evaluate_clean(*model, data.test));

  // Take the final classifier layer (84 -> 10) and program it on chips.
  auto layers = quant_layers(*model);
  auto* fc = dynamic_cast<QuantLinear*>(layers.back());
  if (!fc) {
    std::fprintf(stderr, "unexpected model layout\n");
    return 1;
  }
  // Dequantized weights as they would be programmed (ternary grid).
  Tensor wd(fc->weight().value.shape());
  quantize_dequantize(fc->weight().value, fc->weight_scale(), fc->weight_bits(), wd);

  CrossbarConfig ccfg;
  ccfg.variability =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.3);
  ccfg.dac_bits = 4;  // matches the A4 activation precision
  ccfg.adc_bits = 8;

  Rng rng(5);
  std::vector<float> x(static_cast<std::size_t>(fc->fan_in()));
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 1.0));  // post-ReLU-ish

  std::printf("programming fc layer (%lld x %lld) on 5 chips:\n",
              static_cast<long long>(fc->fan_out()),
              static_cast<long long>(fc->fan_in()));
  std::printf("%-6s %-10s %-14s %-14s\n", "chip", "eps_B", "rms dev (out)",
              "GTM estimate");
  for (index_t chip_idx = 0; chip_idx < 5; ++chip_idx) {
    PimChip chip(ccfg, /*seed=*/42, chip_idx);
    auto array = chip.program_array(wd);
    auto gtm = chip.program_gtm(/*cells=*/1000, /*cell_weight=*/1.0);

    auto noisy = array.mvm(x);
    auto ideal = array.ideal_mvm(x);
    double dev2 = 0.0;
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      dev2 += std::pow(noisy[i] - ideal[i], 2);
    }
    std::printf("%-6lld %+.4f    %.4f         %+.4f\n",
                static_cast<long long>(chip_idx), chip.eps_b(),
                std::sqrt(dev2 / static_cast<double>(noisy.size())),
                chip.measure_eps_b(gtm));
  }

  std::printf(
      "\nEach chip's GTM estimate tracks its true eps_B (error ~ "
      "sigma_W/sqrt(1000)),\nwhich is what makes inference-time self-tuning "
      "possible.\n");
  return 0;
}
