// Design-space exploration: how big do the tuning modules need to be?
//
//   $ ./design_space
//
// Sweeps the GTM cell count and LTM column count for a model deployed
// under mixed-type layer-fixed variation (the configuration that needs
// both modules) and prints the accuracy/area trade-off — a miniature of
// the paper's Fig. 7b plus the §III.B overhead accounting.
#include <cstdio>

#include "core/models/models.h"
#include "core/selftune/overhead.h"
#include "core/selftune/selftune.h"
#include "core/train/trainer.h"
#include "data/synth.h"
#include "eval/evaluator.h"

int main() {
  using namespace qavat;

  SynthDigitsConfig dcfg;
  dcfg.n_train = 3000;
  dcfg.n_test = 500;
  SplitDataset data = make_synth_digits(dcfg);
  ModelConfig mcfg;
  mcfg.a_bits = 4;
  mcfg.w_bits = 2;
  mcfg.in_channels = 1;
  mcfg.image_size = 12;
  mcfg.num_classes = 10;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);

  const VarianceModel vm = VarianceModel::kLayerFixed;
  const VariabilityConfig deploy = VariabilityConfig::mixed(vm, 0.4);
  TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.train_noise = VariabilityConfig::within_only(vm, deploy.sigma_w);
  std::printf("training QAVAT for layer-fixed deployment...\n");
  train(*model, data.train, TrainAlgo::kQAVAT, tcfg);
  std::printf("clean accuracy %.3f\n\n", evaluate_clean(*model, data.test));

  EvalConfig ecfg;
  ecfg.n_chips = 30;

  EvalStats none = evaluate_under_variability(*model, data.test, deploy, ecfg);
  std::printf("no self-tuning: %.3f\n\n", none.accuracy.mean);

  std::printf("%-10s %-6s %-10s %-16s %-12s\n", "GTM cells", "LTM", "accuracy",
              "area overhead %", "FLOPs %");
  Tensor sample = data.test.gather_images({0});
  for (index_t gtm : {index_t{10}, index_t{100}, index_t{1000}, index_t{10000}}) {
    for (index_t ltm : {index_t{1}, index_t{16}}) {
      SelfTuneConfig st;
      st.mode = proper_mode(vm);  // GTM + LTM for layer-fixed
      st.gtm_cells = gtm;
      st.ltm_columns = ltm;
      EvalStats s = evaluate_under_variability(*model, data.test, deploy, ecfg, &st);
      auto overhead = selftune_overhead(*model, sample, gtm, ltm);
      std::printf("%-10lld %-6lld %-10.3f %-16.2f %-12.2f\n",
                  static_cast<long long>(gtm), static_cast<long long>(ltm),
                  s.accuracy.mean, 100.0 * overhead.area_ltm_fraction,
                  100.0 * overhead.tuning_flops_ratio());
    }
  }
  std::printf(
      "\nDiminishing returns in GTM size; LTM columns matter at high\n"
      "variance — pick the smallest configuration on the plateau.\n");
  return 0;
}
