// Self-tuning demo: mixed-type (within + between chip) variation defeats
// variability-aware training, and the self-tuning modules recover the
// loss at inference time.
//
//   $ ./self_tuning_demo
//
// Trains a small quantized model with QAVAT (within-chip sampling, per the
// paper's deployment recipe), then evaluates three deployments under
// mixed-type variation: plain, with the proper self-tuning correction, and
// with the deliberately mismatched ("wrong") correction.
#include <cstdio>

#include "core/models/models.h"
#include "core/selftune/selftune.h"
#include "core/train/trainer.h"
#include "data/synth.h"
#include "eval/evaluator.h"

int main() {
  using namespace qavat;

  SynthDigitsConfig dcfg;
  dcfg.n_train = 3000;
  dcfg.n_test = 600;
  SplitDataset data = make_synth_digits(dcfg);

  ModelConfig mcfg;
  mcfg.a_bits = 4;
  mcfg.w_bits = 2;
  mcfg.in_channels = 1;
  mcfg.image_size = 12;
  mcfg.num_classes = 10;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);

  // The deployment environment: equal within- and between-chip components
  // (sigma_tot = 0.5), layer-fixed variance — the configuration where the
  // correlated component is most destructive and the full GTM+LTM
  // correction is required.
  const VarianceModel vm = VarianceModel::kLayerFixed;
  const VariabilityConfig deploy = VariabilityConfig::mixed(vm, 0.5);

  // Paper recipe: train QAVAT with within-chip sampling only; the tuning
  // modules are appended afterwards.
  TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.train_noise = VariabilityConfig::within_only(vm, deploy.sigma_w);
  std::printf("training QAVAT (within-chip sigma_W = %.3f)...\n", deploy.sigma_w);
  train(*model, data.train, TrainAlgo::kQAVAT, tcfg);
  std::printf("clean test accuracy: %.3f\n\n", evaluate_clean(*model, data.test));

  EvalConfig ecfg;
  ecfg.n_chips = 40;

  EvalStats plain = evaluate_under_variability(*model, data.test, deploy, ecfg);
  std::printf("mixed-type deployment, no self-tuning:   %.3f (min chip %.3f)\n",
              plain.accuracy.mean, plain.accuracy.min);

  SelfTuneConfig st;
  st.mode = proper_mode(vm);  // GTM + LTM for layer-fixed variance
  st.gtm_cells = 10000;
  st.ltm_columns = 4;
  EvalStats tuned = evaluate_under_variability(*model, data.test, deploy, ecfg, &st);
  std::printf("with proper self-tuning (GTM+LTM):       %.3f (min chip %.3f)\n",
              tuned.accuracy.mean, tuned.accuracy.min);

  SelfTuneConfig wrong = st;
  wrong.mode = wrong_mode(vm);
  wrong.ltm_columns = 1;
  EvalStats mistuned =
      evaluate_under_variability(*model, data.test, deploy, ecfg, &wrong);
  std::printf("with the WRONG self-tuning:              %.3f (min chip %.3f)\n",
              mistuned.accuracy.mean, mistuned.accuracy.min);

  std::printf(
      "\nExpected ordering (paper Fig. 6): proper ST > no ST > wrong ST.\n");
  return 0;
}
