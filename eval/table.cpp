#include "eval/table.h"

#include <cstdio>

namespace qavat {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 < row.size() ? "  " : "\n");
    }
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string TextTable::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace qavat
