#include "eval/scenario.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>

#include "eval/experiment.h"
#include "pim/tiling.h"

namespace qavat {

const char* to_string(ScenarioAlgo a) {
  switch (a) {
    case ScenarioAlgo::kPTQVAT: return "PTQVAT";
    case ScenarioAlgo::kQAT: return "QAT";
    case ScenarioAlgo::kQAVAT: return "QAVAT";
  }
  return "?";
}

namespace {

// Canonical double formatting for keys: stable, short, no locale.
std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Round-trip-exact double formatting for JSON.
std::string fmt_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string noise_token(const VariabilityConfig& v) {
  if (!v.enabled()) return "off";
  std::string s = v.model == VarianceModel::kWeightProportional ? "wp" : "lf";
  s += "w" + fmt_g(v.sigma_w) + "b" + fmt_g(v.sigma_b);
  return s;
}

const char* selftune_token(SelfTuneMode m) {
  switch (m) {
    case SelfTuneMode::kNone: return "none";
    case SelfTuneMode::kGtm: return "gtm";
    case SelfTuneMode::kGtmLtm: return "gtmltm";
  }
  return "?";
}

const char* variance_token(VarianceModel m) {
  return m == VarianceModel::kWeightProportional ? "wp" : "lf";
}

std::string lld(index_t v) { return std::to_string(static_cast<long long>(v)); }

// ---------------------------------------------------------------- JSON

void json_kv(std::string& out, const char* k, const std::string& v,
             bool quote, bool last = false) {
  out += '"';
  out += k;
  out += "\":";
  if (quote) out += '"';
  out += v;
  if (quote) out += '"';
  if (!last) out += ',';
}

std::string noise_json(const VariabilityConfig& v) {
  std::string o = "{";
  json_kv(o, "model", variance_token(v.model), true);
  json_kv(o, "sigma_w", fmt_exact(v.sigma_w), false);
  json_kv(o, "sigma_b", fmt_exact(v.sigma_b), false, true);
  o += '}';
  return o;
}

// Minimal JSON value for the subset to_json() emits: objects, strings,
// numbers, booleans. Numbers keep their source text so 64-bit integers
// parse exactly (strtoll) instead of through a double.
struct Jv {
  enum Kind { kBool, kNum, kStr, kObj } kind = kNum;
  bool b = false;
  std::string text;  // number text or string value
  std::map<std::string, Jv> obj;

  const Jv* find(const char* name) const {
    auto it = obj.find(name);
    return it == obj.end() ? nullptr : &it->second;
  }
  double num() const { return std::strtod(text.c_str(), nullptr); }
  long long inum() const { return std::strtoll(text.c_str(), nullptr, 10); }
};

void skip_ws(const char*& p) {
  while (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r') ++p;
}

bool parse_string(const char*& p, std::string* out) {
  if (*p != '"') return false;
  ++p;
  out->clear();
  while (*p != '\0' && *p != '"') {
    if (*p == '\\') return false;  // to_json never emits escapes
    out->push_back(*p++);
  }
  if (*p != '"') return false;
  ++p;
  return true;
}

bool parse_value(const char*& p, Jv* out) {
  skip_ws(p);
  if (*p == '{') {
    ++p;
    out->kind = Jv::kObj;
    skip_ws(p);
    if (*p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws(p);
      std::string name;
      if (!parse_string(p, &name)) return false;
      skip_ws(p);
      if (*p != ':') return false;
      ++p;
      Jv child;
      if (!parse_value(p, &child)) return false;
      out->obj.emplace(std::move(name), std::move(child));
      skip_ws(p);
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }
  if (*p == '"') {
    out->kind = Jv::kStr;
    return parse_string(p, &out->text);
  }
  if (std::strncmp(p, "true", 4) == 0) {
    out->kind = Jv::kBool;
    out->b = true;
    p += 4;
    return true;
  }
  if (std::strncmp(p, "false", 5) == 0) {
    out->kind = Jv::kBool;
    out->b = false;
    p += 5;
    return true;
  }
  const char* start = p;
  while (*p == '-' || *p == '+' || *p == '.' || *p == 'e' || *p == 'E' ||
         (*p >= '0' && *p <= '9')) {
    ++p;
  }
  if (p == start) return false;
  out->kind = Jv::kNum;
  out->text.assign(start, static_cast<std::size_t>(p - start));
  return true;
}

// Error sink shared by every reader: record "<prefix><field>: <what>"
// into *err (first failure wins — the callers chain with &&) and report
// the failure.
bool fail_field(std::string* err, const char* prefix, const char* name,
                const std::string& what) {
  if (err != nullptr && err->empty()) {
    *err = std::string(prefix) + name + ": " + what;
  }
  return false;
}

// Typed field readers: each returns false on a present-but-wrong-typed
// field (naming it via *err) and leaves the destination untouched when
// the field is absent. `prefix` is the dotted path of the enclosing
// object ("train.", "eval.", ...), purely for error messages.
bool read_num(const Jv& o, const char* name, double* dst, std::string* err,
              const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kNum) {
    return fail_field(err, prefix, name, "expected a number");
  }
  *dst = v->num();
  return true;
}

bool read_index(const Jv& o, const char* name, index_t* dst, std::string* err,
                const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kNum) {
    return fail_field(err, prefix, name, "expected an integer");
  }
  *dst = static_cast<index_t>(v->inum());
  return true;
}

bool read_u64(const Jv& o, const char* name, std::uint64_t* dst,
              std::string* err, const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kNum) {
    return fail_field(err, prefix, name, "expected an integer");
  }
  *dst = static_cast<std::uint64_t>(
      std::strtoull(v->text.c_str(), nullptr, 10));
  return true;
}

bool read_bool(const Jv& o, const char* name, bool* dst, std::string* err,
               const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kBool) {
    return fail_field(err, prefix, name, "expected true or false");
  }
  *dst = v->b;
  return true;
}

bool read_noise(const Jv& o, const char* name, VariabilityConfig* dst,
                std::string* err, const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  const std::string path = std::string(prefix) + name + ".";
  if (v->kind != Jv::kObj) {
    return fail_field(err, prefix, name, "expected an object");
  }
  const Jv* m = v->find("model");
  if (m != nullptr) {
    if (m->kind != Jv::kStr) {
      return fail_field(err, path.c_str(), "model", "expected a string");
    }
    if (m->text == "wp") {
      dst->model = VarianceModel::kWeightProportional;
    } else if (m->text == "lf") {
      dst->model = VarianceModel::kLayerFixed;
    } else {
      return fail_field(err, path.c_str(), "model",
                        "unknown token '" + m->text + "'");
    }
  }
  return read_num(*v, "sigma_w", &dst->sigma_w, err, path.c_str()) &&
         read_num(*v, "sigma_b", &dst->sigma_b, err, path.c_str());
}

// Enum-token reader: `tokens`/`values` are parallel null-terminated
// lists; an absent field keeps the default, an unknown token is named
// in the error.
template <typename E>
bool read_enum(const Jv& o, const char* name,
               std::initializer_list<const char*> tokens,
               std::initializer_list<E> values, E* dst, std::string* err,
               const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kStr) {
    return fail_field(err, prefix, name, "expected a string");
  }
  auto tok = tokens.begin();
  auto val = values.begin();
  for (; tok != tokens.end(); ++tok, ++val) {
    if (v->text == *tok) {
      *dst = *val;
      return true;
    }
  }
  return fail_field(err, prefix, name, "unknown token '" + v->text + "'");
}

}  // namespace

std::string ScenarioSpec::key() const {
  std::string k = "v" + std::to_string(kScenarioSchemaVersion) + "_";
  k += to_string(model);
  k += "_A" + lld(model_cfg.a_bits) + "W" + lld(model_cfg.w_bits);
  k += "_";
  k += to_string(algo);
  k += "_m[c" + lld(model_cfg.in_channels) + "s" + lld(model_cfg.image_size) +
       "k" + lld(model_cfg.num_classes) + "i" +
       std::to_string(model_cfg.init_seed) + "]";
  k += "_tr[e" + lld(train.epochs) + "_lr" + fmt_g(train.lr) + "_bs" +
       lld(train.batch_size) + "_n" + lld(train.n_variation_samples) + "_rp" +
       (train.reparam ? "1" : "0") + "_su" +
       (train.scale_update == ScaleUpdatePolicy::kPerEpoch ? "1" : "0") +
       "_sd" + std::to_string(train.seed) + "_" + noise_token(train.train_noise) +
       "]";
  k += "_dp[" + noise_token(deploy) + "]";
  if (selftune_active()) {
    k += "_st[" + std::string(selftune_token(selftune.mode)) + "_g" +
         lld(selftune.gtm_cells) + "_l" + lld(selftune.ltm_columns) + "]";
  } else {
    k += "_st[none]";
  }
  k += "_ev[c" + lld(eval.n_chips) + "_t" + lld(eval.max_test_samples) + "_s" +
       std::to_string(eval.seed) + "_";
  if (eval.backend == EvalBackend::kCircuit) {
    // The tile grid changes which array each weight lands on and hence
    // the noise realizations: the effective tile size is part of the
    // result identity (resolved from the env default exactly like the
    // evaluator does).
    const index_t tile = eval.tile_size > 0 ? eval.tile_size
                                            : tile_size_from_env();
    k += "ckt" + lld(tile);
  } else if (eval.backend == EvalBackend::kInt8) {
    // The int8 requant grid perturbs per-chip logits relative to the
    // float weight-domain path, so its results are a distinct identity —
    // a cached weight-domain eval must never be served for an int8 run.
    k += "i8";
  } else {
    k += "wd";
  }
  k += "]";
  k += fast ? "_fast" : "_full";
  return k;
}

std::string ScenarioSpec::to_json() const {
  std::string o = "{";
  json_kv(o, "schema", std::to_string(kScenarioSchemaVersion), false);
  json_kv(o, "model", to_string(model), true);
  json_kv(o, "algo", to_string(algo), true);
  json_kv(o, "fast", fast ? "true" : "false", false);
  {
    std::string m = "{";
    json_kv(m, "a_bits", lld(model_cfg.a_bits), false);
    json_kv(m, "w_bits", lld(model_cfg.w_bits), false);
    json_kv(m, "in_channels", lld(model_cfg.in_channels), false);
    json_kv(m, "image_size", lld(model_cfg.image_size), false);
    json_kv(m, "num_classes", lld(model_cfg.num_classes), false);
    json_kv(m, "init_seed", std::to_string(model_cfg.init_seed), false, true);
    m += '}';
    json_kv(o, "model_cfg", m, false);
  }
  {
    std::string t = "{";
    json_kv(t, "epochs", lld(train.epochs), false);
    json_kv(t, "lr", fmt_exact(train.lr), false);
    json_kv(t, "batch_size", lld(train.batch_size), false);
    json_kv(t, "n_variation_samples", lld(train.n_variation_samples), false);
    json_kv(t, "reparam", train.reparam ? "true" : "false", false);
    json_kv(t, "scale_update",
            train.scale_update == ScaleUpdatePolicy::kPerEpoch ? "per_epoch"
                                                               : "init_only",
            true);
    json_kv(t, "seed", std::to_string(train.seed), false);
    json_kv(t, "noise", noise_json(train.train_noise), false, true);
    t += '}';
    json_kv(o, "train", t, false);
  }
  json_kv(o, "deploy", noise_json(deploy), false);
  {
    std::string s = "{";
    json_kv(s, "mode", selftune_token(selftune.mode), true);
    json_kv(s, "gtm_cells", lld(selftune.gtm_cells), false);
    json_kv(s, "ltm_columns", lld(selftune.ltm_columns), false, true);
    s += '}';
    json_kv(o, "selftune", s, false);
  }
  {
    std::string e = "{";
    json_kv(e, "n_chips", lld(eval.n_chips), false);
    json_kv(e, "max_test_samples", lld(eval.max_test_samples), false);
    json_kv(e, "batch_size", lld(eval.batch_size), false);
    json_kv(e, "seed", std::to_string(eval.seed), false);
    json_kv(e, "chip_batch", lld(eval.chip_batch), false);
    json_kv(e, "backend", to_string(eval.backend), true);
    json_kv(e, "tile_size", lld(eval.tile_size), false, true);
    e += '}';
    json_kv(o, "eval", e, false, true);
  }
  o += '}';
  return o;
}

bool ScenarioSpec::from_json(const std::string& text, ScenarioSpec* out,
                             std::string* error) {
  if (error != nullptr) error->clear();
  const char* p = text.c_str();
  Jv root;
  if (!parse_value(p, &root) || root.kind != Jv::kObj) {
    if (error != nullptr && error->empty()) *error = "malformed JSON";
    return false;
  }
  skip_ws(p);
  if (*p != '\0') {
    if (error != nullptr) *error = "malformed JSON (trailing characters)";
    return false;
  }
  std::string* err = error;

  ScenarioSpec s;
  const Jv* schema = root.find("schema");
  if (schema == nullptr || schema->kind != Jv::kNum) {
    return fail_field(err, "", "schema", "missing or not a number");
  }
  if (schema->inum() != kScenarioSchemaVersion) {
    return fail_field(err, "", "schema",
                      "version mismatch: expected " +
                          std::to_string(kScenarioSchemaVersion) + ", got " +
                          schema->text);
  }
  if (!read_enum(root, "model", {"lenet5s", "vgg11s", "resnet18s"},
                 {ModelKind::kLeNet5s, ModelKind::kVGG11s,
                  ModelKind::kResNet18s},
                 &s.model, err) ||
      !read_enum(root, "algo", {"PTQVAT", "QAT", "QAVAT"},
                 {ScenarioAlgo::kPTQVAT, ScenarioAlgo::kQAT,
                  ScenarioAlgo::kQAVAT},
                 &s.algo, err) ||
      !read_bool(root, "fast", &s.fast, err)) {
    return false;
  }
  if (const Jv* m = root.find("model_cfg")) {
    if (m->kind != Jv::kObj) {
      return fail_field(err, "", "model_cfg", "expected an object");
    }
    if (!read_index(*m, "a_bits", &s.model_cfg.a_bits, err, "model_cfg.") ||
        !read_index(*m, "w_bits", &s.model_cfg.w_bits, err, "model_cfg.") ||
        !read_index(*m, "in_channels", &s.model_cfg.in_channels, err,
                    "model_cfg.") ||
        !read_index(*m, "image_size", &s.model_cfg.image_size, err,
                    "model_cfg.") ||
        !read_index(*m, "num_classes", &s.model_cfg.num_classes, err,
                    "model_cfg.") ||
        !read_u64(*m, "init_seed", &s.model_cfg.init_seed, err,
                  "model_cfg.")) {
      return false;
    }
  }
  if (const Jv* t = root.find("train")) {
    if (t->kind != Jv::kObj) {
      return fail_field(err, "", "train", "expected an object");
    }
    if (!read_index(*t, "epochs", &s.train.epochs, err, "train.") ||
        !read_num(*t, "lr", &s.train.lr, err, "train.") ||
        !read_index(*t, "batch_size", &s.train.batch_size, err, "train.") ||
        !read_index(*t, "n_variation_samples", &s.train.n_variation_samples,
                    err, "train.") ||
        !read_bool(*t, "reparam", &s.train.reparam, err, "train.") ||
        !read_u64(*t, "seed", &s.train.seed, err, "train.") ||
        !read_noise(*t, "noise", &s.train.train_noise, err, "train.") ||
        !read_enum(*t, "scale_update", {"per_epoch", "init_only"},
                   {ScaleUpdatePolicy::kPerEpoch, ScaleUpdatePolicy::kInitOnly},
                   &s.train.scale_update, err, "train.")) {
      return false;
    }
  }
  if (!read_noise(root, "deploy", &s.deploy, err)) return false;
  if (const Jv* st = root.find("selftune")) {
    if (st->kind != Jv::kObj) {
      return fail_field(err, "", "selftune", "expected an object");
    }
    if (!read_enum(*st, "mode", {"none", "gtm", "gtmltm"},
                   {SelfTuneMode::kNone, SelfTuneMode::kGtm,
                    SelfTuneMode::kGtmLtm},
                   &s.selftune.mode, err, "selftune.") ||
        !read_index(*st, "gtm_cells", &s.selftune.gtm_cells, err,
                    "selftune.") ||
        !read_index(*st, "ltm_columns", &s.selftune.ltm_columns, err,
                    "selftune.")) {
      return false;
    }
  }
  if (const Jv* e = root.find("eval")) {
    if (e->kind != Jv::kObj) {
      return fail_field(err, "", "eval", "expected an object");
    }
    if (!read_index(*e, "n_chips", &s.eval.n_chips, err, "eval.") ||
        !read_index(*e, "max_test_samples", &s.eval.max_test_samples, err,
                    "eval.") ||
        !read_index(*e, "batch_size", &s.eval.batch_size, err, "eval.") ||
        !read_u64(*e, "seed", &s.eval.seed, err, "eval.") ||
        !read_index(*e, "chip_batch", &s.eval.chip_batch, err, "eval.") ||
        !read_index(*e, "tile_size", &s.eval.tile_size, err, "eval.") ||
        !read_enum(*e, "backend", {"weight_domain", "circuit", "int8"},
                   {EvalBackend::kWeightDomain, EvalBackend::kCircuit,
                    EvalBackend::kInt8},
                   &s.eval.backend, err, "eval.")) {
      return false;
    }
  }
  *out = std::move(s);
  return true;
}

ScenarioSpec ScenarioSpec::base(ModelKind kind, index_t a_bits, index_t w_bits,
                                ScenarioAlgo algo) {
  ScenarioSpec s;
  s.model = kind;
  s.model_cfg = default_model_config(kind, a_bits, w_bits);
  s.algo = algo;
  s.train = default_train_config(kind);
  s.eval = default_eval_config(kind);
  s.fast = fast_mode();
  return s;
}

ScenarioSpec ScenarioSpec::within(ModelKind kind, index_t a_bits,
                                  index_t w_bits, ScenarioAlgo algo,
                                  VarianceModel vm, double sigma) {
  ScenarioSpec s = base(kind, a_bits, w_bits, algo);
  s.deploy = VariabilityConfig::within_only(vm, sigma);
  s.train.train_noise = VariabilityConfig::within_only(vm, sigma);
  return s;
}

ScenarioSpec ScenarioSpec::mixed(ModelKind kind, index_t a_bits, index_t w_bits,
                                 ScenarioAlgo algo, VarianceModel vm,
                                 double sigma_tot) {
  ScenarioSpec s = base(kind, a_bits, w_bits, algo);
  s.deploy = VariabilityConfig::mixed(vm, sigma_tot);
  // §III.B deployment recipe: train with the within component only.
  s.train.train_noise =
      VariabilityConfig::within_only(vm, sigma_tot / std::sqrt(2.0));
  return s;
}

ScenarioSpec& ScenarioSpec::with_selftune(SelfTuneMode mode, index_t gtm_cells,
                                          index_t ltm_columns) {
  selftune.mode = mode;
  selftune.gtm_cells = gtm_cells;
  selftune.ltm_columns = ltm_columns;
  return *this;
}

}  // namespace qavat
