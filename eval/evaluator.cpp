#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/quant/int8_backend.h"
#include "pim/tiling.h"
#include "tensor/parallel_for.h"

namespace qavat {

Stats Stats::from(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

namespace {

double accuracy_on(Module& model, const Dataset& test, index_t max_samples,
                   index_t batch_size) {
  const index_t n = std::min<index_t>(test.size(), max_samples);
  if (n <= 0) return 0.0;
  index_t correct = 0;
  for (index_t start = 0; start < n; start += batch_size) {
    const index_t end = std::min(n, start + batch_size);
    std::vector<index_t> idx(static_cast<std::size_t>(end - start));
    for (index_t i = start; i < end; ++i) idx[static_cast<std::size_t>(i - start)] = i;
    Tensor x = test.gather_images(idx);
    std::vector<index_t> y = test.gather_labels(idx);
    Tensor logits = model.forward(x);
    index_t hits = 0;
    softmax_xent(logits, y, nullptr, &hits);
    correct += hits;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

void clear_all_noise(Module& model) {
  for (QuantLayerBase* q : model.quant_layers()) q->noise_state().clear();
}

// Draw chip `chip`'s full noise realization into slot `slot` of every
// layer's batched state. The RNG is seeded explicitly from the chip index
// — Rng(seed, chip) — and the draw order (chip eps_B, GTM measurement,
// then per layer: within-chip field, layer eps_B, LTM error) matches the
// sequential path exactly, so batched and sequential evaluation sample
// identical chips.
// Slot-pure: touches only slot `slot`'s disjoint storage (the eps slice
// and the eps_b/eps_hat/ltm_err vector entries) — the NoiseState-wide
// fields are written once per group by prepare_noise_group below — so
// the chips of a group can be sampled from a parallel_for. The batch==1
// scalar-field mirror is the one exception, and a one-chip group never
// dispatches in parallel.
void sample_chip_into_slot(std::vector<QuantLayerBase*>& qlayers,
                           const VariabilityConfig& vcfg, const EvalConfig& ecfg,
                           const SelfTuneConfig* st, index_t chip, index_t slot) {
  Rng rng(ecfg.seed, static_cast<std::uint64_t>(chip));
  const double eps_b = vcfg.sigma_b > 0.0 ? rng.normal(0.0, vcfg.sigma_b) : 0.0;
  const bool tune = st != nullptr && st->mode != SelfTuneMode::kNone;
  const double eps_hat =
      tune ? measure_eps_b(eps_b, vcfg.sigma_w, st->gtm_cells, rng) : 0.0;
  for (QuantLayerBase* q : qlayers) {
    sample_variability_slot_draws(*q, vcfg, rng, slot);
    NoiseState& ns = q->noise_state();
    ns.eps_b_v[static_cast<std::size_t>(slot)] = static_cast<float>(eps_b);
    if (tune) {
      ns.eps_hat_v[static_cast<std::size_t>(slot)] = static_cast<float>(eps_hat);
      ns.ltm_err_v[static_cast<std::size_t>(slot)] = static_cast<float>(
          ltm_readout_error(vcfg.sigma_w, st->ltm_columns, rng));
    }
    if (ns.batch == 1) {
      // A single-chip group (e.g. the ragged tail of n_chips % chip_batch
      // == 1) runs through the scalar forward path, which reads the
      // scalar fields — mirror slot 0 into them.
      ns.eps_b = ns.eps_b_v[0];
      ns.eps_hat = ns.eps_hat_v[0];
      ns.ltm_err = ns.ltm_err_v[0];
    }
  }
}

// Serial per-group prologue: size every layer's batched state and apply
// the NoiseState-wide writes that sample_variability_slot would have
// made per chip (model/wmax/active, the self-tune correction, and the
// one revision bump that invalidates cached effective weights / int8
// planes for the new group). Hoisting them here is what makes the
// per-chip sampling above safe to run from a parallel_for.
void prepare_noise_group(std::vector<QuantLayerBase*>& qlayers,
                         const VariabilityConfig& vcfg,
                         const SelfTuneConfig* st, index_t nb) {
  const bool tune = st != nullptr && st->mode != SelfTuneMode::kNone;
  for (QuantLayerBase* q : qlayers) {
    ensure_noise_batch(*q, nb);
    NoiseState& ns = q->noise_state();
    if (vcfg.enabled()) {
      ns.model = vcfg.model;
      // wmax is a property of the frozen weights, not of the chip:
      // bit-identical across slots, so once per group is enough (and
      // dequant_weight_max runs a full quantize-dequantize pass).
      ns.wmax = q->dequant_weight_max();
      ns.active = true;
    }
    if (tune) ns.correction = correction_for(st->mode);
  }
}

// Accuracy of `nb` chips in one pass: every test chunk is tiled chip-major
// to {nb*rows, ...} and sent through a single noise-batched forward, so
// each chip's logits are bit-identical to a sequential single-chip
// forward. The chunk is batch_size / nb test rows, keeping the tiled
// forward the same size as a sequential batch — larger tiles thrash the
// cache on the un-pooled CNN activations and erase the batching win. The
// chunking does not affect results: every per-row computation (quantize,
// im2col, GEMM row bands anchored at each chip's row 0, pooling, softmax
// argmax) is independent of how many rows share a forward.
void accuracy_batched(Module& model, const Dataset& test, const EvalConfig& ecfg,
                      index_t nb, double* out_accs) {
  const index_t n = std::min<index_t>(test.size(), ecfg.max_test_samples);
  if (n <= 0) {
    for (index_t b = 0; b < nb; ++b) out_accs[b] = 0.0;
    return;
  }
  const index_t chunk = std::max<index_t>(1, ecfg.batch_size / nb);
  std::vector<index_t> correct(static_cast<std::size_t>(nb), 0);
  // Chunk-loop scratch hoisted out of the loop: every chunk of a group
  // (and every group of a run) reuses the same buffers.
  std::vector<index_t> idx, idx_tiled;
  Tensor block;
  for (index_t start = 0; start < n; start += chunk) {
    const index_t end = std::min(n, start + chunk);
    const index_t rows = end - start;
    idx.resize(static_cast<std::size_t>(rows));
    for (index_t i = 0; i < rows; ++i) idx[static_cast<std::size_t>(i)] = start + i;
    idx_tiled.clear();
    idx_tiled.reserve(static_cast<std::size_t>(nb * rows));
    for (index_t b = 0; b < nb; ++b) {
      idx_tiled.insert(idx_tiled.end(), idx.begin(), idx.end());
    }
    Tensor x = test.gather_images(idx_tiled);
    const std::vector<index_t> y = test.gather_labels(idx);
    Tensor logits = model.forward(x);  // {nb*rows, classes}
    const index_t classes = logits.dim(1);
    block.resize_for_overwrite({rows, classes});
    for (index_t b = 0; b < nb; ++b) {
      std::memcpy(block.data(), logits.data() + b * rows * classes,
                  static_cast<std::size_t>(rows * classes) * sizeof(float));
      index_t hits = 0;
      softmax_xent(block, y, nullptr, &hits);
      correct[static_cast<std::size_t>(b)] += hits;
    }
  }
  for (index_t b = 0; b < nb; ++b) {
    out_accs[b] = static_cast<double>(correct[static_cast<std::size_t>(b)]) /
                  static_cast<double>(n);
  }
}

constexpr index_t kDefaultChipBatch = 8;

// Circuit-level Monte-Carlo path: chip c is a PimChip(seed, c) — the same
// Rng identity as the weight-domain draw, so both backends realize the
// same per-chip eps_B — whose programming noise lives in the tiled
// crossbar conductances instead of NoiseState::eps. Each quant layer's
// quantized weights program one TiledCrossbarLayer (<= tile x tile arrays
// with per-array GTM spare columns when self-tuning) installed as the
// layer's AnalogBackend; the forward then runs the normal pipeline with
// every analog MVM routed through pim/. Sequential by construction:
// programming per chip dominates, so the noise-batch axis would not pay.
EvalStats evaluate_circuit(Module& model, const Dataset& test,
                           const VariabilityConfig& vcfg,
                           const EvalConfig& ecfg, const SelfTuneConfig* st) {
  auto qlayers = model.quant_layers();
  // Start from a pristine NoiseState: stale batched/self-tune fields left
  // by a prior caller would otherwise drive apply_correction (the circuit
  // route is corrective whenever a backend is installed).
  clear_all_noise(model);
  const index_t tile =
      ecfg.tile_size > 0 ? ecfg.tile_size : tile_size_from_env();
  CrossbarConfig ccfg;
  ccfg.variability = vcfg;
  // Periphery stays ideal: DAC/ADC precision is already modeled digitally
  // by the activation/weight quantizers in the layer pipeline; modeling
  // it twice would double-count the converter error.
  const bool tune = st != nullptr && st->mode != SelfTuneMode::kNone;
  if (tune) {
    // GTM size is set by tile geometry here (one spare column of
    // array-rows cells per array), so a SelfTuneConfig::gtm_cells sweep
    // under this backend would silently evaluate the same estimator at
    // every point — say so once rather than publish a flat "sweep".
    // Only a non-default value signals a deliberate sweep; the default
    // stays silent so normal tuned runs do not train users to ignore it.
    static bool warned = false;
    if (!warned && st->gtm_cells != SelfTuneConfig{}.gtm_cells) {
      std::fprintf(stderr,
                   "qavat: circuit backend derives GTM cells from tile "
                   "geometry; SelfTuneConfig::gtm_cells (%lld) is ignored\n",
                   static_cast<long long>(st->gtm_cells));
      warned = true;
    }
  }

  // The programmed (quantize-dequantized) weights are chip-independent,
  // and so is each layer's wmax (the layer-fixed correction unit) — both
  // computed once, outside the chip loop.
  std::vector<Tensor> wd;
  std::vector<float> wmax;
  wd.reserve(qlayers.size());
  wmax.reserve(qlayers.size());
  for (QuantLayerBase* q : qlayers) {
    wd.push_back(q->programmed_weight());
    wmax.push_back(wd.back().abs_max());
  }

  // Whatever unwinds out of programming or a forward (bad_alloc on a big
  // tile grid, a shape error mid-eval), the model must never keep a
  // pointer to a destroyed backend or half-installed tuning state.
  struct BackendGuard {
    std::vector<QuantLayerBase*>& layers;
    Module& model;
    ~BackendGuard() {
      for (QuantLayerBase* q : layers) q->set_analog_backend(nullptr);
      clear_all_noise(model);
    }
  } guard{qlayers, model};

  std::vector<double> accs;
  accs.reserve(static_cast<std::size_t>(std::max<index_t>(0, ecfg.n_chips)));
  std::vector<std::unique_ptr<TiledCrossbarLayer>> tiled;
  for (index_t chip_idx = 0; chip_idx < ecfg.n_chips; ++chip_idx) {
    PimChip chip(ccfg, ecfg.seed, chip_idx);
    tiled.clear();
    tiled.reserve(qlayers.size());
    double gtm_sum = 0.0;
    index_t gtm_cells = 0;
    for (std::size_t i = 0; i < qlayers.size(); ++i) {
      QuantLayerBase* q = qlayers[i];
      auto t = std::make_unique<TiledCrossbarLayer>(
          chip, wd[i], TilePlan::make(q->fan_out(), q->fan_in(), tile), tune,
          &model.workspace());
      if (tune) {
        gtm_sum += t->measured_eps_b() *
                   static_cast<double>(t->total_gtm_cells());
        gtm_cells += t->total_gtm_cells();
      }
      q->set_analog_backend(t.get());
      tiled.push_back(std::move(t));
    }
    if (tune) {
      // Chip-level estimate: every array's GTM column measures the same
      // correlated eps_B, so pooling all spare-column cells across all
      // layers (cell-count-weighted mean, error ~ sigma_W /
      // sqrt(gtm_cells)) feeds the existing correction machinery. LTM
      // readout error keeps the analytic model (per layer, fixed per
      // chip), drawn from a stream decorrelated from the programming
      // draws.
      const double eps_hat =
          gtm_cells > 0 ? gtm_sum / static_cast<double>(gtm_cells) : 0.0;
      Rng ltm_rng(ecfg.seed + 0x9E3779B97F4A7C15ull,
                  static_cast<std::uint64_t>(chip_idx));
      for (std::size_t i = 0; i < qlayers.size(); ++i) {
        NoiseState& ns = qlayers[i]->noise_state();
        ns.correction = correction_for(st->mode);
        ns.eps_hat = static_cast<float>(eps_hat);
        ns.wmax = wmax[i];
        ns.ltm_err = static_cast<float>(
            ltm_readout_error(vcfg.sigma_w, st->ltm_columns, ltm_rng));
        ++ns.revision;
      }
    }
    accs.push_back(
        accuracy_on(model, test, ecfg.max_test_samples, ecfg.batch_size));
    for (QuantLayerBase* q : qlayers) q->set_analog_backend(nullptr);
  }
  // (BackendGuard re-clears on scope exit; uninstalling per chip just
  // keeps no dangling pointer alive across the next chip's programming.)
  EvalStats stats;
  stats.accuracy = Stats::from(accs);
  stats.n_chips = ecfg.n_chips;
  stats.per_chip_acc = std::move(accs);
  return stats;
}

}  // namespace

const char* to_string(EvalBackend backend) {
  switch (backend) {
    case EvalBackend::kCircuit:
      return "circuit";
    case EvalBackend::kInt8:
      return "int8";
    case EvalBackend::kWeightDomain:
      break;
  }
  return "weight_domain";
}

EvalBackend eval_backend_from_env() {
  // Parsed per call, NOT cached: one test binary flips the variable to
  // exercise all three backends in a single run (the old function-local
  // static pinned the first value for the process lifetime).
  const char* v = std::getenv("QAVAT_EVAL_BACKEND");
  if (v == nullptr || v[0] == '\0' || std::strcmp(v, "weight_domain") == 0) {
    return EvalBackend::kWeightDomain;
  }
  if (std::strcmp(v, "circuit") == 0) return EvalBackend::kCircuit;
  if (std::strcmp(v, "int8") == 0) return EvalBackend::kInt8;
  // A typo must not silently publish weight-domain numbers as
  // "circuit-level" or "int8" ones. Warn once per process, not per call.
  static bool warned = false;
  if (!warned) {
    std::fprintf(stderr,
                 "qavat: unrecognized QAVAT_EVAL_BACKEND=\"%s\" "
                 "(expected \"weight_domain\", \"circuit\" or \"int8\"); "
                 "using weight_domain\n",
                 v);
    warned = true;
  }
  return EvalBackend::kWeightDomain;
}

EvalStats evaluate_under_variability(Module& model, const Dataset& test,
                                     const VariabilityConfig& vcfg,
                                     const EvalConfig& ecfg,
                                     const SelfTuneConfig* st) {
  model.set_training(false);
  if (ecfg.backend == EvalBackend::kCircuit) {
    return evaluate_circuit(model, test, vcfg, ecfg, st);
  }
  auto qlayers = model.quant_layers();
  // The int8 backends must outlive the guard below (locals unwind in
  // reverse order: uninstall first, then destroy the backends).
  std::vector<std::unique_ptr<Int8Backend>> int8_backends;
  // Clear the sampled noise state — and uninstall any int8 backends —
  // however this scope exits: a throw mid-eval (allocation failure, shape
  // error) must not leave the model with a stale batched realization or a
  // dangling backend pointer installed — same teardown guarantee the
  // circuit branch gets from its BackendGuard.
  struct NoiseGuard {
    Module& model;
    std::vector<QuantLayerBase*>* backend_layers = nullptr;
    ~NoiseGuard() {
      if (backend_layers != nullptr) {
        for (QuantLayerBase* q : *backend_layers) q->set_analog_backend(nullptr);
      }
      clear_all_noise(model);
    }
  } noise_guard{model};
  if (ecfg.backend == EvalBackend::kInt8) {
    // Int8 route: install one integer backend per quant layer, then run
    // the identical weight-domain chip loop below — same Rng(seed, chip)
    // realizations, same chip batching; only the MVM arithmetic changes.
    // Each backend re-quantizes its layer's effective weights into packed
    // planes once per chip group (keyed on the NoiseState revision).
    int8_backends.reserve(qlayers.size());
    for (QuantLayerBase* q : qlayers) {
      int8_backends.push_back(
          std::make_unique<Int8Backend>(*q, model.workspace()));
      q->set_analog_backend(int8_backends.back().get());
    }
    noise_guard.backend_layers = &qlayers;
  }
  index_t chip_batch = ecfg.chip_batch > 0 ? ecfg.chip_batch : kDefaultChipBatch;
  chip_batch = std::max<index_t>(1, std::min(chip_batch, ecfg.n_chips));
  std::vector<double> accs;
  accs.reserve(static_cast<std::size_t>(std::max<index_t>(0, ecfg.n_chips)));
  if (chip_batch <= 1) {
    // Sequential reference path: one chip per pass over the test set.
    for (index_t chip = 0; chip < ecfg.n_chips; ++chip) {
      Rng rng(ecfg.seed, static_cast<std::uint64_t>(chip));
      // One correlated deviation per chip, shared by every layer; the GTM
      // measures it once per chip with cell-averaged error.
      const double eps_b =
          vcfg.sigma_b > 0.0 ? rng.normal(0.0, vcfg.sigma_b) : 0.0;
      const bool tune = st != nullptr && st->mode != SelfTuneMode::kNone;
      const double eps_hat =
          tune ? measure_eps_b(eps_b, vcfg.sigma_w, st->gtm_cells, rng) : 0.0;
      for (QuantLayerBase* q : qlayers) {
        sample_variability(*q, vcfg, rng);
        NoiseState& ns = q->noise_state();
        ns.eps_b = static_cast<float>(eps_b);
        if (tune) {
          ns.correction = correction_for(st->mode);
          ns.eps_hat = static_cast<float>(eps_hat);
          ns.ltm_err = static_cast<float>(
              ltm_readout_error(vcfg.sigma_w, st->ltm_columns, rng));
        }
      }
      accs.push_back(
          accuracy_on(model, test, ecfg.max_test_samples, ecfg.batch_size));
    }
  } else {
    // Batched path: chips in groups of chip_batch, one noise-batched
    // forward per test batch per group.
    for (index_t chip0 = 0; chip0 < ecfg.n_chips; chip0 += chip_batch) {
      const index_t nb = std::min(chip_batch, ecfg.n_chips - chip0);
      prepare_noise_group(qlayers, vcfg, st, nb);
      // Chips draw from independent streams — Rng(seed, chip) — and
      // sample_chip_into_slot is slot-pure after the prologue, so the
      // group's chips sample in parallel (an outer pool job above the
      // nested GEMM dispatches of the subsequent batched forward).
      parallel_for(index_t{0}, nb, index_t{1}, [&](index_t b0, index_t b1) {
        for (index_t b = b0; b < b1; ++b) {
          sample_chip_into_slot(qlayers, vcfg, ecfg, st, chip0 + b, b);
        }
      });
      std::vector<double> group_accs(static_cast<std::size_t>(nb), 0.0);
      accuracy_batched(model, test, ecfg, nb, group_accs.data());
      accs.insert(accs.end(), group_accs.begin(), group_accs.end());
    }
  }
  // (NoiseGuard clears the sampled state on scope exit.)
  EvalStats stats;
  stats.accuracy = Stats::from(accs);
  stats.n_chips = ecfg.n_chips;
  stats.per_chip_acc = std::move(accs);
  return stats;
}

DriftStats evaluate_under_drift(Module& model, const Dataset& test,
                                const DriftConfig& dcfg,
                                const DriftEvalConfig& ecfg) {
  model.set_training(false);
  auto qlayers = model.quant_layers();
  Rng rng(ecfg.seed, 0);

  // Static within-chip realization (device-to-device variation does not
  // drift); the correlated component eps_B(t) follows the OU process.
  VariabilityConfig within =
      VariabilityConfig::within_only(dcfg.model, dcfg.sigma_w);
  for (QuantLayerBase* q : qlayers) {
    sample_variability(*q, within, rng);
    NoiseState& ns = q->noise_state();
    if (!ns.active) {  // sigma_w == 0: pure-drift deployment still needs an
      ns.model = dcfg.model;  // active state to carry the drifting eps_B
      ns.wmax = q->dequant_weight_max();
      ns.eps.resize(q->weight().value.shape());
      ns.eps.zero();
      ns.active = true;
    }
  }
  const CorrectionKind correction = correction_for(proper_mode(dcfg.model));

  OuProcess ou(dcfg.tau, dcfg.sigma_b, rng);
  double eps_hat = measure_eps_b(ou.value(), dcfg.sigma_w, ecfg.gtm_cells, rng);

  double acc_sum = 0.0, err_sum = 0.0;
  index_t offset = 0;
  const index_t n_test = test.size();
  for (index_t step = 0; step < ecfg.n_steps; ++step) {
    if (step > 0) ou.step(rng);
    if (ecfg.remeasure_interval > 0 && step % ecfg.remeasure_interval == 0 &&
        step > 0) {
      eps_hat = measure_eps_b(ou.value(), dcfg.sigma_w, ecfg.gtm_cells, rng);
    }
    for (QuantLayerBase* q : qlayers) {
      NoiseState& ns = q->noise_state();
      ns.eps_b = static_cast<float>(ou.value());
      ns.correction = correction;
      ns.eps_hat = static_cast<float>(eps_hat);
      ns.ltm_err = 0.0f;
    }
    // Evaluate one batch, cycling through the test set.
    std::vector<index_t> idx(static_cast<std::size_t>(
        std::min<index_t>(ecfg.batch_size, n_test)));
    for (std::size_t i = 0; i < idx.size(); ++i) {
      idx[i] = (offset + static_cast<index_t>(i)) % n_test;
    }
    offset = (offset + static_cast<index_t>(idx.size())) % n_test;
    Tensor x = test.gather_images(idx);
    std::vector<index_t> y = test.gather_labels(idx);
    Tensor logits = model.forward(x);
    index_t hits = 0;
    softmax_xent(logits, y, nullptr, &hits);
    acc_sum += static_cast<double>(hits) / static_cast<double>(idx.size());
    err_sum += std::fabs(eps_hat - ou.value());
  }
  clear_all_noise(model);
  DriftStats out;
  out.mean_acc = acc_sum / static_cast<double>(ecfg.n_steps);
  out.mean_abs_error = err_sum / static_cast<double>(ecfg.n_steps);
  return out;
}

}  // namespace qavat
