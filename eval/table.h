// Minimal fixed-width text table used by every bench binary to print
// paper-style tables.
#pragma once

#include <string>
#include <vector>

namespace qavat {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  void print() const;

  /// Fixed-precision formatting for numeric cells.
  static std::string fmt(double value, int decimals);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qavat
