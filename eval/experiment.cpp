#include "eval/experiment.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "eval/store.h"

namespace qavat {

bool fast_mode() {
  static const bool fast = [] {
    const char* v = std::getenv("QAVAT_FAST");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return fast;
}

namespace {

struct ModelSnapshot {
  ModelKind kind;
  ModelConfig cfg;
  std::vector<std::vector<float>> params;
  std::vector<float> weight_scales;
  std::vector<float> act_scales;
  std::vector<bool> quant_enabled;
  double clean_test_acc = 0.0;
};

std::map<std::string, double>& result_cache() {
  static std::map<std::string, double> cache;
  return cache;
}

std::map<std::string, EvalStats>& eval_cache() {
  static std::map<std::string, EvalStats> cache;
  return cache;
}

std::map<std::string, ModelSnapshot>& model_cache() {
  static std::map<std::string, ModelSnapshot> cache;
  return cache;
}

index_t& training_runs_counter() {
  static index_t runs = 0;
  return runs;
}

// All cached training funnels through here so training_runs() counts
// every phase — the observable the CI warm-store gate asserts is zero.
TrainResult counted_train(Module& model, const Dataset& data, TrainAlgo algo,
                          const TrainConfig& cfg) {
  ++training_runs_counter();
  return train(model, data, algo, cfg);
}

// Persist a trained model (plus its clean accuracy) under `key`;
// fail-soft, the store warns once on unwritable paths.
void persist_model(const std::string& key, Module& model, double clean_acc) {
  StateDict sd = module_state_dict(model);
  sd.add_scalar("clean_test_acc", clean_acc);
  store_save_state("models", key, sd);
}

// Store probe for a trained model: returns the materialized Module (and
// clean accuracy) on a valid artifact matching (kind, cfg), nullptr
// otherwise — any mismatch or corruption reads as a miss and the caller
// retrains (overwriting the bad artifact).
struct LoadedModel {
  std::unique_ptr<Module> model;
  double clean_test_acc = 0.0;
};

LoadedModel load_model_from_store(const std::string& key, ModelKind kind,
                                  const ModelConfig& cfg,
                                  StoreLoadOutcome* outcome = nullptr) {
  LoadedModel out;
  StateDict sd;
  if (!store_load_state("models", key, &sd, outcome)) return out;
  const double* acc = sd.find_scalar("clean_test_acc");
  if (acc == nullptr) return out;
  auto model = make_model(kind, cfg);
  if (!load_module_state(*model, sd)) return out;
  out.model = std::move(model);
  out.clean_test_acc = *acc;
  return out;
}

// One claim-or-load round trip shared by every read-through cache: loop
// probing the artifact (probe() returns true on a valid hit) and trying
// to claim the right to produce it, backing off exponentially while
// another process holds the lease. Exits in one of two states: `loaded`
// (another producer published while we waited — nothing to compute), or
// not loaded with either the claim held or the store
// disabled/corrupt/claim-less — in all of which this process computes
// the unit itself (fail-soft: never blocks on a store that cannot
// deliver). The loop only continues while store_try_claim reports a
// live lease (kBusy); a store where claims can never be created
// (kUnavailable: read-only root, EACCES, persistent ENOSPC) falls
// through to local compute instead of spinning forever. `saw_corrupt`
// records whether any probe hit a corrupt (now quarantined) artifact,
// so the caller can count the recompute as a retrain-after-corruption.
struct ClaimWait {
  StoreClaim claim;
  bool loaded = false;
  bool saw_corrupt = false;
};

ClaimWait claim_or_load(const char* bucket, const std::string& key,
                        const std::function<bool(StoreLoadOutcome*)>& probe) {
  ClaimWait cw;
  for (int attempt = 0;; ++attempt) {
    StoreLoadOutcome outcome = StoreLoadOutcome::kMiss;
    if (probe(&outcome)) {
      cw.loaded = true;
      return cw;
    }
    if (outcome == StoreLoadOutcome::kCorrupt) cw.saw_corrupt = true;
    if (!store_enabled()) return cw;
    StoreClaimStatus status = StoreClaimStatus::kBusy;
    cw.claim = store_try_claim(bucket, key, &status);
    if (cw.claim.held()) return cw;
    if (status == StoreClaimStatus::kUnavailable) return cw;
    store_claim_backoff_wait(attempt);
  }
}

ModelSnapshot snapshot(Module& model, double clean_acc) {
  ModelSnapshot s;
  s.kind = model.kind();
  s.cfg = model.config();
  for (Param* p : model.parameters()) {
    s.params.emplace_back(p->value.data(), p->value.data() + p->value.size());
  }
  for (QuantLayerBase* q : model.quant_layers()) {
    s.weight_scales.push_back(q->weight_scale());
    s.act_scales.push_back(q->act_quantizer().scale());
    s.quant_enabled.push_back(q->quant_enabled());
  }
  s.clean_test_acc = clean_acc;
  return s;
}

std::unique_ptr<Module> restore(const ModelSnapshot& s) {
  auto model = make_model(s.kind, s.cfg);
  auto params = model->parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i]->value.data();
    for (std::size_t j = 0; j < s.params[i].size(); ++j) dst[j] = s.params[i][j];
  }
  auto qs = model->quant_layers();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qs[i]->set_weight_scale(s.weight_scales[i]);
    qs[i]->act_quantizer().set_scale(s.act_scales[i]);
    qs[i]->set_quant_enabled(s.quant_enabled[i]);
  }
  model->set_training(false);
  return model;
}

std::string noise_key(const VariabilityConfig& v) {
  std::ostringstream os;
  os << (v.model == VarianceModel::kWeightProportional ? "wp" : "lf") << "_"
     << v.sigma_w << "_" << v.sigma_b;
  return os.str();
}

}  // namespace

std::string train_cache_key(ModelKind kind, const ModelConfig& mcfg,
                            const char* algo, const SplitDataset& data,
                            const TrainConfig& tcfg) {
  std::ostringstream os;
  os << to_string(kind) << "_A" << mcfg.a_bits << "W" << mcfg.w_bits << "_nc"
     << mcfg.num_classes << "_c" << mcfg.in_channels << "s" << mcfg.image_size
     << "i" << mcfg.init_seed << "_" << algo << "_e" << tcfg.epochs << "_lr"
     << tcfg.lr << "_bs" << tcfg.batch_size << "_n" << tcfg.n_variation_samples
     << "_rp" << tcfg.reparam << "_su" << static_cast<int>(tcfg.scale_update)
     << "_sd" << tcfg.seed << "_" << noise_key(tcfg.train_noise) << "_d"
     << data.train.size() << "x" << data.test.size()
     << (fast_mode() ? "_fast" : "");
  return os.str();
}

namespace {

// Local alias: the public name is train_cache_key (eval/experiment.h);
// the cache bodies below predate the export and read better short.
inline std::string train_key(ModelKind kind, const ModelConfig& mcfg,
                             const char* algo, const SplitDataset& data,
                             const TrainConfig& tcfg) {
  return train_cache_key(kind, mcfg, algo, data, tcfg);
}

}  // namespace

double with_result_cache(const std::string& key,
                         const std::function<double()>& fn) {
  auto& cache = result_cache();
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  double loaded = 0.0;
  ClaimWait cw = claim_or_load("results", key, [&](StoreLoadOutcome* o) {
    std::vector<double> persisted;
    if (!store_load_doubles("results", key, &persisted, o) ||
        persisted.size() != 1) {
      return false;
    }
    loaded = persisted[0];
    return true;
  });
  if (cw.loaded) {
    cache.emplace(key, loaded);
    return loaded;
  }
  const double value = fn();
  if (cw.saw_corrupt) store_note_retrain_after_corruption();
  cache.emplace(key, value);
  store_save_doubles("results", key, {value});
  return value;  // cw's claim (if held) releases here, after the publish
}

EvalStats with_eval_cache(const std::string& key,
                          const std::function<EvalStats()>& fn,
                          bool* computed) {
  if (computed != nullptr) *computed = false;
  auto& cache = eval_cache();
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  EvalStats loaded;
  ClaimWait cw = claim_or_load("evals", key, [&](StoreLoadOutcome* o) {
    std::vector<double> per_chip;
    if (!store_load_doubles("evals", key, &per_chip, o)) return false;
    // The per-chip vector is the persisted artifact; the summary stats
    // recompute from the exact same doubles, so a warm hit is
    // bit-identical to the cold EvalStats.
    loaded.accuracy = Stats::from(per_chip);
    loaded.n_chips = static_cast<index_t>(per_chip.size());
    loaded.per_chip_acc = std::move(per_chip);
    return true;
  });
  if (cw.loaded) {
    return cache.emplace(key, std::move(loaded)).first->second;
  }
  EvalStats stats = fn();
  if (computed != nullptr) *computed = true;
  if (cw.saw_corrupt) store_note_retrain_after_corruption();
  store_save_doubles("evals", key, stats.per_chip_acc);
  return cache.emplace(key, std::move(stats)).first->second;
}

void clear_experiment_caches(bool drop_disk) {
  result_cache().clear();
  eval_cache().clear();
  model_cache().clear();
  if (drop_disk) store_drop_all();
}

index_t training_runs() { return training_runs_counter(); }

TrainedModel train_cached(ModelKind kind, const ModelConfig& mcfg, TrainAlgo algo,
                          const SplitDataset& data, const TrainConfig& tcfg) {
  const std::string key = train_key(kind, mcfg, to_string(algo), data, tcfg);
  auto& cache = model_cache();
  TrainedModel out;
  auto it = cache.find(key);
  if (it == cache.end()) {
    // The fine-tuned artifact is its own claim unit: only kQAVAT with
    // training noise publishes under `key` — kQAT (and noise-free
    // kQAVAT) degenerate to the pretrain phase, whose artifact lives
    // under pre_key, so waiting on `key` for them would never end.
    const bool wants_finetune =
        algo == TrainAlgo::kQAVAT && tcfg.train_noise.enabled();
    StoreClaim key_claim;
    bool key_corrupt = false;
    if (wants_finetune) {
      // Read-through with the work-claim protocol: probe the disk store
      // for the finished model, and on a miss either claim the right to
      // train it or wait for the process that already did (DESIGN §14).
      ClaimWait cw = claim_or_load("models", key, [&](StoreLoadOutcome* o) {
        LoadedModel loaded = load_model_from_store(key, kind, mcfg, o);
        if (loaded.model == nullptr) return false;
        cache.emplace(key, snapshot(*loaded.model, loaded.clean_test_acc));
        out.clean_test_acc = loaded.clean_test_acc;
        out.model = std::move(loaded.model);
        out.from_store = true;
        return true;
      });
      if (cw.loaded) return out;
      key_claim = std::move(cw.claim);
      key_corrupt = cw.saw_corrupt;
    }
    // Phase 1: QAT pretraining, cached under its own (noise-free) key so
    // QAT and every QAVAT variant of the same workload share it — its
    // own claim unit, trained by exactly one process fleet-wide.
    TrainConfig pre = tcfg;
    pre.train_noise = VariabilityConfig{};
    pre.n_variation_samples = 1;
    const std::string pre_key = train_key(kind, mcfg, "QAT", data, pre);
    bool pre_from_store = false;
    auto pre_it = cache.find(pre_key);
    if (pre_it == cache.end()) {
      ClaimWait cw = claim_or_load("models", pre_key, [&](StoreLoadOutcome* o) {
        LoadedModel l = load_model_from_store(pre_key, kind, mcfg, o);
        if (l.model == nullptr) return false;
        pre_from_store = true;
        pre_it =
            cache.emplace(pre_key, snapshot(*l.model, l.clean_test_acc)).first;
        return true;
      });
      if (!cw.loaded) {
        auto model = make_model(kind, mcfg);
        counted_train(*model, data.train, TrainAlgo::kQAT, pre);
        out.trained = true;
        if (cw.saw_corrupt) store_note_retrain_after_corruption();
        const double acc = evaluate_clean(*model, data.test);
        pre_it = cache.emplace(pre_key, snapshot(*model, acc)).first;
        persist_model(pre_key, *model, acc);
        // cw's pre_key claim releases here, after the publish.
      }
    }
    if (wants_finetune) {
      // Phase 2: noisy-forward fine-tuning from the pretrained weights.
      auto model = restore(pre_it->second);
      TrainConfig fine = tcfg;
      fine.lr = tcfg.lr * 0.5;
      counted_train(*model, data.train, TrainAlgo::kQAVAT, fine);
      out.trained = true;
      if (key_corrupt) store_note_retrain_after_corruption();
      const double acc = evaluate_clean(*model, data.test);
      it = cache.emplace(key, snapshot(*model, acc)).first;
      persist_model(key, *model, acc);
      key_claim.release();  // publish done: waiters load the artifact now
    } else {
      // The alias stays memory-only — a warm run re-reaches the
      // pretrained artifact through pre_key without training. (For plain
      // kQAT, key == pre_key and this emplace finds the existing entry.)
      it = cache.emplace(key, pre_it->second).first;
      out.from_store = pre_from_store;
    }
  }
  out.model = restore(it->second);
  out.clean_test_acc = it->second.clean_test_acc;
  return out;
}

TrainedModel train_ptq_vat_cached(ModelKind kind, const ModelConfig& mcfg,
                                  const SplitDataset& data,
                                  const TrainConfig& tcfg) {
  const std::string key = train_key(kind, mcfg, "PTQVAT", data, tcfg);
  auto& cache = model_cache();
  TrainedModel out;
  auto it = cache.find(key);
  if (it == cache.end()) {
    ClaimWait cw = claim_or_load("models", key, [&](StoreLoadOutcome* o) {
      LoadedModel loaded = load_model_from_store(key, kind, mcfg, o);
      if (loaded.model == nullptr) return false;
      cache.emplace(key, snapshot(*loaded.model, loaded.clean_test_acc));
      out.clean_test_acc = loaded.clean_test_acc;
      out.model = std::move(loaded.model);
      out.from_store = true;
      return true;
    });
    if (cw.loaded) return out;
    auto model = make_model(kind, mcfg);
    model->set_quant_enabled(false);
    // Same total budget as the two-phase recipe: float pretrain + float VAT.
    TrainConfig pre = tcfg;
    pre.train_noise = VariabilityConfig{};
    counted_train(*model, data.train, TrainAlgo::kQAT, pre);
    TrainConfig vat = tcfg;
    vat.lr = tcfg.lr * 0.5;
    counted_train(*model, data.train, TrainAlgo::kQAVAT, vat);
    out.trained = true;
    // Post-training quantization: MMSE weight grids; activation scales
    // were calibrated (EMA) during the float training forwards.
    model->set_quant_enabled(true);
    for (QuantLayerBase* q : model->quant_layers()) q->refresh_weight_scale();
    if (cw.saw_corrupt) store_note_retrain_after_corruption();
    const double acc = evaluate_clean(*model, data.test);
    it = cache.emplace(key, snapshot(*model, acc)).first;
    persist_model(key, *model, acc);
    // cw's claim (if held) releases at scope exit, after the publish.
  }
  out.model = restore(it->second);
  out.clean_test_acc = it->second.clean_test_acc;
  return out;
}

ModelConfig default_model_config(ModelKind kind, index_t a_bits, index_t w_bits) {
  ModelConfig cfg;
  cfg.a_bits = a_bits;
  cfg.w_bits = w_bits;
  if (kind == ModelKind::kLeNet5s) {
    cfg.in_channels = 1;
    cfg.image_size = 12;
  } else {
    cfg.in_channels = 3;
    cfg.image_size = 16;
  }
  cfg.num_classes = 10;
  return cfg;
}

TrainConfig default_train_config(ModelKind kind) {
  TrainConfig cfg;
  cfg.lr = 3e-3;
  cfg.batch_size = 32;
  if (kind == ModelKind::kLeNet5s) {
    cfg.epochs = fast_mode() ? 2 : 5;
  } else {
    // The synthetic-image CNNs need a few epochs before accuracy leaves
    // chance level; 1 epoch would make every bench table vacuous.
    cfg.epochs = fast_mode() ? 3 : 6;
  }
  return cfg;
}

EvalConfig default_eval_config(ModelKind kind) {
  EvalConfig cfg;
  cfg.n_chips = fast_mode() ? 8 : 25;
  cfg.max_test_samples = fast_mode() ? 200 : (1 << 30);
  // Noise-batched Monte-Carlo: simulate 8 chips per forward by default
  // (identical per-chip results to sequential evaluation; see
  // eval/evaluator.h). QAVAT_CHIP_BATCH overrides, 1 = sequential.
  static const index_t chip_batch = [] {
    const char* v = std::getenv("QAVAT_CHIP_BATCH");
    if (v != nullptr && v[0] != '\0') {
      const long n = std::strtol(v, nullptr, 10);
      if (n > 0) return static_cast<index_t>(n);
    }
    return index_t{8};
  }();
  cfg.chip_batch = chip_batch;
  // QAVAT_EVAL_BACKEND=circuit routes every bench evaluation through the
  // tiled crossbar simulator (sequential; see eval/evaluator.h). The
  // tile size stays 0 here so the evaluator resolves QAVAT_TILE_SIZE.
  cfg.backend = eval_backend_from_env();
  (void)kind;
  return cfg;
}

SplitDataset make_dataset_for(ModelKind kind) {
  if (kind == ModelKind::kLeNet5s) {
    SynthDigitsConfig cfg;
    cfg.n_train = fast_mode() ? 1500 : 3000;
    cfg.n_test = fast_mode() ? 300 : 500;
    return make_synth_digits(cfg);
  }
  SynthImagesConfig cfg;
  cfg.n_train = fast_mode() ? 1000 : 2500;
  cfg.n_test = fast_mode() ? 250 : 500;
  return make_synth_images(cfg);
}

}  // namespace qavat
