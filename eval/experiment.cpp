#include "eval/experiment.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace qavat {

bool fast_mode() {
  static const bool fast = [] {
    const char* v = std::getenv("QAVAT_FAST");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return fast;
}

namespace {

struct ModelSnapshot {
  ModelKind kind;
  ModelConfig cfg;
  std::vector<std::vector<float>> params;
  std::vector<float> weight_scales;
  std::vector<float> act_scales;
  std::vector<bool> quant_enabled;
  double clean_test_acc = 0.0;
};

std::map<std::string, double>& result_cache() {
  static std::map<std::string, double> cache;
  return cache;
}

std::map<std::string, ModelSnapshot>& model_cache() {
  static std::map<std::string, ModelSnapshot> cache;
  return cache;
}

ModelSnapshot snapshot(Module& model, double clean_acc) {
  ModelSnapshot s;
  s.kind = model.kind();
  s.cfg = model.config();
  for (Param* p : model.parameters()) {
    s.params.emplace_back(p->value.data(), p->value.data() + p->value.size());
  }
  for (QuantLayerBase* q : model.quant_layers()) {
    s.weight_scales.push_back(q->weight_scale());
    s.act_scales.push_back(q->act_quantizer().scale());
    s.quant_enabled.push_back(q->quant_enabled());
  }
  s.clean_test_acc = clean_acc;
  return s;
}

std::unique_ptr<Module> restore(const ModelSnapshot& s) {
  auto model = make_model(s.kind, s.cfg);
  auto params = model->parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i]->value.data();
    for (std::size_t j = 0; j < s.params[i].size(); ++j) dst[j] = s.params[i][j];
  }
  auto qs = model->quant_layers();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qs[i]->set_weight_scale(s.weight_scales[i]);
    qs[i]->act_quantizer().set_scale(s.act_scales[i]);
    qs[i]->set_quant_enabled(s.quant_enabled[i]);
  }
  model->set_training(false);
  return model;
}

std::string noise_key(const VariabilityConfig& v) {
  std::ostringstream os;
  os << (v.model == VarianceModel::kWeightProportional ? "wp" : "lf") << "_"
     << v.sigma_w << "_" << v.sigma_b;
  return os.str();
}

std::string train_key(ModelKind kind, const ModelConfig& mcfg, const char* algo,
                      const SplitDataset& data, const TrainConfig& tcfg) {
  std::ostringstream os;
  os << to_string(kind) << "_A" << mcfg.a_bits << "W" << mcfg.w_bits << "_nc"
     << mcfg.num_classes << "_c" << mcfg.in_channels << "s" << mcfg.image_size
     << "i" << mcfg.init_seed << "_" << algo << "_e" << tcfg.epochs << "_lr"
     << tcfg.lr << "_bs" << tcfg.batch_size << "_n" << tcfg.n_variation_samples
     << "_rp" << tcfg.reparam << "_su" << static_cast<int>(tcfg.scale_update)
     << "_sd" << tcfg.seed << "_" << noise_key(tcfg.train_noise) << "_d"
     << data.train.size() << "x" << data.test.size()
     << (fast_mode() ? "_fast" : "");
  return os.str();
}

}  // namespace

double with_result_cache(const std::string& key,
                         const std::function<double()>& fn) {
  auto& cache = result_cache();
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const double value = fn();
  cache.emplace(key, value);
  return value;
}

void clear_experiment_caches() {
  result_cache().clear();
  model_cache().clear();
}

TrainedModel train_cached(ModelKind kind, const ModelConfig& mcfg, TrainAlgo algo,
                          const SplitDataset& data, const TrainConfig& tcfg) {
  const std::string key = train_key(kind, mcfg, to_string(algo), data, tcfg);
  auto& cache = model_cache();
  auto it = cache.find(key);
  if (it == cache.end()) {
    // Phase 1: QAT pretraining, cached under its own (noise-free) key so
    // QAT and every QAVAT variant of the same workload share it.
    TrainConfig pre = tcfg;
    pre.train_noise = VariabilityConfig{};
    pre.n_variation_samples = 1;
    const std::string pre_key = train_key(kind, mcfg, "QAT", data, pre);
    auto pre_it = cache.find(pre_key);
    if (pre_it == cache.end()) {
      auto model = make_model(kind, mcfg);
      train(*model, data.train, TrainAlgo::kQAT, pre);
      const double acc = evaluate_clean(*model, data.test);
      pre_it = cache.emplace(pre_key, snapshot(*model, acc)).first;
    }
    if (algo == TrainAlgo::kQAVAT && tcfg.train_noise.enabled()) {
      // Phase 2: noisy-forward fine-tuning from the pretrained weights.
      auto model = restore(pre_it->second);
      TrainConfig fine = tcfg;
      fine.lr = tcfg.lr * 0.5;
      train(*model, data.train, TrainAlgo::kQAVAT, fine);
      const double acc = evaluate_clean(*model, data.test);
      it = cache.emplace(key, snapshot(*model, acc)).first;
    } else {
      it = cache.find(key);
      if (it == cache.end()) {
        // kQAVAT with no noise degenerates to the QAT phase.
        it = cache.emplace(key, pre_it->second).first;
      }
    }
  }
  TrainedModel out;
  out.model = restore(it->second);
  out.clean_test_acc = it->second.clean_test_acc;
  return out;
}

TrainedModel train_ptq_vat_cached(ModelKind kind, const ModelConfig& mcfg,
                                  const SplitDataset& data,
                                  const TrainConfig& tcfg) {
  const std::string key = train_key(kind, mcfg, "PTQVAT", data, tcfg);
  auto& cache = model_cache();
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto model = make_model(kind, mcfg);
    model->set_quant_enabled(false);
    // Same total budget as the two-phase recipe: float pretrain + float VAT.
    TrainConfig pre = tcfg;
    pre.train_noise = VariabilityConfig{};
    train(*model, data.train, TrainAlgo::kQAT, pre);
    TrainConfig vat = tcfg;
    vat.lr = tcfg.lr * 0.5;
    train(*model, data.train, TrainAlgo::kQAVAT, vat);
    // Post-training quantization: MMSE weight grids; activation scales
    // were calibrated (EMA) during the float training forwards.
    model->set_quant_enabled(true);
    for (QuantLayerBase* q : model->quant_layers()) q->refresh_weight_scale();
    const double acc = evaluate_clean(*model, data.test);
    it = cache.emplace(key, snapshot(*model, acc)).first;
  }
  TrainedModel out;
  out.model = restore(it->second);
  out.clean_test_acc = it->second.clean_test_acc;
  return out;
}

ModelConfig default_model_config(ModelKind kind, index_t a_bits, index_t w_bits) {
  ModelConfig cfg;
  cfg.a_bits = a_bits;
  cfg.w_bits = w_bits;
  if (kind == ModelKind::kLeNet5s) {
    cfg.in_channels = 1;
    cfg.image_size = 12;
  } else {
    cfg.in_channels = 3;
    cfg.image_size = 16;
  }
  cfg.num_classes = 10;
  return cfg;
}

TrainConfig default_train_config(ModelKind kind) {
  TrainConfig cfg;
  cfg.lr = 3e-3;
  cfg.batch_size = 32;
  if (kind == ModelKind::kLeNet5s) {
    cfg.epochs = fast_mode() ? 2 : 5;
  } else {
    // The synthetic-image CNNs need a few epochs before accuracy leaves
    // chance level; 1 epoch would make every bench table vacuous.
    cfg.epochs = fast_mode() ? 3 : 6;
  }
  return cfg;
}

EvalConfig default_eval_config(ModelKind kind) {
  EvalConfig cfg;
  cfg.n_chips = fast_mode() ? 8 : 25;
  cfg.max_test_samples = fast_mode() ? 200 : (1 << 30);
  // Noise-batched Monte-Carlo: simulate 8 chips per forward by default
  // (identical per-chip results to sequential evaluation; see
  // eval/evaluator.h). QAVAT_CHIP_BATCH overrides, 1 = sequential.
  static const index_t chip_batch = [] {
    const char* v = std::getenv("QAVAT_CHIP_BATCH");
    if (v != nullptr && v[0] != '\0') {
      const long n = std::strtol(v, nullptr, 10);
      if (n > 0) return static_cast<index_t>(n);
    }
    return index_t{8};
  }();
  cfg.chip_batch = chip_batch;
  // QAVAT_EVAL_BACKEND=circuit routes every bench evaluation through the
  // tiled crossbar simulator (sequential; see eval/evaluator.h). The
  // tile size stays 0 here so the evaluator resolves QAVAT_TILE_SIZE.
  cfg.backend = eval_backend_from_env();
  (void)kind;
  return cfg;
}

SplitDataset make_dataset_for(ModelKind kind) {
  if (kind == ModelKind::kLeNet5s) {
    SynthDigitsConfig cfg;
    cfg.n_train = fast_mode() ? 1500 : 3000;
    cfg.n_test = fast_mode() ? 300 : 500;
    return make_synth_digits(cfg);
  }
  SynthImagesConfig cfg;
  cfg.n_train = fast_mode() ? 1000 : 2500;
  cfg.n_test = fast_mode() ? 250 : 500;
  return make_synth_images(cfg);
}

}  // namespace qavat
