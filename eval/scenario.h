// Declarative experiment descriptor. A ScenarioSpec is the plain-data
// record of one full experiment point — model kind and bit widths,
// training recipe (algorithm, noise, sampling, seeds), deployment
// variability, self-tuning configuration, and the Monte-Carlo evaluation
// protocol (chips, samples, seed, backend) — everything that determines
// the numbers a bench prints. Its canonical key() is the cache/store
// identity replacing the hand-built strings benches used to pass to
// with_result_cache, and to_json()/from_json() give a lossless
// round-trip so specs can be saved, diffed and replayed.
//
// Knobs that provably do not change results (chip_batch, eval batch
// size, thread counts — the DESIGN.md §7–8 bit-identity contracts) are
// deliberately excluded from the key, so a warm store hit is reached
// from any execution schedule.
#pragma once

#include <string>

#include "core/selftune/selftune.h"
#include "core/train/trainer.h"
#include "eval/evaluator.h"

namespace qavat {

/// Key-schema version baked into every ScenarioSpec key; bump when the
/// key format (or the meaning of any keyed field) changes so persisted
/// artifacts from older schemas can never be misread as current ones.
inline constexpr int kScenarioSchemaVersion = 1;

/// Training algorithm of a scenario. Extends TrainAlgo with the paper's
/// PTQ-VAT baseline (float VAT training + post-training quantization),
/// which the experiment layer trains through its own recipe.
enum class ScenarioAlgo { kPTQVAT, kQAT, kQAVAT };

/// Stable lowercase-free token used in keys and JSON ("PTQVAT", "QAT",
/// "QAVAT").
const char* to_string(ScenarioAlgo a);

/// Plain-data descriptor of one experiment point. Build with the named
/// constructors (which fill workload defaults from eval/experiment.h and
/// encode the paper's deployment recipes), then tweak fields directly.
struct ScenarioSpec {
  ModelKind model = ModelKind::kLeNet5s;  ///< model zoo entry
  ModelConfig model_cfg;                  ///< bits + geometry + init seed
  ScenarioAlgo algo = ScenarioAlgo::kQAVAT;  ///< training algorithm
  TrainConfig train;            ///< full recipe incl. train noise + seed
  VariabilityConfig deploy;     ///< deployment env; disabled = clean only
  SelfTuneConfig selftune{SelfTuneMode::kNone, 1000, 1};  ///< off by default
  EvalConfig eval;              ///< Monte-Carlo protocol + backend
  bool fast = false;            ///< budgets the spec was built under
                                ///< (QAVAT_FAST); part of the key so smoke
                                ///< artifacts never collide with full runs

  /// True when the spec requests an inference-time self-tuning module.
  bool selftune_active() const { return selftune.mode != SelfTuneMode::kNone; }

  /// Canonical, stable, space-free cache/store key. Schema-versioned
  /// ("v1_..."), suffixed "_fast"/"_full", and excluding the
  /// result-invariant execution knobs (chip_batch, eval batch size).
  std::string key() const;

  /// Lossless JSON encoding (doubles printed with round-trip precision).
  std::string to_json() const;

  /// Parse a to_json() document. Returns false — leaving *out untouched —
  /// on malformed JSON, an unknown enum token or a schema-version
  /// mismatch. Absent optional fields keep their defaults. On failure
  /// `*error` (optional) names the offending field and what was wrong
  /// with it (e.g. "train.lr: expected a number", "algo: unknown token
  /// 'QVT'"), so manifest validation can point at the exact field.
  static bool from_json(const std::string& text, ScenarioSpec* out,
                        std::string* error = nullptr);

  /// Workload defaults for (kind, bits, algo): default model/train/eval
  /// configs, no deployment noise (clean-accuracy scenario), fast flag
  /// from the environment.
  static ScenarioSpec base(ModelKind kind, index_t a_bits, index_t w_bits,
                           ScenarioAlgo algo);

  /// base() + within-chip-only deployment at `sigma`, trained with
  /// matching within-chip sampling (the recipe every within-chip bench
  /// row uses; QAT/PTQ-VAT scenarios carry the same train config so the
  /// pretraining phase is shared across algorithms).
  static ScenarioSpec within(ModelKind kind, index_t a_bits, index_t w_bits,
                             ScenarioAlgo algo, VarianceModel vm, double sigma);

  /// base() + mixed-type deployment at `sigma_tot` (equal within/between
  /// components in quadrature), trained per the paper's self-tuning
  /// recipe: within-chip sampling only, at sigma_tot / sqrt(2).
  static ScenarioSpec mixed(ModelKind kind, index_t a_bits, index_t w_bits,
                            ScenarioAlgo algo, VarianceModel vm,
                            double sigma_tot);

  /// Fluent self-tuning setter: `spec.with_selftune(proper_mode(vm))`.
  ScenarioSpec& with_selftune(SelfTuneMode mode, index_t gtm_cells = 1000,
                              index_t ltm_columns = 1);
};

}  // namespace qavat
