// Experiment harness shared by all bench binaries: workload defaults per
// model kind, a process-wide model cache (training is the expensive step
// and many tables reuse the same trained model), a result cache for
// Monte-Carlo evaluations, and the QAVAT_FAST=1 switch that shrinks every
// budget for smoke testing.
//
// Both caches are read-through layers over the on-disk artifact store
// (eval/store.h): a miss probes the store before computing, and every
// computed artifact is persisted, so a warm second run of any bench
// loads its trained models and Monte-Carlo results bit-identically
// instead of recomputing them. QAVAT_STORE=0 restores the old
// in-process-only behavior.
//
// Misses go through the store's work-claim protocol (DESIGN.md §14):
// the cache claims the right to produce the artifact, trains/evaluates,
// publishes, and releases — while waiters back off until the artifact
// appears (or the lease goes stale and is reclaimed). N concurrent
// processes sharing one store therefore train each unit exactly once.
// A corrupt artifact is quarantined by the store and recomputed here,
// counting toward StoreStats::retrains_after_corruption — corruption is
// healed, never served and never fatal.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/selftune/selftune.h"
#include "core/train/trainer.h"
#include "data/synth.h"
#include "eval/evaluator.h"

namespace qavat {

/// True when QAVAT_FAST=1 (or any non-empty value but "0") is set in the
/// environment: smaller datasets, fewer epochs, fewer Monte-Carlo chips.
bool fast_mode();

/// Memoize a scalar result under a descriptive space-free key
/// (memory, then disk store, then fn()).
double with_result_cache(const std::string& key,
                         const std::function<double()>& fn);

/// Memoize a full Monte-Carlo evaluation under `key`: the per-chip
/// accuracy vector persists (memory, then disk store) and the summary
/// stats are recomputed from it, so a warm hit reproduces the cold
/// EvalStats bit-identically. `*computed` (optional) reports whether fn
/// actually ran.
EvalStats with_eval_cache(const std::string& key,
                          const std::function<EvalStats()>& fn,
                          bool* computed = nullptr);

/// Drop all cached results and models (mainly for tests). With
/// `drop_disk`, also delete this schema's subtree of the on-disk store.
void clear_experiment_caches(bool drop_disk = false);

/// Number of train() invocations this process has executed through the
/// cached training entry points (QAT pretraining, QAVAT fine-tuning and
/// the PTQ-VAT phases each count once). A fully warm-store run stays at
/// 0 — the property the CI cold/warm gate asserts.
index_t training_runs();

struct TrainedModel {
  std::unique_ptr<Module> model;
  double clean_test_acc = 0.0;
  bool trained = false;     ///< this call ran at least one train() phase
  bool from_store = false;  ///< requested model was loaded from disk
};

/// Train through the model cache with the paper's two-phase recipe: QAT
/// pretraining (shared across algorithms via its own cache entry), then —
/// for kQAVAT — noisy-forward fine-tuning at half the learning rate.
/// Returns a private clone; callers may mutate or reset it freely.
TrainedModel train_cached(ModelKind kind, const ModelConfig& mcfg,
                          TrainAlgo algo, const SplitDataset& data,
                          const TrainConfig& tcfg);

/// The paper's "VAT" baseline: variability-aware training of the *float*
/// model, then post-training quantization with MMSE scales.
TrainedModel train_ptq_vat_cached(ModelKind kind, const ModelConfig& mcfg,
                                  const SplitDataset& data,
                                  const TrainConfig& tcfg);

/// The canonical model-cache/store key of ONE cached training phase —
/// exactly the key train_cached / train_ptq_vat_cached use for (kind,
/// mcfg, algo token, dataset, tcfg), and therefore the claim unit the
/// work-claim protocol serializes producers on. `algo` is the cache
/// token: "QAT", "QAVAT" or "PTQVAT". Exposed so the claim-aware
/// scheduler (Session::run_manifest) and tests can probe a unit's
/// claim/artifact state non-destructively instead of entering the
/// blocking read-through path.
std::string train_cache_key(ModelKind kind, const ModelConfig& mcfg,
                            const char* algo, const SplitDataset& data,
                            const TrainConfig& tcfg);

ModelConfig default_model_config(ModelKind kind, index_t a_bits, index_t w_bits);
TrainConfig default_train_config(ModelKind kind);
EvalConfig default_eval_config(ModelKind kind);
SplitDataset make_dataset_for(ModelKind kind);

}  // namespace qavat
