#include "eval/runner.h"

#include <chrono>
#include <cstdio>

namespace qavat {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TrainAlgo train_algo_for(ScenarioAlgo algo) {
  return algo == ScenarioAlgo::kQAT ? TrainAlgo::kQAT : TrainAlgo::kQAVAT;
}

}  // namespace

const SplitDataset& Session::dataset(ModelKind kind) {
  auto it = datasets_.find(kind);
  if (it == datasets_.end()) {
    it = datasets_.emplace(kind, make_dataset_for(kind)).first;
  }
  return it->second;
}

TrainedModel Session::train_model(const ScenarioSpec& spec) {
  const SplitDataset& data = dataset(spec.model);
  const auto t0 = std::chrono::steady_clock::now();
  TrainedModel tm =
      spec.algo == ScenarioAlgo::kPTQVAT
          ? train_ptq_vat_cached(spec.model, spec.model_cfg, data, spec.train)
          : train_cached(spec.model, spec.model_cfg, train_algo_for(spec.algo),
                         data, spec.train);
  train_seconds_ += seconds_since(t0);
  if (tm.trained) ++trained_;
  if (tm.from_store) ++model_store_hits_;
  return tm;
}

ScenarioResult Session::run(const ScenarioSpec& spec) {
  ++scenarios_;
  ScenarioResult r;
  r.key = spec.key();

  const auto t0 = std::chrono::steady_clock::now();
  TrainedModel tm = train_model(spec);
  r.train_seconds = seconds_since(t0);
  r.trained = tm.trained;
  r.model_from_store = tm.from_store;
  r.clean_acc = tm.clean_test_acc;

  if (spec.deploy.enabled()) {
    const SplitDataset& data = dataset(spec.model);
    const SelfTuneConfig* st = spec.selftune_active() ? &spec.selftune : nullptr;
    const auto t1 = std::chrono::steady_clock::now();
    r.mc = with_eval_cache(
        r.key,
        [&] {
          return evaluate_under_variability(*tm.model, data.test, spec.deploy,
                                            spec.eval, st);
        },
        &r.eval_computed);
    r.eval_seconds = seconds_since(t1);
    eval_seconds_ += r.eval_seconds;
    if (r.eval_computed) {
      ++evals_computed_;
    } else {
      ++eval_cache_hits_;
    }
    r.mean_acc = r.mc.accuracy.mean;
  } else {
    // Clean-only scenario: the trained model's test accuracy is the
    // result (already cached with the model snapshot).
    r.mean_acc = r.clean_acc;
  }
  return r;
}

void Session::print_summary(const char* name) const {
  // The trailing backend token tells the three backends' timings apart in
  // archived bench logs (it names the active QAVAT_EVAL_BACKEND, which
  // default_eval_config applied to every scenario of this session).
  std::fprintf(
      stderr,
      "[qavat-session] %s: scenarios=%lld trained=%lld model_store_hits=%lld "
      "evals_computed=%lld eval_cache_hits=%lld train_s=%.2f eval_s=%.2f "
      "backend=%s\n",
      name, static_cast<long long>(scenarios_),
      static_cast<long long>(trained_),
      static_cast<long long>(model_store_hits_),
      static_cast<long long>(evals_computed_),
      static_cast<long long>(eval_cache_hits_), train_seconds_, eval_seconds_,
      to_string(eval_backend_from_env()));
}

}  // namespace qavat
