#include "eval/runner.h"

#include "eval/store.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace qavat {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TrainAlgo train_algo_for(ScenarioAlgo algo) {
  return algo == ScenarioAlgo::kQAT ? TrainAlgo::kQAT : TrainAlgo::kQAVAT;
}

// Advisory probe for the claim-aware scheduler: a spec is "blocked"
// when its FIRST unproduced claim unit has a live lease held elsewhere.
// Produced units are skipped (they will be store hits); the first
// unproduced, unclaimed unit makes the spec runnable — this process can
// contend for (or win) that claim immediately. Purely a heuristic for
// ordering local work: the work-claim protocol itself still arbitrates
// every producer, so a stale answer costs a wait, never a double train.
bool spec_blocked(const std::vector<ClaimUnitRef>& units) {
  for (const ClaimUnitRef& u : units) {
    if (store_has(u.bucket, u.key)) continue;
    return store_claim_busy(u.bucket, u.key);
  }
  return false;  // everything already produced: pure warm run
}

}  // namespace

const SplitDataset& Session::dataset(ModelKind kind) {
  auto it = datasets_.find(kind);
  if (it == datasets_.end()) {
    it = datasets_.emplace(kind, make_dataset_for(kind)).first;
  }
  return it->second;
}

TrainedModel Session::train_model(const ScenarioSpec& spec) {
  const SplitDataset& data = dataset(spec.model);
  const auto t0 = std::chrono::steady_clock::now();
  TrainedModel tm =
      spec.algo == ScenarioAlgo::kPTQVAT
          ? train_ptq_vat_cached(spec.model, spec.model_cfg, data, spec.train)
          : train_cached(spec.model, spec.model_cfg, train_algo_for(spec.algo),
                         data, spec.train);
  train_seconds_ += seconds_since(t0);
  if (tm.trained) ++trained_;
  if (tm.from_store) ++model_store_hits_;
  return tm;
}

ScenarioResult Session::run(const ScenarioSpec& spec) {
  ++scenarios_;
  const auto t0 = std::chrono::steady_clock::now();
  TrainedModel tm = train_model(spec);
  return finish_scenario(spec, std::move(tm), seconds_since(t0));
}

ScenarioResult Session::finish_scenario(const ScenarioSpec& spec,
                                        TrainedModel tm,
                                        double train_seconds) {
  ScenarioResult r;
  r.key = spec.key();
  r.train_seconds = train_seconds;
  r.trained = tm.trained;
  r.model_from_store = tm.from_store;
  r.clean_acc = tm.clean_test_acc;

  if (spec.deploy.enabled()) {
    const SplitDataset& data = dataset(spec.model);
    const SelfTuneConfig* st = spec.selftune_active() ? &spec.selftune : nullptr;
    const auto t1 = std::chrono::steady_clock::now();
    r.mc = with_eval_cache(
        r.key,
        [&] {
          return evaluate_under_variability(*tm.model, data.test, spec.deploy,
                                            spec.eval, st);
        },
        &r.eval_computed);
    r.eval_seconds = seconds_since(t1);
    eval_seconds_ += r.eval_seconds;
    if (r.eval_computed) {
      ++evals_computed_;
    } else {
      ++eval_cache_hits_;
    }
    r.mean_acc = r.mc.accuracy.mean;
  } else {
    // Clean-only scenario: the trained model's test accuracy is the
    // result (already cached with the model snapshot).
    r.mean_acc = r.clean_acc;
  }
  return r;
}

std::vector<ScenarioResult> Session::run_all(
    const std::vector<ScenarioSpec>& specs) {
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  if (specs.empty()) return results;

  // Resolve every dataset on this thread first: dataset() inserts into
  // the per-session map, and once fully populated both pipeline stages
  // only read it (concurrent map reads are safe; a concurrent insert is
  // not).
  for (const ScenarioSpec& spec : specs) dataset(spec.model);

  // Depth-1 lookahead queue between the stages: while this thread
  // evaluates scenario N (and writes its eval artifacts), the executor
  // trains scenario N+1. The single slot bounds lookahead, so at most
  // three trained models are alive at once (training / queued /
  // evaluating). The stages touch disjoint state — trainer: model
  // cache, store "models" bucket, train-side counters; consumer: eval
  // cache, store "evals" bucket, eval-side counters — so the handoff
  // mutex is the only synchronization needed.
  struct Trained {
    TrainedModel tm;
    double train_seconds = 0.0;
    std::exception_ptr error;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Trained> ready;
  bool abort = false;

  std::thread executor([&] {
    for (const ScenarioSpec& spec : specs) {
      Trained t;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        t.tm = train_model(spec);
      } catch (...) {
        t.error = std::current_exception();
      }
      t.train_seconds = seconds_since(t0);
      const bool stop_after = t.error != nullptr;
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return abort || ready.empty(); });
      if (abort) return;
      ready.push_back(std::move(t));
      cv.notify_all();
      // Sequential semantics: a failed training ends the run at that
      // scenario; nothing trains past it.
      if (stop_after) return;
    }
  });
  // Join the executor however this scope exits — an eval exception must
  // not leave a detached trainer running into a dead Session.
  struct Joiner {
    std::thread& th;
    std::mutex& mu;
    std::condition_variable& cv;
    bool& abort;
    ~Joiner() {
      {
        std::lock_guard<std::mutex> lk(mu);
        abort = true;
      }
      cv.notify_all();
      if (th.joinable()) th.join();
    }
  } joiner{executor, mu, cv, abort};

  for (const ScenarioSpec& spec : specs) {
    Trained t;
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return !ready.empty(); });
      t = std::move(ready.front());
      ready.pop_front();
      cv.notify_all();  // free the slot: the executor may push the next
    }
    if (t.error) std::rethrow_exception(t.error);
    ++scenarios_;
    results.push_back(finish_scenario(spec, std::move(t.tm), t.train_seconds));
  }
  return results;
}

std::vector<ClaimUnitRef> Session::claim_units(const ScenarioSpec& spec) {
  const SplitDataset& data = dataset(spec.model);
  std::vector<ClaimUnitRef> units;
  if (spec.algo == ScenarioAlgo::kPTQVAT) {
    units.push_back({"models", train_cache_key(spec.model, spec.model_cfg,
                                               "PTQVAT", data, spec.train)});
  } else {
    // Phase 1, always: the QAT pretrain unit, keyed with the noise
    // cleared — the same derivation train_cached applies.
    TrainConfig pre = spec.train;
    pre.train_noise = VariabilityConfig{};
    pre.n_variation_samples = 1;
    units.push_back({"models", train_cache_key(spec.model, spec.model_cfg,
                                               "QAT", data, pre)});
    // Phase 2 only when the spec actually fine-tunes; otherwise the
    // full key is a memory-only alias of the pretrain artifact.
    if (spec.algo == ScenarioAlgo::kQAVAT && spec.train.train_noise.enabled()) {
      units.push_back({"models", train_cache_key(spec.model, spec.model_cfg,
                                                 "QAVAT", data, spec.train)});
    }
  }
  if (spec.deploy.enabled()) units.push_back({"evals", spec.key()});
  return units;
}

std::vector<ScenarioResult> Session::run_manifest(const SweepManifest& manifest,
                                                  SweepSchedule* schedule) {
  const std::vector<ScenarioSpec>& specs = manifest.specs;
  std::vector<ScenarioResult> results(specs.size());
  SweepSchedule local;
  SweepSchedule& trace = schedule != nullptr ? *schedule : local;
  trace = SweepSchedule{};
  if (specs.empty()) return results;

  // Datasets up front (claim_units needs them anyway, and run() must
  // not race dataset() if a caller threads around this Session).
  for (const ScenarioSpec& spec : specs) dataset(spec.model);

  // Round-based greedy scheduler: run every pending spec whose next
  // unproduced claim unit is free, defer the busy ones, repeat. Only
  // when a whole round defers everything (all pending work is being
  // produced by other processes) does this process back off — and even
  // then it re-probes, because a peer publishing an artifact or
  // dropping a lease unblocks us with no notification channel.
  std::vector<index_t> pending(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pending[i] = static_cast<index_t>(i);
  }
  int backoff_attempt = 0;
  while (!pending.empty()) {
    std::vector<index_t> deferred;
    deferred.reserve(pending.size());
    for (const index_t idx : pending) {
      const ScenarioSpec& spec = specs[static_cast<std::size_t>(idx)];
      if (spec_blocked(claim_units(spec))) {
        ++trace.deferrals;
        deferred.push_back(idx);
        continue;
      }
      results[static_cast<std::size_t>(idx)] = run(spec);
      trace.completion_order.push_back(idx);
    }
    const bool progressed = deferred.size() < pending.size();
    pending = std::move(deferred);
    if (pending.empty()) break;
    if (!progressed) {
      ++trace.wait_rounds;
      store_claim_backoff_wait(backoff_attempt++);
    } else {
      backoff_attempt = 0;
    }
  }
  return results;
}

SessionCounters Session::counters() const {
  SessionCounters c;
  c.scenarios = scenarios_;
  c.trained = trained_;
  c.model_store_hits = model_store_hits_;
  c.evals_computed = evals_computed_;
  c.eval_cache_hits = eval_cache_hits_;
  c.train_seconds = train_seconds_;
  c.eval_seconds = eval_seconds_;
  return c;
}

void Session::print_summary(const char* name) const {
  // The trailing backend token tells the three backends' timings apart in
  // archived bench logs (it names the active QAVAT_EVAL_BACKEND, which
  // default_eval_config applied to every scenario of this session).
  // `trained` counts scenarios that ran any training; `train_runs` counts
  // the individual train() phases process-wide — the unit the work-claim
  // protocol deduplicates, so across N concurrent processes sharing one
  // cold store the train_runs SUM must equal a single-process cold run's
  // (the CI concurrent-sweep gate asserts exactly that).
  std::fprintf(
      stderr,
      "[qavat-session] %s: scenarios=%lld trained=%lld train_runs=%lld "
      "model_store_hits=%lld "
      "evals_computed=%lld eval_cache_hits=%lld train_s=%.2f eval_s=%.2f "
      "backend=%s\n",
      name, static_cast<long long>(scenarios_),
      static_cast<long long>(trained_),
      static_cast<long long>(training_runs()),
      static_cast<long long>(model_store_hits_),
      static_cast<long long>(evals_computed_),
      static_cast<long long>(eval_cache_hits_), train_seconds_, eval_seconds_,
      to_string(eval_backend_from_env()));
  // Store health companion line: the per-category counters that replaced
  // the single-shot write warning, plus the serialize-layer envelope
  // checksum verification counters. All zeros on a healthy run.
  const StoreStats ss = store_stats();
  const SerializeReadStats rs = serialize_read_stats();
  std::fprintf(
      stderr,
      "[qavat-store] %s: writes_failed=%lld loads_corrupt=%lld "
      "claims_reclaimed=%lld retrains_after_corruption=%lld tmp_swept=%lld "
      "faults_injected=%lld envelopes_verified=%lld envelopes_failed=%lld\n",
      name, ss.writes_failed, ss.loads_corrupt, ss.claims_reclaimed,
      ss.retrains_after_corruption, ss.tmp_swept, ss.faults_injected,
      rs.envelopes_verified, rs.envelopes_failed);
}

}  // namespace qavat
