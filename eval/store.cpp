#include "eval/store.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

#include "eval/experiment.h"  // fast_mode(): the budget namespace

namespace qavat {

namespace fs = std::filesystem;

namespace {

// Results are tiny text files; this cap only guards against reading a
// mislabeled giant file into memory.
constexpr std::uintmax_t kMaxDoublesFileBytes = 1u << 24;

std::string bucket_dir(const char* bucket) {
  std::string dir = store_root();
  dir += "/v" + std::to_string(kStoreSchemaVersion);
  dir += fast_mode() ? "/fast/" : "/full/";
  dir += bucket;
  return dir;
}

std::string artifact_path(const char* bucket, const std::string& key) {
  return bucket_dir(bucket) + "/" + store_key_filename(key);
}

void warn_write_failure(const std::string& path) {
  // Atomic: with pipelined sessions the trainer and consumer threads can
  // both hit an unwritable store; exchange keeps the warning single-shot
  // without a race.
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "qavat: artifact store write failed (%s); persistence is off "
               "for the unwritable paths (set QAVAT_STORE=0 to silence)\n",
               path.c_str());
}

// Publish `tmp` as `path` atomically; returns false (removing tmp) on
// failure. rename(2) replaces an existing destination in one step.
bool publish(const fs::path& tmp, const fs::path& path) {
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

// Temp-file path unique per process inside the destination directory
// (rename is only atomic within a filesystem).
fs::path tmp_path_for(const fs::path& path) {
  std::ostringstream os;
  os << path.string() << ".tmp." << ::getpid();
  return os.str();
}

}  // namespace

bool store_enabled() {
  const char* v = std::getenv("QAVAT_STORE");
  return v == nullptr || v[0] != '0';
}

std::string store_root() {
  const char* v = std::getenv("QAVAT_STORE_DIR");
  if (v != nullptr && v[0] != '\0') return v;
  return "artifacts/store";
}

std::string store_key_filename(const std::string& key) {
  // Keys are space-free by contract, but be defensive: map anything
  // outside [A-Za-z0-9._[]-] to '-' so a key can never traverse
  // directories, then cap the length (ext4 limit 255) with a stable
  // FNV-1a suffix disambiguating the truncation.
  std::string name;
  name.reserve(key.size());
  for (char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '[' || c == ']' || c == '-';
    name.push_back(safe ? c : '-');
  }
  constexpr std::size_t kMaxName = 200;
  if (name.size() > kMaxName || name != key) {
    char suffix[24];
    std::snprintf(suffix, sizeof(suffix), ".%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    if (name.size() > kMaxName) name.resize(kMaxName);
    name += suffix;
  }
  return name;
}

bool store_load_doubles(const char* bucket, const std::string& key,
                        std::vector<double>* out) {
  if (!store_enabled()) return false;
  const fs::path path = artifact_path(bucket, key);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size > kMaxDoublesFileBytes) return false;
  std::ifstream is(path);
  if (!is) return false;
  std::string tag;
  int version = 0;
  std::size_t n = 0;
  if (!(is >> tag >> version >> n) || tag != "qavat-doubles" ||
      version != kStoreSchemaVersion || n > (1u << 20)) {
    return false;
  }
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> values[i])) return false;
  }
  *out = std::move(values);
  return true;
}

bool store_save_doubles(const char* bucket, const std::string& key,
                        const std::vector<double>& values) {
  if (!store_enabled()) return false;
  const fs::path path = artifact_path(bucket, key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  const fs::path tmp = tmp_path_for(path);
  {
    std::ofstream os(tmp);
    if (!os) {
      warn_write_failure(path.string());
      return false;
    }
    os << "qavat-doubles " << kStoreSchemaVersion << " " << values.size()
       << "\n";
    char buf[40];
    for (double v : values) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      os << buf << "\n";
    }
    os.flush();
    if (!os) {
      warn_write_failure(path.string());
      fs::remove(tmp, ec);
      return false;
    }
  }
  if (!publish(tmp, path)) {
    warn_write_failure(path.string());
    return false;
  }
  return true;
}

bool store_load_state(const char* bucket, const std::string& key,
                      StateDict* out) {
  if (!store_enabled()) return false;
  std::ifstream is(artifact_path(bucket, key), std::ios::binary);
  if (!is) return false;
  return load_state_dict(is, out);
}

bool store_save_state(const char* bucket, const std::string& key,
                      const StateDict& sd) {
  if (!store_enabled()) return false;
  const fs::path path = artifact_path(bucket, key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  const fs::path tmp = tmp_path_for(path);
  {
    std::ofstream os(tmp, std::ios::binary);
    if (!os) {
      warn_write_failure(path.string());
      return false;
    }
    save_state_dict(os, sd);
    os.flush();
    if (!os) {
      warn_write_failure(path.string());
      fs::remove(tmp, ec);
      return false;
    }
  }
  if (!publish(tmp, path)) {
    warn_write_failure(path.string());
    return false;
  }
  return true;
}

void store_drop_all() {
  std::error_code ec;
  fs::remove_all(store_root() + "/v" + std::to_string(kStoreSchemaVersion),
                 ec);
}

}  // namespace qavat
