#include "eval/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <system_error>
#include <thread>
#include <vector>

#include "eval/experiment.h"  // fast_mode(): the budget namespace

namespace qavat {

namespace fs = std::filesystem;

namespace {

// Results are tiny text files; this cap only guards against reading a
// mislabeled giant file into memory.
constexpr std::uintmax_t kMaxDoublesFileBytes = 1u << 24;

// ------------------------------------------------------------ statistics

struct StatsImpl {
  std::atomic<long long> writes_failed{0};
  std::atomic<long long> loads_corrupt{0};
  std::atomic<long long> claims_reclaimed{0};
  std::atomic<long long> retrains_after_corruption{0};
  std::atomic<long long> tmp_swept{0};
  std::atomic<long long> faults_injected{0};
};

StatsImpl& stats() {
  static StatsImpl s;
  return s;
}

// Counter bump + single-shot stderr warning (the old warn_write_failure
// flag became the writes_failed counter; the 0->1 transition still
// warns so an unwritable store is loud even without a summary line).
void note_write_failure(const std::string& path) {
  if (stats().writes_failed.fetch_add(1) == 0) {
    std::fprintf(stderr,
                 "qavat: artifact store write failed (%s); persistence is off "
                 "for the unwritable paths (set QAVAT_STORE=0 to silence)\n",
                 path.c_str());
  }
}

// ------------------------------------------------------ fault injection

constexpr int kNumFaultKinds = 4;

struct ArmedFault {
  StoreFault kind;
  long long at = 1;    // fire on the at-th matching operation
  bool fired = false;  // each armed entry fires once
};

struct FaultState {
  std::mutex mu;
  bool parsed = false;
  std::vector<ArmedFault> armed;
  long long op_count[kNumFaultKinds] = {0, 0, 0, 0};
};

FaultState& fault_state() {
  static FaultState st;
  return st;
}

bool parse_fault_kind(const std::string& tok, StoreFault* kind) {
  if (tok == "kill_before_rename") *kind = StoreFault::kKillBeforeRename;
  else if (tok == "torn_write") *kind = StoreFault::kTornWrite;
  else if (tok == "enospc") *kind = StoreFault::kEnospc;
  else if (tok == "corrupt_read") *kind = StoreFault::kCorruptRead;
  else return false;
  return true;
}

// Parse QAVAT_STORE_FAULT under st.mu. Unknown tokens are skipped with a
// one-time warning (a typo must not silently disable the whole spec).
void parse_faults_locked(FaultState& st) {
  st.parsed = true;
  st.armed.clear();
  for (int i = 0; i < kNumFaultKinds; ++i) st.op_count[i] = 0;
  const char* v = std::getenv("QAVAT_STORE_FAULT");
  if (v == nullptr || v[0] == '\0') return;
  std::istringstream is(v);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    std::string tok = entry;
    long long at = 1;
    const std::size_t colon = entry.find(':');
    if (colon != std::string::npos) {
      tok = entry.substr(0, colon);
      at = std::strtoll(entry.c_str() + colon + 1, nullptr, 10);
      if (at < 1) at = 1;
    }
    ArmedFault f;
    if (!parse_fault_kind(tok, &f.kind)) {
      std::fprintf(stderr, "qavat: unknown QAVAT_STORE_FAULT kind '%s'\n",
                   tok.c_str());
      continue;
    }
    f.at = at;
    st.armed.push_back(f);
  }
}

// One potential fault site: counts the operation and reports whether an
// armed entry fires here.
bool fault_fire(StoreFault kind) {
  FaultState& st = fault_state();
  std::lock_guard<std::mutex> lk(st.mu);
  if (!st.parsed) parse_faults_locked(st);
  if (st.armed.empty()) return false;
  const long long n = ++st.op_count[static_cast<int>(kind)];
  for (ArmedFault& f : st.armed) {
    if (!f.fired && f.kind == kind && f.at == n) {
      f.fired = true;
      stats().faults_injected.fetch_add(1);
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------------- layout

std::string schema_root() {
  return store_root() + "/v" + std::to_string(kStoreSchemaVersion);
}

std::string bucket_dir(const char* bucket) {
  std::string dir = schema_root();
  dir += fast_mode() ? "/fast/" : "/full/";
  dir += bucket;
  return dir;
}

std::string artifact_path(const char* bucket, const std::string& key) {
  return bucket_dir(bucket) + "/" + store_key_filename(key);
}

// A maintenance file is store machinery, not an artifact: in-flight (or
// orphaned) tmp writes, claim leases, and reclaim-rename leftovers.
bool is_tmp_file(const fs::path& p) {
  return p.filename().string().find(".tmp.") != std::string::npos;
}
bool is_claim_file(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.size() >= 6 && (name.rfind(".claim") == name.size() - 6 ||
                              name.find(".claim.reclaim.") != std::string::npos);
}

// Age of a file in seconds via its mtime; negative when it vanished.
double file_age_seconds(const fs::path& p) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return -1.0;
  const auto now = fs::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

void quarantine_file(const fs::path& path) {
  static std::atomic<long long> seq{0};
  std::error_code ec;
  const fs::path qdir = store_quarantine_dir();
  fs::create_directories(qdir, ec);
  std::ostringstream name;
  name << path.filename().string() << "." << ::getpid() << "."
       << seq.fetch_add(1);
  fs::rename(path, qdir / name.str(), ec);
  // Cross-device or raced rename: removing the bad artifact still
  // guarantees it is never served again.
  if (ec) fs::remove(path, ec);
}

// Remove maintenance files older than min_age under `root`. Claims are
// only swept when `claims` is set (the opportunistic per-process sweep
// leaves lease arbitration to store_try_claim's reclaim path).
void sweep_maintenance_files(const fs::path& root, double min_age,
                             bool claims, long long* tmp_removed,
                             long long* claims_removed) {
  std::error_code ec;
  if (!fs::exists(root, ec)) return;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    const bool tmp = is_tmp_file(p);
    const bool claim = !tmp && claims && is_claim_file(p);
    if (!tmp && !claim) continue;
    const double age = file_age_seconds(p);
    if (age < 0.0 || age < min_age) continue;
    std::error_code rec;
    if (fs::remove(p, rec) && !rec) {
      if (tmp) {
        if (tmp_removed != nullptr) ++*tmp_removed;
        stats().tmp_swept.fetch_add(1);
      } else if (claims_removed != nullptr) {
        ++*claims_removed;
      }
    }
  }
}

// Once per process, at the first store operation: sweep tmp droppings a
// crashed writer left behind, skipping anything younger than the claim
// TTL (it may be a live writer's in-flight file).
void opportunistic_sweep() {
  static std::once_flag once;
  std::call_once(once, [] {
    sweep_maintenance_files(schema_root(), store_claim_ttl_seconds(),
                            /*claims=*/false, nullptr, nullptr);
  });
}

// ------------------------------------------------------------- write path

// Publish `tmp` as `path` atomically; returns false (removing tmp) on
// failure. rename(2) replaces an existing destination in one step.
bool publish(const fs::path& tmp, const fs::path& path) {
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

// Temp-file path unique per process inside the destination directory
// (rename is only atomic within a filesystem).
fs::path tmp_path_for(const fs::path& path) {
  std::ostringstream os;
  os << path.string() << ".tmp." << ::getpid();
  return os.str();
}

bool store_fsync_enabled() {
  const char* v = std::getenv("QAVAT_STORE_FSYNC");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void fsync_path(const fs::path& p) {
  const int fd = ::open(p.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

// Shared artifact writer: tmp file in the destination directory, all
// fault-injection points, optional durability (QAVAT_STORE_FSYNC=1:
// fsync the tmp before the rename and the directory after it, so a
// published artifact survives power loss — off by default to keep the
// warm path cheap), then the atomic publishing rename.
bool write_artifact(const fs::path& path, const std::string& bytes) {
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (fault_fire(StoreFault::kEnospc)) {
    note_write_failure(path.string());
    return false;
  }
  const fs::path tmp = tmp_path_for(path);
  std::size_t n = bytes.size();
  if (fault_fire(StoreFault::kTornWrite)) n /= 2;
  {
    std::ofstream os(tmp, std::ios::binary);
    if (!os) {
      note_write_failure(path.string());
      return false;
    }
    os.write(bytes.data(), static_cast<std::streamsize>(n));
    os.flush();
    if (!os) {
      note_write_failure(path.string());
      fs::remove(tmp, ec);
      return false;
    }
  }
  if (store_fsync_enabled()) fsync_path(tmp);
  if (fault_fire(StoreFault::kKillBeforeRename)) ::_exit(kFaultKillExitCode);
  if (!publish(tmp, path)) {
    note_write_failure(path.string());
    return false;
  }
  if (store_fsync_enabled()) fsync_path(path.parent_path());
  return true;
}

// -------------------------------------------------------------- read path

// Read a whole artifact into memory (the corrupt_read fault flips one
// byte here, downstream of the real file). False = missing/unreadable.
bool read_artifact(const fs::path& path, std::string* bytes) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *bytes = ss.str();
  if (fault_fire(StoreFault::kCorruptRead) && !bytes->empty()) {
    (*bytes)[bytes->size() / 2] ^= 0x5a;
  }
  return true;
}

bool parse_doubles(const std::string& bytes, std::vector<double>* out) {
  std::istringstream is(bytes);
  std::string tag;
  int version = 0;
  std::size_t n = 0;
  if (!(is >> tag >> version >> n) || tag != "qavat-doubles" ||
      version != kStoreSchemaVersion || n > (1u << 20)) {
    return false;
  }
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> values[i])) return false;
  }
  *out = std::move(values);
  return true;
}

void set_outcome(StoreLoadOutcome* outcome, StoreLoadOutcome v) {
  if (outcome != nullptr) *outcome = v;
}

// Corrupt-load epilogue shared by both load paths: count, quarantine,
// report.
bool reject_corrupt(const fs::path& path, StoreLoadOutcome* outcome) {
  stats().loads_corrupt.fetch_add(1);
  quarantine_file(path);
  set_outcome(outcome, StoreLoadOutcome::kCorrupt);
  return false;
}

}  // namespace

bool store_enabled() {
  const char* v = std::getenv("QAVAT_STORE");
  return v == nullptr || v[0] != '0';
}

std::string store_root() {
  const char* v = std::getenv("QAVAT_STORE_DIR");
  if (v != nullptr && v[0] != '\0') return v;
  return "artifacts/store";
}

std::string store_quarantine_dir() { return store_root() + "/quarantine"; }

std::string store_key_filename(const std::string& key) {
  // Keys are space-free by contract, but be defensive: map anything
  // outside [A-Za-z0-9._[]-] to '-' so a key can never traverse
  // directories, then cap the length (ext4 limit 255) with a stable
  // FNV-1a suffix disambiguating the truncation.
  std::string name;
  name.reserve(key.size());
  for (char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '[' || c == ']' || c == '-';
    name.push_back(safe ? c : '-');
  }
  constexpr std::size_t kMaxName = 200;
  if (name.size() > kMaxName || name != key) {
    char suffix[24];
    std::snprintf(suffix, sizeof(suffix), ".%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    if (name.size() > kMaxName) name.resize(kMaxName);
    name += suffix;
  }
  return name;
}

bool store_load_doubles(const char* bucket, const std::string& key,
                        std::vector<double>* out, StoreLoadOutcome* outcome) {
  set_outcome(outcome, StoreLoadOutcome::kMiss);
  if (!store_enabled()) return false;
  opportunistic_sweep();
  const fs::path path = artifact_path(bucket, key);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return false;
  if (size > kMaxDoublesFileBytes) return reject_corrupt(path, outcome);
  std::string bytes;
  if (!read_artifact(path, &bytes)) return false;
  if (!parse_doubles(bytes, out)) return reject_corrupt(path, outcome);
  set_outcome(outcome, StoreLoadOutcome::kHit);
  return true;
}

bool store_save_doubles(const char* bucket, const std::string& key,
                        const std::vector<double>& values) {
  if (!store_enabled()) return false;
  opportunistic_sweep();
  std::ostringstream os;
  os << "qavat-doubles " << kStoreSchemaVersion << " " << values.size()
     << "\n";
  char buf[40];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf << "\n";
  }
  return write_artifact(artifact_path(bucket, key), os.str());
}

bool store_load_state(const char* bucket, const std::string& key,
                      StateDict* out, StoreLoadOutcome* outcome) {
  set_outcome(outcome, StoreLoadOutcome::kMiss);
  if (!store_enabled()) return false;
  opportunistic_sweep();
  const fs::path path = artifact_path(bucket, key);
  std::string bytes;
  if (!read_artifact(path, &bytes)) return false;
  std::istringstream is(bytes);
  if (!load_state_dict(is, out)) return reject_corrupt(path, outcome);
  set_outcome(outcome, StoreLoadOutcome::kHit);
  return true;
}

bool store_save_state(const char* bucket, const std::string& key,
                      const StateDict& sd) {
  if (!store_enabled()) return false;
  opportunistic_sweep();
  std::ostringstream os;
  save_state_dict(os, sd);
  return write_artifact(artifact_path(bucket, key), os.str());
}

bool store_has(const char* bucket, const std::string& key) {
  if (!store_enabled()) return false;
  std::error_code ec;
  return fs::exists(artifact_path(bucket, key), ec) && !ec;
}

bool store_claim_busy(const char* bucket, const std::string& key) {
  if (!store_enabled()) return false;
  const fs::path path = artifact_path(bucket, key) + ".claim";
  const double age = file_age_seconds(path);
  return age >= 0.0 && age < store_claim_ttl_seconds();
}

void store_drop_all() {
  std::error_code ec;
  fs::remove_all(schema_root(), ec);
}

// ------------------------------------------------------------ statistics

StoreStats store_stats() {
  StoreStats s;
  s.writes_failed = stats().writes_failed.load();
  s.loads_corrupt = stats().loads_corrupt.load();
  s.claims_reclaimed = stats().claims_reclaimed.load();
  s.retrains_after_corruption = stats().retrains_after_corruption.load();
  s.tmp_swept = stats().tmp_swept.load();
  s.faults_injected = stats().faults_injected.load();
  return s;
}

void store_stats_reset() {
  stats().writes_failed.store(0);
  stats().loads_corrupt.store(0);
  stats().claims_reclaimed.store(0);
  stats().retrains_after_corruption.store(0);
  stats().tmp_swept.store(0);
  stats().faults_injected.store(0);
}

void store_note_retrain_after_corruption() {
  stats().retrains_after_corruption.fetch_add(1);
}

// ------------------------------------------------- work-claim protocol

double store_claim_ttl_seconds() {
  const char* v = std::getenv("QAVAT_CLAIM_TTL_S");
  if (v != nullptr && v[0] != '\0') {
    char* end = nullptr;
    const double d = std::strtod(v, &end);
    if (end != v && d >= 0.0) return d;
  }
  return 120.0;
}

long long store_claim_backoff_ms() {
  const char* v = std::getenv("QAVAT_CLAIM_BACKOFF_MS");
  if (v != nullptr && v[0] != '\0') {
    const long long n = std::strtoll(v, nullptr, 10);
    if (n >= 0) return n;
  }
  return 25;
}

struct StoreClaim::Impl {
  fs::path path;
  std::string token;          // identifies this lease in the file content
  std::atomic<bool> lost{false};  // claim file vanished (we were reclaimed)
  long long beat = 0;
  std::thread beater;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;

  // Claim-file content: pid, host, token, heartbeat count.
  std::string render() const {
    char host[256] = "?";
    ::gethostname(host, sizeof(host) - 1);
    std::ostringstream os;
    os << "qavat-claim " << ::getpid() << " " << host << " " << token << " "
       << beat << "\n";
    return os.str();
  }

  // Does the claim file at `path` still carry this lease's token?
  bool token_matches() const {
    std::ifstream is(path);
    std::string tag, pid, host, tok;
    return static_cast<bool>(is >> tag >> pid >> host >> tok) &&
           tok == token;
  }

  enum class Create {
    kOk,      // file created and written: the lease is ours
    kExists,  // another claim file is already there (EEXIST)
    kError,   // claims cannot be created here (EACCES, ENOSPC, ...)
  };

  // Atomically create the claim file. A write failure after a
  // successful O_CREAT|O_EXCL (e.g. ENOSPC) unlinks the file again: a
  // half-written claim with no heartbeater would otherwise block every
  // claimant — including this process — for a full TTL per round.
  Create create_content() {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) return errno == EEXIST ? Create::kExists : Create::kError;
    const std::string s = render();
    const ssize_t written = ::write(fd, s.data(), s.size());
    ::close(fd);
    if (written != static_cast<ssize_t>(s.size())) {
      std::error_code ec;
      fs::remove(path, ec);
      return Create::kError;
    }
    return Create::kOk;
  }

  // Heartbeat refresh: rewrite the claim content (and thereby its
  // mtime) — but only after verifying the file still carries our
  // token. A holder stalled past its TTL may have been reclaimed and a
  // new lease created at the same path; truncating that (or recreating
  // a vanished file via O_CREAT) would resurrect a lease another
  // process now legitimately holds. On mismatch mark ourselves lost.
  void refresh_content() {
    if (!token_matches()) {
      lost.store(true);
      return;
    }
    const int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC);
    if (fd < 0) {
      lost.store(true);
      return;
    }
    const std::string s = render();
    const ssize_t written = ::write(fd, s.data(), s.size());
    ::close(fd);
    // A short write garbles our own token; the next beat then marks
    // the lease lost — fail-soft to duplicate work, never a hang.
    (void)written;
  }

  void start_beater() {
    beater = std::thread([this] {
      const double ttl = store_claim_ttl_seconds();
      double period = ttl / 3.0;
      if (period < 0.05) period = 0.05;
      if (period > 10.0) period = 10.0;
      std::unique_lock<std::mutex> lk(mu);
      while (!cv.wait_for(lk, std::chrono::duration<double>(period),
                          [this] { return stop; })) {
        if (lost.load()) return;
        ++beat;
        refresh_content();
      }
    });
  }

  void stop_beater() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    cv.notify_all();
    if (beater.joinable()) beater.join();
  }
};

StoreClaim::StoreClaim() = default;
StoreClaim::~StoreClaim() { release(); }
StoreClaim::StoreClaim(StoreClaim&& other) noexcept = default;
StoreClaim& StoreClaim::operator=(StoreClaim&& other) noexcept {
  if (this != &other) {
    release();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

void StoreClaim::release() {
  if (impl_ == nullptr) return;
  impl_->stop_beater();
  if (!impl_->lost.load()) {
    // Unlink only our own lease: after a stale reclaim another process
    // may have created a fresh claim at the same path. The
    // verify-then-remove pair is not atomic — a reclaim landing in
    // between deletes the successor's fresh lease — but the window is
    // microseconds, only reachable for a holder releasing right at the
    // TTL boundary (heartbeats keep a live lease far from stale), and
    // the worst case is one duplicated training whose publish is
    // idempotent. Tolerated rather than widening the protocol.
    if (impl_->token_matches()) {
      std::error_code ec;
      fs::remove(impl_->path, ec);
    }
  }
  impl_.reset();
}

StoreClaim store_try_claim(const char* bucket, const std::string& key,
                           StoreClaimStatus* status) {
  StoreClaim claim;
  StoreClaimStatus st = StoreClaimStatus::kBusy;
  if (!store_enabled()) {
    if (status != nullptr) *status = st;
    return claim;
  }
  opportunistic_sweep();
  const fs::path path = artifact_path(bucket, key) + ".claim";
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);

  // Token unique enough across the fleet: pid + a process-local counter
  // + steady-clock ticks (two processes can share a pid across hosts,
  // but not a tick count at nanosecond resolution in practice).
  static std::atomic<long long> token_seq{0};
  std::ostringstream tok;
  tok << std::hex << ::getpid() << "-" << token_seq.fetch_add(1) << "-"
      << std::chrono::steady_clock::now().time_since_epoch().count();

  for (int attempt = 0; attempt < 4; ++attempt) {
    // Not make_unique: Impl is private to StoreClaim and only this
    // friend function may lexically contain the new-expression.
    std::unique_ptr<StoreClaim::Impl> impl(new StoreClaim::Impl);
    impl->path = path;
    impl->token = tok.str();
    const StoreClaim::Impl::Create created = impl->create_content();
    if (created == StoreClaim::Impl::Create::kOk) {
      impl->start_beater();
      claim.impl_ = std::move(impl);
      st = StoreClaimStatus::kAcquired;
      break;
    }
    if (created == StoreClaim::Impl::Create::kError) {
      // Not EEXIST: the store cannot host claim files at all
      // (read-only root, EACCES, persistent ENOSPC). Report
      // kUnavailable so waiters fall back to computing locally instead
      // of spinning forever — the fail-soft contract.
      st = StoreClaimStatus::kUnavailable;
      break;
    }
    // EEXIST: is the existing lease stale? A live holder's heartbeat
    // keeps the mtime younger than the TTL.
    const double age = file_age_seconds(path);
    if (age < 0.0) continue;  // vanished between probes: retry create
    if (age < store_claim_ttl_seconds()) break;  // live holder: kBusy
    // Reclaim: atomically steal the stale file via rename, so exactly
    // one of several racing reclaimers wins; then retry the create.
    fs::path steal = path;
    steal += ".reclaim." + std::to_string(::getpid());
    fs::rename(path, steal, ec);
    if (!ec) {
      fs::remove(steal, ec);
      stats().claims_reclaimed.fetch_add(1);
    } else if (ec != std::errc::no_such_file_or_directory) {
      // Losing the reclaim race reads ENOENT; anything else means the
      // stale lease can never be cleared from here (read-only root) —
      // waiting on it would hang every claimant forever.
      st = StoreClaimStatus::kUnavailable;
      break;
    }
  }
  // Attempt exhaustion (repeated vanish/reclaim races) stays kBusy:
  // others are demonstrably making progress on this key.
  if (status != nullptr) *status = st;
  return claim;
}

void store_claim_backoff_wait(int attempt) {
  long long ms = store_claim_backoff_ms();
  if (ms < 1) ms = 1;
  const int shift = attempt < 6 ? attempt : 6;
  ms <<= shift;
  if (ms > 2000) ms = 2000;
  // ±25% jitter from a per-process LCG: waiters across a fleet must not
  // re-probe in lockstep.
  static std::atomic<unsigned> state{
      static_cast<unsigned>(::getpid()) * 2654435761u};
  unsigned s = state.fetch_add(1);
  s = s * 1103515245u + 12345u;
  ms = ms * 3 / 4 + static_cast<long long>(s % (ms / 2 + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void store_fault_reload() {
  FaultState& st = fault_state();
  std::lock_guard<std::mutex> lk(st.mu);
  parse_faults_locked(st);
}

// ---------------------------------------------------------- maintenance

StoreGcResult store_gc(double min_age_s, bool evict_quarantine) {
  StoreGcResult res;
  sweep_maintenance_files(schema_root(), min_age_s, /*claims=*/true,
                          &res.tmp_removed, &res.claims_removed);
  if (evict_quarantine) {
    std::error_code ec;
    const fs::path qdir = store_quarantine_dir();
    if (fs::exists(qdir, ec)) {
      for (auto it = fs::directory_iterator(qdir, ec);
           !ec && it != fs::directory_iterator(); it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const double age = file_age_seconds(it->path());
        if (age < 0.0 || age < min_age_s) continue;
        std::error_code rec;
        if (fs::remove(it->path(), rec) && !rec) ++res.quarantine_removed;
      }
    }
  }
  return res;
}

StoreVerifyResult store_verify_all(bool quarantine_bad) {
  StoreVerifyResult res;
  std::error_code ec;
  const fs::path root = schema_root();
  if (!fs::exists(root, ec)) return res;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (is_tmp_file(p) || is_claim_file(p)) continue;
    std::string bytes;
    bool ok = read_artifact(p, &bytes);
    if (ok) {
      // Sniff the format from the leading bytes: state-dict envelopes
      // start with the "QVSD" magic (tensors "QVTN"), double vectors
      // with the "qavat-doubles" header line.
      if (bytes.rfind("QVSD", 0) == 0) {
        StateDict sd;
        std::istringstream is(bytes);
        ok = load_state_dict(is, &sd);
      } else if (bytes.rfind("QVTN", 0) == 0) {
        Tensor t;
        std::istringstream is(bytes);
        ok = load_tensor(is, &t);
      } else if (bytes.rfind("qavat-doubles", 0) == 0) {
        std::vector<double> v;
        ok = parse_doubles(bytes, &v);
      } else {
        ok = false;
      }
    }
    if (ok) {
      ++res.ok;
    } else {
      ++res.corrupt;
      res.corrupt_paths.push_back(p.string());
      if (quarantine_bad) {
        stats().loads_corrupt.fetch_add(1);
        quarantine_file(p);
      }
    }
  }
  return res;
}

long long store_evict_older_than(double seconds) {
  long long removed = 0;
  std::error_code ec;
  const fs::path root = schema_root();
  if (!fs::exists(root, ec)) return removed;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (is_tmp_file(p) || is_claim_file(p)) continue;
    const double age = file_age_seconds(p);
    if (age < 0.0 || age < seconds) continue;
    std::error_code rec;
    if (fs::remove(p, rec) && !rec) ++removed;
  }
  return removed;
}

}  // namespace qavat
