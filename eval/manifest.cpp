#include "eval/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace qavat {

namespace {

// ------------------------------------------------------------- encoding

// The document is deliberately line-oriented — header, one spec per
// line, closing line — so campaign edits show up as one-line diffs:
//   {"manifest_schema":1,"name":"table1","specs":[
//   {...spec 0...},
//   {...spec 1...}
//   ]}
std::string encode(const SweepManifest& m) {
  std::string o = "{\"manifest_schema\":";
  o += std::to_string(kManifestSchemaVersion);
  o += ",\"name\":\"";
  o += m.name;
  o += "\",\"specs\":[";
  for (std::size_t i = 0; i < m.specs.size(); ++i) {
    o += '\n';
    o += m.specs[i].to_json();
    if (i + 1 < m.specs.size()) o += ',';
  }
  o += "\n]}";
  return o;
}

// ------------------------------------------------------------- decoding
//
// The manifest layer has its own top-level scanner instead of extending
// scenario.cpp's Jv parser with arrays: the only structure here is one
// object holding two scalars and an array of spec objects, and each
// element must be handed to ScenarioSpec::from_json as TEXT anyway (so
// its per-field validation owns the inside of the braces). Specs never
// contain arrays or string escapes (to_json emits neither), which makes
// element extraction a brace count with in-string tracking.

void skip_ws(const char*& p) {
  while (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r') ++p;
}

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr && error->empty()) *error = what;
  return false;
}

bool scan_string(const char*& p, std::string* out, std::string* error) {
  skip_ws(p);
  if (*p != '"') return fail(error, "malformed JSON: expected a string");
  ++p;
  out->clear();
  while (*p != '\0' && *p != '"') {
    if (*p == '\\') {
      return fail(error, "malformed JSON: string escapes unsupported");
    }
    out->push_back(*p++);
  }
  if (*p != '"') return fail(error, "malformed JSON: unterminated string");
  ++p;
  return true;
}

// Extract one balanced {...} object as raw text, tracking strings so a
// brace inside a token can never derail the count.
bool scan_object_text(const char*& p, std::string* out, std::string* error) {
  skip_ws(p);
  if (*p != '{') return fail(error, "malformed JSON: expected an object");
  const char* start = p;
  int depth = 0;
  bool in_string = false;
  for (; *p != '\0'; ++p) {
    const char c = *p;
    if (in_string) {
      if (c == '\\') {
        return fail(error, "malformed JSON: string escapes unsupported");
      }
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        ++p;
        out->assign(start, static_cast<std::size_t>(p - start));
        return true;
      }
    }
  }
  return fail(error, "malformed JSON: unterminated object");
}

}  // namespace

std::string SweepManifest::to_json() const { return encode(*this); }

bool SweepManifest::from_json(const std::string& text, SweepManifest* out,
                              std::string* error) {
  if (error != nullptr) error->clear();
  const char* p = text.c_str();
  skip_ws(p);
  if (*p != '{') return fail(error, "malformed JSON: expected an object");
  ++p;

  SweepManifest m;
  bool saw_schema = false;
  bool saw_specs = false;
  skip_ws(p);
  if (*p == '}') {
    ++p;
  } else {
    while (true) {
      std::string key;
      if (!scan_string(p, &key, error)) return false;
      skip_ws(p);
      if (*p != ':') return fail(error, "malformed JSON: expected ':'");
      ++p;
      skip_ws(p);
      if (key == "manifest_schema") {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p) {
          return fail(error, "manifest_schema: expected an integer");
        }
        if (v != kManifestSchemaVersion) {
          return fail(error,
                      "manifest_schema: version mismatch: expected " +
                          std::to_string(kManifestSchemaVersion) + ", got " +
                          std::string(p, static_cast<std::size_t>(end - p)));
        }
        p = end;
        saw_schema = true;
      } else if (key == "name") {
        if (!scan_string(p, &m.name, error)) {
          return fail(error, "name: expected a string");
        }
      } else if (key == "specs") {
        if (*p != '[') return fail(error, "specs: expected an array");
        ++p;
        skip_ws(p);
        if (*p == ']') {
          ++p;
        } else {
          while (true) {
            std::string doc;
            std::string spec_err;
            ScenarioSpec spec;
            const std::size_t idx = m.specs.size();
            if (!scan_object_text(p, &doc, error)) {
              return fail(error, "specs[" + std::to_string(idx) +
                                     "]: expected an object");
            }
            if (!ScenarioSpec::from_json(doc, &spec, &spec_err)) {
              return fail(error,
                          "specs[" + std::to_string(idx) + "]: " + spec_err);
            }
            m.specs.push_back(std::move(spec));
            skip_ws(p);
            if (*p == ',') {
              ++p;
              continue;
            }
            if (*p == ']') {
              ++p;
              break;
            }
            return fail(error, "malformed JSON: expected ',' or ']'");
          }
        }
        saw_specs = true;
      } else {
        return fail(error, "unknown manifest field '" + key + "'");
      }
      skip_ws(p);
      if (*p == ',') {
        ++p;
        skip_ws(p);
        continue;
      }
      if (*p == '}') {
        ++p;
        break;
      }
      return fail(error, "malformed JSON: expected ',' or '}'");
    }
  }
  skip_ws(p);
  if (*p != '\0') return fail(error, "malformed JSON (trailing characters)");
  if (!saw_schema) return fail(error, "manifest_schema: missing");
  if (!saw_specs) return fail(error, "specs: missing");

  *out = std::move(m);
  return true;
}

bool SweepManifest::save(const std::string& path, std::string* error) const {
  if (error != nullptr) error->clear();
  // tmp + rename so a crashed emit never leaves a torn manifest where a
  // scheduler might pick it up (same discipline as the artifact store).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return fail(error, "cannot open '" + tmp + "' for write");
  const std::string doc = to_json() + "\n";
  const bool wrote =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return fail(error, "write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(error, "rename to '" + path + "' failed");
  }
  return true;
}

bool SweepManifest::load(const std::string& path, SweepManifest* out,
                         std::string* error) {
  if (error != nullptr) error->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(error, "cannot open '" + path + "'");
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return fail(error, "read of '" + path + "' failed");
  std::string parse_err;
  if (!from_json(text, out, &parse_err)) {
    return fail(error, path + ": " + parse_err);
  }
  return true;
}

std::vector<SweepManifest> shard_manifest(const SweepManifest& m, int k) {
  if (k < 1) k = 1;
  std::vector<SweepManifest> shards(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    shards[static_cast<std::size_t>(i)].name = m.name + ".shard" +
                                               std::to_string(i) + "of" +
                                               std::to_string(k);
  }
  for (std::size_t s = 0; s < m.specs.size(); ++s) {
    shards[s % static_cast<std::size_t>(k)].specs.push_back(m.specs[s]);
  }
  return shards;
}

// ------------------------------------------------------- built-in grids

namespace {

// The bench_table1 Table-I grid, in its exact nested order (rows, then
// sigma, then algorithm) — bench_table1 itself consumes this manifest,
// so its printed table stays byte-identical to the historical spec loop.
SweepManifest make_table1() {
  SweepManifest m;
  m.name = "table1";
  const VarianceModel vm = VarianceModel::kLayerFixed;
  struct Row {
    ModelKind kind;
    index_t a_bits, w_bits;
  };
  const Row rows[] = {
      {ModelKind::kResNet18s, 4, 2}, {ModelKind::kResNet18s, 8, 4},
      {ModelKind::kVGG11s, 4, 2},    {ModelKind::kVGG11s, 8, 4},
      {ModelKind::kLeNet5s, 2, 2},
  };
  const ScenarioAlgo algos[] = {ScenarioAlgo::kPTQVAT, ScenarioAlgo::kQAT,
                                ScenarioAlgo::kQAVAT};
  for (const Row& row : rows) {
    for (double sigma : {0.1, 0.5}) {
      for (ScenarioAlgo algo : algos) {
        m.specs.push_back(ScenarioSpec::within(row.kind, row.a_bits,
                                               row.w_bits, algo, vm, sigma));
      }
    }
  }
  return m;
}

// bench_sweep's contention workload: one model kind, QAVAT, four sigma
// points of weight-proportional within-chip noise — small enough for CI
// races, distinct enough that every spec is its own claim unit.
SweepManifest make_sweep_sigma() {
  SweepManifest m;
  m.name = "sweep_sigma";
  for (double sigma : {0.1, 0.2, 0.3, 0.4}) {
    m.specs.push_back(ScenarioSpec::within(ModelKind::kLeNet5s, 4, 4,
                                           ScenarioAlgo::kQAVAT,
                                           VarianceModel::kWeightProportional,
                                           sigma));
  }
  return m;
}

}  // namespace

std::vector<std::string> builtin_manifest_names() {
  return {"table1", "sweep_sigma"};
}

bool builtin_manifest(const std::string& name, SweepManifest* out) {
  if (name == "table1") {
    *out = make_table1();
    return true;
  }
  if (name == "sweep_sigma") {
    *out = make_sweep_sigma();
    return true;
  }
  return false;
}

}  // namespace qavat
