// Scenario runner: the one entry point benches use. A Session executes
// declarative ScenarioSpecs — resolve the workload dataset (cached per
// model kind), train through the store-backed model cache, Monte-Carlo
// evaluate through the store-backed result cache — and returns a
// ScenarioResult carrying the numbers plus provenance (what was actually
// computed vs loaded) and timing. Deterministic: a warm session run
// reproduces a cold run's numbers bit-identically (DESIGN.md §11), so
// the provenance/timing channel is the only part that may differ —
// benches print it to stderr, keeping stdout byte-stable.
#pragma once

#include <map>
#include <vector>

#include "eval/experiment.h"
#include "eval/manifest.h"
#include "eval/scenario.h"

namespace qavat {

/// Everything Session::run produces for one scenario: accuracies,
/// Monte-Carlo stats, provenance and timing.
struct ScenarioResult {
  std::string key;          ///< the spec's canonical cache/store key
  double clean_acc = 0.0;   ///< noise-free test accuracy of the model
  double mean_acc = 0.0;    ///< mc.accuracy.mean, or clean_acc for a
                            ///< clean-only spec (deploy noise disabled)
  EvalStats mc;             ///< Monte-Carlo stats (n_chips 0 if clean-only)
  bool trained = false;         ///< training actually ran during this call
  bool model_from_store = false;  ///< model loaded from the disk store
  bool eval_computed = false;   ///< MC eval ran (vs memory/store hit)
  double train_seconds = 0.0;   ///< wall time in the training entry point
  double eval_seconds = 0.0;    ///< wall time in the evaluation entry point
};

/// Snapshot of a Session's provenance counters (the numbers
/// print_summary writes to stderr), exposed so schedulers and tests can
/// assert aggregation without scraping the log line. train_runs lives in
/// eval/experiment.h (training_runs()) because it is process-wide, not
/// per-session.
struct SessionCounters {
  index_t scenarios = 0;        ///< run()/run_all units completed
  index_t trained = 0;          ///< scenarios that ran any train() phase
  index_t model_store_hits = 0; ///< models loaded from the disk store
  index_t evals_computed = 0;   ///< Monte-Carlo evals actually executed
  index_t eval_cache_hits = 0;  ///< evals served from memory/store
  double train_seconds = 0.0;   ///< wall time in training entry points
  double eval_seconds = 0.0;    ///< wall time in evaluation entry points
};

/// One work-claim unit of a scenario: the (store bucket, canonical key)
/// pair the work-claim protocol serializes producers on. The scheduler
/// probes these to decide whether another process is already producing
/// part of a scenario.
struct ClaimUnitRef {
  const char* bucket;  ///< store bucket name ("models" or "evals")
  std::string key;     ///< canonical artifact key within the bucket
};

/// Trace of one run_manifest execution, for tests and --dry-run
/// introspection of the claim-aware scheduler.
struct SweepSchedule {
  std::vector<index_t> completion_order;  ///< spec indices, in the order
                                          ///< they actually executed
  index_t deferrals = 0;   ///< times a busy unit made the scheduler skip
                           ///< a spec and move on within a round
  index_t wait_rounds = 0; ///< rounds where every pending spec was busy
                           ///< and the scheduler had to back off
};

/// Executes ScenarioSpecs against process-wide caches and the artifact
/// store, memoizing datasets per model kind and aggregating provenance
/// counters across every run() — one Session per bench binary.
class Session {
 public:
  /// Train (through the cache/store) and evaluate one scenario.
  ScenarioResult run(const ScenarioSpec& spec);

  /// Pipelined batch execution: a background executor thread trains
  /// scenario N+1 (model cache + store "models" bucket) while the
  /// calling thread Monte-Carlo evaluates scenario N and writes its
  /// eval artifacts — the two stages touch disjoint caches/counters, so
  /// overlap changes wall clock only. Results return in spec order and
  /// carry the same numbers, provenance and timing a sequential run()
  /// loop would produce (every stage is deterministic; a warm store
  /// still yields byte-identical tables). A training failure surfaces
  /// as the failing scenario's exception at its position in the order,
  /// after the executor has drained; nothing runs past it.
  std::vector<ScenarioResult> run_all(const std::vector<ScenarioSpec>& specs);

  /// Claim-aware batch execution over a manifest: results return in
  /// MANIFEST order with the same numbers and provenance a sequential
  /// run() loop would produce, but the execution order is dynamic —
  /// when a spec's next unproduced claim unit is held by another
  /// process (live .claim lease), the scheduler defers that spec and
  /// moves on to the next runnable one instead of blocking in the
  /// claim-wait loop; it only backs off (store_claim_backoff_wait) when
  /// every pending spec is busy. Exactly-once training across processes
  /// is untouched: the probe is advisory, and the underlying work-claim
  /// protocol still arbitrates every producer — the scheduler merely
  /// reorders local work so co-operating sweepers drain disjoint units
  /// first. With the store disabled, degenerates to a sequential run()
  /// loop. `schedule` (optional) receives the dynamic execution trace.
  /// A scenario failure propagates immediately (the failing spec's
  /// position in the dynamic order, not the manifest order).
  std::vector<ScenarioResult> run_manifest(const SweepManifest& manifest,
                                           SweepSchedule* schedule = nullptr);

  /// The work-claim units run(spec) would produce, in production order:
  /// the QAT pretrain model (or the PTQ-VAT model), the QAVAT fine-tune
  /// model when the spec fine-tunes, then the Monte-Carlo eval when
  /// deploy noise is enabled. Mirrors the key derivation inside
  /// eval/experiment.cpp; used by the scheduler and --dry-run to probe
  /// artifact/claim state non-destructively.
  std::vector<ClaimUnitRef> claim_units(const ScenarioSpec& spec);

  /// This session's provenance counters so far (run + run_all +
  /// run_manifest + train_model all aggregate into the same totals).
  SessionCounters counters() const;

  /// Just the (cached/store-backed) trained model of a scenario, for
  /// benches that drive a custom evaluation loop (drift, equivalence).
  /// Counts toward the session's provenance totals.
  TrainedModel train_model(const ScenarioSpec& spec);

  /// The workload dataset for `kind` (fast-mode-sized), built once per
  /// session.
  const SplitDataset& dataset(ModelKind kind);

  /// Two machine-greppable lines on stderr: the provenance summary, e.g.
  /// `[qavat-session] bench: scenarios=30 trained=0 train_runs=0
  /// model_store_hits=30 evals_computed=0 eval_cache_hits=30 train_s=0.00
  /// eval_s=0.00 backend=weight_domain` (train_runs is the process-wide
  /// train() phase count the work-claim protocol deduplicates across
  /// concurrent processes), and the `[qavat-store]` health counters
  /// (writes_failed, loads_corrupt, claims_reclaimed,
  /// retrains_after_corruption, tmp_swept, faults_injected, plus the
  /// serialize-layer envelope checksum counters). The CI warm-store gate
  /// asserts `trained=0`/`evals_computed=0`; the concurrent-sweep gate
  /// asserts the train_runs sum across two processes equals one cold run.
  void print_summary(const char* name) const;

 private:
  // Evaluation half of run(): everything after training — shared by the
  // sequential and pipelined paths so their results are identical by
  // construction. Touches only eval-side caches and counters.
  ScenarioResult finish_scenario(const ScenarioSpec& spec, TrainedModel tm,
                                 double train_seconds);

  std::map<ModelKind, SplitDataset> datasets_;
  index_t scenarios_ = 0;
  index_t trained_ = 0;
  index_t model_store_hits_ = 0;
  index_t evals_computed_ = 0;
  index_t eval_cache_hits_ = 0;
  double train_seconds_ = 0.0;
  double eval_seconds_ = 0.0;
};

}  // namespace qavat
