// Scenario runner: the one entry point benches use. A Session executes
// declarative ScenarioSpecs — resolve the workload dataset (cached per
// model kind), train through the store-backed model cache, Monte-Carlo
// evaluate through the store-backed result cache — and returns a
// ScenarioResult carrying the numbers plus provenance (what was actually
// computed vs loaded) and timing. Deterministic: a warm session run
// reproduces a cold run's numbers bit-identically (DESIGN.md §11), so
// the provenance/timing channel is the only part that may differ —
// benches print it to stderr, keeping stdout byte-stable.
#pragma once

#include <map>
#include <vector>

#include "eval/experiment.h"
#include "eval/scenario.h"

namespace qavat {

/// Everything Session::run produces for one scenario: accuracies,
/// Monte-Carlo stats, provenance and timing.
struct ScenarioResult {
  std::string key;          ///< the spec's canonical cache/store key
  double clean_acc = 0.0;   ///< noise-free test accuracy of the model
  double mean_acc = 0.0;    ///< mc.accuracy.mean, or clean_acc for a
                            ///< clean-only spec (deploy noise disabled)
  EvalStats mc;             ///< Monte-Carlo stats (n_chips 0 if clean-only)
  bool trained = false;         ///< training actually ran during this call
  bool model_from_store = false;  ///< model loaded from the disk store
  bool eval_computed = false;   ///< MC eval ran (vs memory/store hit)
  double train_seconds = 0.0;   ///< wall time in the training entry point
  double eval_seconds = 0.0;    ///< wall time in the evaluation entry point
};

/// Executes ScenarioSpecs against process-wide caches and the artifact
/// store, memoizing datasets per model kind and aggregating provenance
/// counters across every run() — one Session per bench binary.
class Session {
 public:
  /// Train (through the cache/store) and evaluate one scenario.
  ScenarioResult run(const ScenarioSpec& spec);

  /// Pipelined batch execution: a background executor thread trains
  /// scenario N+1 (model cache + store "models" bucket) while the
  /// calling thread Monte-Carlo evaluates scenario N and writes its
  /// eval artifacts — the two stages touch disjoint caches/counters, so
  /// overlap changes wall clock only. Results return in spec order and
  /// carry the same numbers, provenance and timing a sequential run()
  /// loop would produce (every stage is deterministic; a warm store
  /// still yields byte-identical tables). A training failure surfaces
  /// as the failing scenario's exception at its position in the order,
  /// after the executor has drained; nothing runs past it.
  std::vector<ScenarioResult> run_all(const std::vector<ScenarioSpec>& specs);

  /// Just the (cached/store-backed) trained model of a scenario, for
  /// benches that drive a custom evaluation loop (drift, equivalence).
  /// Counts toward the session's provenance totals.
  TrainedModel train_model(const ScenarioSpec& spec);

  /// The workload dataset for `kind` (fast-mode-sized), built once per
  /// session.
  const SplitDataset& dataset(ModelKind kind);

  /// Two machine-greppable lines on stderr: the provenance summary, e.g.
  /// `[qavat-session] bench: scenarios=30 trained=0 train_runs=0
  /// model_store_hits=30 evals_computed=0 eval_cache_hits=30 train_s=0.00
  /// eval_s=0.00 backend=weight_domain` (train_runs is the process-wide
  /// train() phase count the work-claim protocol deduplicates across
  /// concurrent processes), and the `[qavat-store]` health counters
  /// (writes_failed, loads_corrupt, claims_reclaimed,
  /// retrains_after_corruption, tmp_swept, faults_injected, plus the
  /// serialize-layer envelope checksum counters). The CI warm-store gate
  /// asserts `trained=0`/`evals_computed=0`; the concurrent-sweep gate
  /// asserts the train_runs sum across two processes equals one cold run.
  void print_summary(const char* name) const;

 private:
  // Evaluation half of run(): everything after training — shared by the
  // sequential and pipelined paths so their results are identical by
  // construction. Touches only eval-side caches and counters.
  ScenarioResult finish_scenario(const ScenarioSpec& spec, TrainedModel tm,
                                 double train_seconds);

  std::map<ModelKind, SplitDataset> datasets_;
  index_t scenarios_ = 0;
  index_t trained_ = 0;
  index_t model_store_hits_ = 0;
  index_t evals_computed_ = 0;
  index_t eval_cache_hits_ = 0;
  double train_seconds_ = 0.0;
  double eval_seconds_ = 0.0;
};

}  // namespace qavat
