// Sweep manifests: a thousand-point scenario grid as DATA, not code.
// A SweepManifest is an ordered list of ScenarioSpec JSON documents
// plus campaign metadata (name, schema version), with a lossless
// load/save round trip — so a grid can be emitted once (`qavat-sweep
// emit`), diffed, versioned, split across a fleet, and consumed by the
// generic sweep engine (`qavat-sweep run`, Session::run_manifest)
// without recompiling a bench binary. Validation is per-entry and
// per-field: a malformed manifest reports the offending spec index and
// field (via ScenarioSpec::from_json's error channel), never a bare
// "false". DESIGN.md §15.
#pragma once

#include <string>
#include <vector>

#include "eval/scenario.h"

namespace qavat {

/// Manifest-document schema version ("manifest_schema" in the JSON);
/// bump together with any incompatible change to the document layout.
/// Independent of kScenarioSchemaVersion, which each embedded spec
/// carries (and is validated against) itself.
inline constexpr int kManifestSchemaVersion = 1;

/// An ordered scenario grid with campaign metadata. Unit order IS the
/// result order: Session::run_manifest returns results[i] for specs[i]
/// whatever dynamic order the claim-aware scheduler executed them in.
struct SweepManifest {
  std::string name;                 ///< campaign name (space-free token)
  std::vector<ScenarioSpec> specs;  ///< the grid, in result order

  /// Lossless JSON encoding: one spec document per line inside a
  /// "specs" array, so manifests diff cleanly under version control.
  std::string to_json() const;

  /// Parse a to_json() document. Returns false — leaving *out
  /// untouched — on malformed JSON, a manifest-schema mismatch or any
  /// invalid spec entry; `*error` (optional) then names the failure
  /// down to the entry index and field, e.g. "specs[17]: train.lr:
  /// expected a number".
  static bool from_json(const std::string& text, SweepManifest* out,
                        std::string* error = nullptr);

  /// Write to_json() to `path` (atomically via a temp file + rename).
  /// Returns false with *error (optional) set on I/O failure.
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// Read and parse a manifest file. Returns false with *error
  /// (optional) naming the I/O or validation failure.
  static bool load(const std::string& path, SweepManifest* out,
                   std::string* error = nullptr);
};

/// Split a manifest into `k` disjoint round-robin shards for hosts that
/// do NOT share a store (the work-claim protocol needs a common
/// filesystem; disjoint manifests are the coordination-free fallback):
/// shard i holds specs i, i+k, i+2k, ... in manifest order and is named
/// "<name>.shard<i>of<k>". The shards partition the grid losslessly —
/// every spec lands in exactly one shard, and interleaving the shards
/// back in round-robin order reproduces the original spec sequence.
/// k < 1 is clamped to 1 (one shard = a renamed copy).
std::vector<SweepManifest> shard_manifest(const SweepManifest& m, int k);

/// Names of the built-in grid generators: the spec grids the stock
/// benches sweep, exposed as manifests so `qavat-sweep emit <name>`
/// replaces recompiling a bench to change a campaign. Currently
/// "table1" (the bench_table1 Table-I grid) and "sweep_sigma"
/// (bench_sweep's 4-point LeNet-5s sigma grid).
std::vector<std::string> builtin_manifest_names();

/// Materialize the named built-in grid under the CURRENT environment
/// (fast budgets, eval backend — the same defaults the bench binary
/// would bake in). Returns false on an unknown name. The emitting and
/// consuming processes must agree on QAVAT_FAST: spec budgets are
/// frozen into the manifest, and the store namespaces artifacts by the
/// running process's budget.
bool builtin_manifest(const std::string& name, SweepManifest* out);

}  // namespace qavat
