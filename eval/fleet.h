// Fleet lifetime evaluation (ROADMAP "Fleet-scale lifetime & drift
// scenarios"): simulate N deployed chips over T inference steps under a
// composed LifetimeModel (core/variability/lifetime.h) and a re-tuning
// policy, and stream out a FleetTrajectory — per-checkpoint mean/min/max
// and P5/P50/P95 accuracy quantiles plus cumulative retune counts —
// without ever materializing the N x T accuracy matrix.
//
// Execution: chips run in groups of chip_batch through the evaluator's
// noise-batched forward (one chip-major tiled forward per lifetime step
// per group); within a group the per-chip lifetime states advance from a
// parallel_for. Both paths keep the PR 2 contract — results are
// bit-identical for any QAVAT_THREADS and any chip grouping
// (QAVAT_FLEET_CHIP_BATCH is result-invariant and therefore not part of
// any key).
//
// Persistence: after every checkpoint window the evaluator publishes a
// FleetSnapshot (per-chip drift state + per-chip accuracy history + the
// trajectory rows so far; scalars only, so the round-trip is exact) to
// the store's "fleet" bucket under the study key. Production runs under
// the PR 8 work-claim protocol: one process holds the lease and
// publishes checkpoints, racing processes back off until the completed
// trajectory appears — exactly-once snapshot publication — and an
// interrupted or horizon-extended study resumes from the last published
// checkpoint instead of restarting (n_steps is excluded from the key).
#pragma once

#include <string>
#include <vector>

#include "core/variability/lifetime.h"
#include "eval/runner.h"
#include "tensor/serialize.h"

namespace qavat {

/// Store bucket fleet snapshots live in.
inline constexpr char kFleetBucket[] = "fleet";

/// One fleet lifetime study: the trained-model scenario (model, bits,
/// training recipe — its deploy/eval fields are unused here; the
/// lifetime spec owns deployment) plus the lifetime protocol.
struct FleetStudySpec {
  ScenarioSpec scenario;
  LifetimeSpec lifetime;

  /// Canonical store identity: scenario.key() + "_" + lifetime.key().
  /// Excludes lifetime.n_steps, so extending a study's horizon resumes
  /// from the persisted snapshot.
  std::string key() const;

  /// Lossless JSON: {"scenario":{...},"lifetime":{...}}.
  std::string to_json() const;

  /// Parse a to_json() document; same contract as ScenarioSpec. Errors
  /// are prefixed with the failing sub-object ("scenario: ...",
  /// "lifetime: ...").
  static bool from_json(const std::string& text, FleetStudySpec* out,
                        std::string* error = nullptr);
};

/// One checkpoint row of a fleet trajectory: the accuracy distribution
/// across chips of their window-mean accuracies (the window is the
/// checkpoint_every steps this row closes), cumulative retunes, and the
/// mean GTM staleness |eps_hat - eps_B(t)| over the window.
struct FleetCheckpoint {
  index_t step = 0;   ///< 1-based lifetime step this checkpoint closes
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p5 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  index_t retunes = 0;  ///< cumulative full re-measures across the fleet
  double stale = 0.0;   ///< mean |eps_hat - eps_B(t)|, window x chips
};

/// Streaming study output: one row per checkpoint, in step order.
struct FleetTrajectory {
  std::vector<FleetCheckpoint> checkpoints;
};

/// The persisted longitudinal state of a study: everything needed to
/// resume bit-identically from the last checkpoint. Scalars only — a
/// double round-trips exactly through the state-dict envelope, while a
/// float32 tensor would quantize the per-chip state and break resume
/// bit-identity.
struct FleetSnapshot {
  index_t n_chips = 0;
  index_t completed_steps = 0;
  std::vector<FleetCheckpoint> rows;        ///< trajectory so far
  std::vector<ChipLifetimeState> chips;     ///< per-chip drift state
  std::vector<double> acc_sum;  ///< per-chip accuracy history: sum of
                                ///< per-step accuracies over all steps

  /// Encode as an ordered StateDict. `study_key` is fingerprinted
  /// (fnv1a64, split into two 32-bit halves — a double cannot hold 64
  /// bits exactly) so a snapshot can never be misread for another study
  /// even if a store key collides.
  StateDict to_state_dict(const std::string& study_key) const;

  /// Strict ordered decode: returns false on any missing/renamed field,
  /// a schema or fingerprint mismatch, or inconsistent counts. Leaves
  /// *out untouched on failure.
  static bool from_state_dict(const StateDict& sd,
                              const std::string& study_key,
                              FleetSnapshot* out);
};

/// What one FleetEvaluator::run produced, with resume provenance.
struct FleetRunResult {
  FleetTrajectory trajectory;
  index_t n_chips = 0;
  index_t resumed_from_step = 0;    ///< 0 = started from factory state
  index_t snapshots_published = 0;  ///< store publishes by THIS process
  bool loaded = false;   ///< complete trajectory served from the store
  bool trained = false;  ///< scenario training ran during this call
};

/// Runs fleet lifetime studies against a Session (trained-model cache +
/// dataset) and the artifact store. See the file comment for the
/// execution and persistence contracts.
class FleetEvaluator {
 public:
  explicit FleetEvaluator(Session& session) : session_(session) {}

  /// Execute (or resume, or load) one study. Throws std::invalid_argument
  /// on an inconsistent spec (n_chips/checkpoint_every/batch_size < 1,
  /// or checkpoint_every not dividing n_steps).
  FleetRunResult run(const FleetStudySpec& spec);

  /// The claim units a run would produce, in production order: the
  /// scenario's training units, then the fleet snapshot unit. For
  /// `qavat-fleet --dry-run` and tests.
  std::vector<ClaimUnitRef> claim_units(const FleetStudySpec& spec);

 private:
  Session& session_;
};

/// Chips per noise-batched forward: QAVAT_FLEET_CHIP_BATCH when set
/// (>= 1), else QAVAT_CHIP_BATCH's default policy (8). Result-invariant.
index_t fleet_chip_batch_from_env();

/// Names of the builtin lifetime studies `qavat-fleet emit` offers.
std::vector<std::string> builtin_fleet_names();

/// Materialize a builtin study by name (LeNet-family QAVAT scenarios
/// with representative drift mixes and policies). Returns false for an
/// unknown name.
bool builtin_fleet_study(const std::string& name, FleetStudySpec* out);

}  // namespace qavat
