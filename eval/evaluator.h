// Deployment evaluation. The weight-domain abstraction injects
// variability directly on each quant layer's effective weights (fast);
// the circuit backend programs the same weights onto tiled crossbar
// arrays (pim/tiling.h) and routes every analog MVM through the
// simulator (faithful). bench_pim_equivalence validates that the two
// agree statistically.
//
//  * evaluate_clean — noise-free test accuracy.
//  * evaluate_under_variability — Monte-Carlo over simulated chips: one
//    correlated eps_B draw per chip shared by all layers, iid within-chip
//    draws per layer, optional self-tuning correction (GTM measurement
//    error and LTM readout error included). Returns accuracy stats across
//    chips.
//
//    Chips are evaluated `chip_batch` at a time through one noise-batched
//    forward per test batch (the effective weights carry a per-chip axis;
//    see NoiseState). Determinism contract: chip c's realization is drawn
//    from Rng(seed, c) — explicit in the chip index, never in evaluation
//    order — so every chip_batch (including 1, the sequential path)
//    produces bit-identical per-chip accuracies. The circuit backend
//    shares the same Rng(seed, c) chip identity, so both backends see
//    the same per-chip eps_B realizations.
//  * evaluate_under_drift — eps_B(t) follows an OU process; the GTM is
//    re-measured every `remeasure_interval` steps (0 = factory-time only).
//
// Thread-safety: evaluation drives one model from one thread; kernels
// parallelize internally (QAVAT_THREADS) with bit-identical results.
#pragma once

#include "core/models/models.h"
#include "core/selftune/selftune.h"
#include "core/train/trainer.h"  // evaluate_clean lives at the train layer
#include "core/variability/drift.h"
#include "data/synth.h"

namespace qavat {

/// Accuracy summary over a population (all values in [0, 1]).
struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Population stats of `xs` (stddev is the population form, /N).
  static Stats from(const std::vector<double>& xs);
};

/// Result of a Monte-Carlo deployment evaluation.
struct EvalStats {
  Stats accuracy;      ///< accuracy distribution across simulated chips
  index_t n_chips = 0; ///< number of chips simulated
  std::vector<double> per_chip_acc;  ///< accuracy of each simulated chip,
                                     ///< in chip-index order
};

/// How the Monte-Carlo evaluator realizes a simulated chip.
enum class EvalBackend {
  /// Inject variability directly on each layer's effective weights and
  /// run the normal GEMM forward (fast; supports chip batching).
  kWeightDomain,
  /// Program each layer's quantized weights across tiled <= 512x512
  /// crossbar arrays (QAVAT_TILE_SIZE) on a simulated PimChip and route
  /// every analog MVM through the circuit simulator; the self-tuning
  /// eps_hat comes from real per-array GTM spare columns. Sequential
  /// (chip_batch is ignored) and O(arrays) programming per chip — meant
  /// for small models and validation runs (DESIGN.md §10).
  kCircuit,
  /// Weight-domain chip realizations (same Rng(seed, chip) draws and
  /// chip-batching as kWeightDomain) with every analog MVM routed through
  /// the s8 x s8 -> s32 integer fast path: each chip's effective weights
  /// are re-quantized once into cached int8 planes and multiplied against
  /// the layer's integer activation codes (core/quant/int8_backend.h,
  /// DESIGN.md §12). 2x+ faster per eval; accuracies match kWeightDomain
  /// exactly on the noise-free grid and within a benched epsilon under
  /// injected variability.
  kInt8,
};

/// Stable lowercase name of a backend ("weight_domain", "circuit",
/// "int8") — the same tokens QAVAT_EVAL_BACKEND and the scenario JSON
/// use.
const char* to_string(EvalBackend backend);

/// QAVAT_EVAL_BACKEND as an EvalBackend: "circuit" selects kCircuit,
/// "int8" kInt8, anything else (or unset) kWeightDomain. Re-read from the
/// environment on EVERY call (tests flip the variable between scenarios);
/// an unknown value warns once per process. Applied by
/// default_eval_config(), not by evaluate_under_variability.
EvalBackend eval_backend_from_env();

/// Monte-Carlo evaluation protocol. All counts are per evaluation call.
struct EvalConfig {
  index_t n_chips = 25;                ///< simulated chips
  index_t max_test_samples = 1 << 30;  ///< cap on evaluated test samples
  index_t batch_size = 64;             ///< test rows per forward
  std::uint64_t seed = 1000;           ///< chip Monte-Carlo seed
  index_t chip_batch = 0;  ///< chips per noise-batched forward; 0 = default
                           ///< (8), 1 = sequential single-chip evaluation.
                           ///< Any value yields identical per-chip results.
                           ///< Ignored by the circuit backend (sequential).
  EvalBackend backend = EvalBackend::kWeightDomain;  ///< chip realization
  index_t tile_size = 0;   ///< circuit backend: max crossbar side length;
                           ///< 0 = QAVAT_TILE_SIZE (default 512)
};

/// Monte-Carlo deployment accuracy of `model` under `vcfg` variability,
/// optionally with inference-time self-tuning `st`. See the protocol
/// notes at the top of this header.
EvalStats evaluate_under_variability(Module& model, const Dataset& test,
                                     const VariabilityConfig& vcfg,
                                     const EvalConfig& ecfg,
                                     const SelfTuneConfig* st = nullptr);

/// Temporal-drift evaluation protocol (footnote-2 extension).
struct DriftEvalConfig {
  index_t n_steps = 192;           ///< OU time steps evaluated
  index_t batch_size = 50;         ///< test rows per step
  index_t remeasure_interval = 0;  ///< steps between GTM re-measurements;
                                   ///< 0 = factory calibration only
  index_t gtm_cells = 1000;        ///< GTM cells per measurement
  std::uint64_t seed = 2000;       ///< drift Monte-Carlo seed
};

/// Result of a drift evaluation.
struct DriftStats {
  double mean_acc = 0.0;        ///< accuracy averaged over all steps
  double mean_abs_error = 0.0;  ///< mean |eps_hat - eps_B(t)| staleness
};

/// Accuracy under a drifting eps_B(t) (OU process, DriftConfig) with
/// periodic GTM re-measurement.
DriftStats evaluate_under_drift(Module& model, const Dataset& test,
                                const DriftConfig& dcfg,
                                const DriftEvalConfig& ecfg);

}  // namespace qavat
