// Deployment evaluation. The weight-domain abstraction injects
// variability directly on each quant layer's effective weights (fast);
// pim/chip.h validates that this matches circuit-level conductance
// programming (bench_pim_equivalence).
//
//  * evaluate_clean — noise-free test accuracy.
//  * evaluate_under_variability — Monte-Carlo over simulated chips: one
//    correlated eps_B draw per chip shared by all layers, iid within-chip
//    draws per layer, optional self-tuning correction (GTM measurement
//    error and LTM readout error included). Returns accuracy stats across
//    chips.
//
//    Chips are evaluated `chip_batch` at a time through one noise-batched
//    forward per test batch (the effective weights carry a per-chip axis;
//    see NoiseState). Determinism contract: chip c's realization is drawn
//    from Rng(seed, c) — explicit in the chip index, never in evaluation
//    order — so every chip_batch (including 1, the sequential path)
//    produces bit-identical per-chip accuracies.
//  * evaluate_under_drift — eps_B(t) follows an OU process; the GTM is
//    re-measured every `remeasure_interval` steps (0 = factory-time only).
#pragma once

#include "core/models/models.h"
#include "core/selftune/selftune.h"
#include "core/train/trainer.h"  // evaluate_clean lives at the train layer
#include "core/variability/drift.h"
#include "data/synth.h"

namespace qavat {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Stats from(const std::vector<double>& xs);
};

struct EvalStats {
  Stats accuracy;
  index_t n_chips = 0;
  std::vector<double> per_chip_acc;  // accuracy of each simulated chip, in
                                     // chip-index order
};

struct EvalConfig {
  index_t n_chips = 25;
  index_t max_test_samples = 1 << 30;  // cap on evaluated test samples
  index_t batch_size = 64;
  std::uint64_t seed = 1000;  // chip Monte-Carlo seed
  index_t chip_batch = 0;     // chips per noise-batched forward; 0 = default
                              // (8), 1 = sequential single-chip evaluation.
                              // Any value yields identical per-chip results.
};

EvalStats evaluate_under_variability(Module& model, const Dataset& test,
                                     const VariabilityConfig& vcfg,
                                     const EvalConfig& ecfg,
                                     const SelfTuneConfig* st = nullptr);

struct DriftEvalConfig {
  index_t n_steps = 192;
  index_t batch_size = 50;
  index_t remeasure_interval = 0;  // 0 = factory calibration only
  index_t gtm_cells = 1000;
  std::uint64_t seed = 2000;
};

struct DriftStats {
  double mean_acc = 0.0;
  double mean_abs_error = 0.0;  // mean |eps_hat - eps_B(t)| staleness
};

DriftStats evaluate_under_drift(Module& model, const Dataset& test,
                                const DriftConfig& dcfg,
                                const DriftEvalConfig& ecfg);

}  // namespace qavat
