#include "eval/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <stdexcept>

#include "eval/store.h"
#include "tensor/parallel_for.h"

namespace qavat {

namespace {

// ------------------------------------------------------------ spec JSON

// Slice the top-level sub-object `"name":{...}` out of a study document
// (brace counting with in-string tracking; escapes unsupported, exactly
// like the manifest scanner — to_json never emits them). Returns false
// when the name or a balanced object is not found.
bool extract_object(const std::string& text, const char* name,
                    std::string* out) {
  const std::string needle = std::string("\"") + name + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
          text[pos] == '\r')) {
    ++pos;
  }
  if (pos >= text.size() || text[pos] != ':') return false;
  ++pos;
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
          text[pos] == '\r')) {
    ++pos;
  }
  if (pos >= text.size() || text[pos] != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') return false;  // escapes unsupported
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        out->assign(text, pos, i - pos + 1);
        return true;
      }
    }
  }
  return false;
}

// ------------------------------------------------------- snapshot codec

// Strict sequential reader over StateDict::scalars: O(n) for the whole
// snapshot where name lookups would be O(n^2) on thousands of entries,
// and any missing, renamed or reordered field fails the decode instead
// of silently defaulting.
struct ScalarCursor {
  const std::vector<std::pair<std::string, double>>& s;
  std::size_t i = 0;

  bool next(const std::string& name, double* v) {
    if (i >= s.size() || s[i].first != name) return false;
    *v = s[i++].second;
    return true;
  }
  bool next_index(const std::string& name, index_t* v) {
    double d = 0.0;
    if (!next(name, &d)) return false;
    *v = static_cast<index_t>(d);
    return true;
  }
};

// ------------------------------------------------------ claim-or-load

// Same round-trip the read-through caches in eval/experiment.cpp run:
// probe the artifact, try to claim production, back off while another
// live process holds the lease; fall through to local compute when the
// store is disabled or claims cannot exist (kUnavailable).
struct ClaimWait {
  StoreClaim claim;
  bool loaded = false;
};

ClaimWait claim_or_load(const char* bucket, const std::string& key,
                        const std::function<bool(StoreLoadOutcome*)>& probe) {
  ClaimWait cw;
  for (int attempt = 0;; ++attempt) {
    StoreLoadOutcome outcome = StoreLoadOutcome::kMiss;
    if (probe(&outcome)) {
      cw.loaded = true;
      return cw;
    }
    if (!store_enabled()) return cw;
    StoreClaimStatus status = StoreClaimStatus::kBusy;
    cw.claim = store_try_claim(bucket, key, &status);
    if (cw.claim.held()) return cw;
    if (status == StoreClaimStatus::kUnavailable) return cw;
    store_claim_backoff_wait(attempt);
  }
}

// --------------------------------------------------------- eval helpers

void clear_all_noise(Module& model) {
  for (QuantLayerBase* q : model.quant_layers()) q->noise_state().clear();
}

// Serial per-group prologue, the fleet variant of the evaluator's
// prepare_noise_group: size the batched state and apply the
// NoiseState-wide writes once per group. Unlike the Monte-Carlo path the
// state is ALWAYS active — a pure-drift deployment (sigma_w == 0) still
// carries the drifting eps_B through the (zeroed) eps planes, exactly as
// evaluate_under_drift arranges for the scalar path.
void prepare_fleet_group(std::vector<QuantLayerBase*>& qlayers,
                         const VariabilityConfig& within, index_t nb,
                         CorrectionKind correction) {
  for (QuantLayerBase* q : qlayers) {
    ensure_noise_batch(*q, nb);
    NoiseState& ns = q->noise_state();
    ns.model = within.model;
    ns.wmax = q->dequant_weight_max();
    ns.active = true;
    ns.correction = correction;
  }
}

// Linear-interpolated quantile of an ascending-sorted vector.
double quantile_sorted(const std::vector<double>& xs, double q) {
  if (xs.empty()) return 0.0;
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

bool fleet_progress_enabled() {
  const char* v = std::getenv("QAVAT_FLEET_PROGRESS");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

// -------------------------------------------------------- FleetStudySpec

std::string FleetStudySpec::key() const {
  return scenario.key() + "_" + lifetime.key();
}

std::string FleetStudySpec::to_json() const {
  return "{\"scenario\":" + scenario.to_json() + ",\"lifetime\":" +
         lifetime.to_json() + "}";
}

bool FleetStudySpec::from_json(const std::string& text, FleetStudySpec* out,
                               std::string* error) {
  if (error != nullptr) error->clear();
  std::string sub;
  FleetStudySpec s;
  if (!extract_object(text, "scenario", &sub)) {
    if (error != nullptr) *error = "scenario: missing object";
    return false;
  }
  std::string sub_err;
  if (!ScenarioSpec::from_json(sub, &s.scenario, &sub_err)) {
    if (error != nullptr) *error = "scenario: " + sub_err;
    return false;
  }
  if (!extract_object(text, "lifetime", &sub)) {
    if (error != nullptr) *error = "lifetime: missing object";
    return false;
  }
  if (!LifetimeSpec::from_json(sub, &s.lifetime, &sub_err)) {
    if (error != nullptr) *error = "lifetime: " + sub_err;
    return false;
  }
  *out = s;
  return true;
}

// --------------------------------------------------------- FleetSnapshot

StateDict FleetSnapshot::to_state_dict(const std::string& study_key) const {
  const std::uint64_t fp = fnv1a64(study_key);
  StateDict sd;
  sd.add_scalar("fleet_schema", static_cast<double>(kLifetimeSchemaVersion));
  sd.add_scalar("key_hi", static_cast<double>(fp >> 32));
  sd.add_scalar("key_lo", static_cast<double>(fp & 0xffffffffULL));
  sd.add_scalar("n_chips", static_cast<double>(n_chips));
  sd.add_scalar("completed_steps", static_cast<double>(completed_steps));
  sd.add_scalar("n_rows", static_cast<double>(rows.size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const FleetCheckpoint& row = rows[r];
    const std::string p = "row" + std::to_string(r) + ".";
    sd.add_scalar(p + "step", static_cast<double>(row.step));
    sd.add_scalar(p + "mean", row.mean);
    sd.add_scalar(p + "min", row.min);
    sd.add_scalar(p + "max", row.max);
    sd.add_scalar(p + "p5", row.p5);
    sd.add_scalar(p + "p50", row.p50);
    sd.add_scalar(p + "p95", row.p95);
    sd.add_scalar(p + "retunes", static_cast<double>(row.retunes));
    sd.add_scalar(p + "stale", row.stale);
  }
  for (std::size_t c = 0; c < chips.size(); ++c) {
    const ChipLifetimeState& st = chips[c];
    const std::string p = "chip" + std::to_string(c) + ".";
    sd.add_scalar(p + "ou", st.ou);
    sd.add_scalar(p + "aging", st.aging);
    sd.add_scalar(p + "disturb", st.disturb);
    sd.add_scalar(p + "phase", st.phase);
    sd.add_scalar(p + "eps_hat", st.eps_hat);
    sd.add_scalar(p + "retunes", static_cast<double>(st.retunes));
    sd.add_scalar(p + "acc_sum", acc_sum[c]);
  }
  return sd;
}

bool FleetSnapshot::from_state_dict(const StateDict& sd,
                                    const std::string& study_key,
                                    FleetSnapshot* out) {
  ScalarCursor cur{sd.scalars};
  double schema = 0.0, key_hi = 0.0, key_lo = 0.0;
  FleetSnapshot s;
  index_t n_rows = 0;
  if (!cur.next("fleet_schema", &schema) ||
      schema != static_cast<double>(kLifetimeSchemaVersion) ||
      !cur.next("key_hi", &key_hi) || !cur.next("key_lo", &key_lo) ||
      !cur.next_index("n_chips", &s.n_chips) ||
      !cur.next_index("completed_steps", &s.completed_steps) ||
      !cur.next_index("n_rows", &n_rows)) {
    return false;
  }
  const std::uint64_t fp = fnv1a64(study_key);
  if (key_hi != static_cast<double>(fp >> 32) ||
      key_lo != static_cast<double>(fp & 0xffffffffULL)) {
    return false;
  }
  if (s.n_chips < 0 || n_rows < 0 || s.completed_steps < 0) return false;
  s.rows.resize(static_cast<std::size_t>(n_rows));
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    FleetCheckpoint& row = s.rows[r];
    const std::string p = "row" + std::to_string(r) + ".";
    if (!cur.next_index(p + "step", &row.step) ||
        !cur.next(p + "mean", &row.mean) || !cur.next(p + "min", &row.min) ||
        !cur.next(p + "max", &row.max) || !cur.next(p + "p5", &row.p5) ||
        !cur.next(p + "p50", &row.p50) || !cur.next(p + "p95", &row.p95) ||
        !cur.next_index(p + "retunes", &row.retunes) ||
        !cur.next(p + "stale", &row.stale)) {
      return false;
    }
  }
  s.chips.resize(static_cast<std::size_t>(s.n_chips));
  s.acc_sum.resize(static_cast<std::size_t>(s.n_chips));
  for (std::size_t c = 0; c < s.chips.size(); ++c) {
    ChipLifetimeState& st = s.chips[c];
    const std::string p = "chip" + std::to_string(c) + ".";
    if (!cur.next(p + "ou", &st.ou) || !cur.next(p + "aging", &st.aging) ||
        !cur.next(p + "disturb", &st.disturb) ||
        !cur.next(p + "phase", &st.phase) ||
        !cur.next(p + "eps_hat", &st.eps_hat) ||
        !cur.next_index(p + "retunes", &st.retunes) ||
        !cur.next(p + "acc_sum", &s.acc_sum[c])) {
      return false;
    }
  }
  if (cur.i != sd.scalars.size() || !sd.tensors.empty()) return false;
  *out = std::move(s);
  return true;
}

// --------------------------------------------------------- FleetEvaluator

index_t fleet_chip_batch_from_env() {
  for (const char* name : {"QAVAT_FLEET_CHIP_BATCH", "QAVAT_CHIP_BATCH"}) {
    const char* v = std::getenv(name);
    if (v != nullptr && v[0] != '\0') {
      const long long n = std::strtoll(v, nullptr, 10);
      if (n >= 1) return static_cast<index_t>(n);
    }
  }
  return 8;
}

std::vector<ClaimUnitRef> FleetEvaluator::claim_units(
    const FleetStudySpec& spec) {
  std::vector<ClaimUnitRef> units;
  for (ClaimUnitRef& u : session_.claim_units(spec.scenario)) {
    // Only the training units apply: the scenario's Monte-Carlo eval
    // artifact is never produced by a fleet run (the lifetime spec owns
    // deployment).
    if (std::strcmp(u.bucket, "models") == 0) units.push_back(u);
  }
  units.push_back(ClaimUnitRef{kFleetBucket, spec.key()});
  return units;
}

FleetRunResult FleetEvaluator::run(const FleetStudySpec& spec) {
  const LifetimeSpec& lt = spec.lifetime;
  if (lt.n_chips < 1 || lt.n_steps < 1 || lt.checkpoint_every < 1 ||
      lt.batch_size < 1) {
    throw std::invalid_argument(
        "FleetEvaluator::run: n_chips, n_steps, checkpoint_every and "
        "batch_size must all be >= 1");
  }
  if (lt.n_steps % lt.checkpoint_every != 0) {
    throw std::invalid_argument(
        "FleetEvaluator::run: checkpoint_every (" +
        std::to_string(static_cast<long long>(lt.checkpoint_every)) +
        ") must divide n_steps (" +
        std::to_string(static_cast<long long>(lt.n_steps)) +
        ") — window boundaries are part of the trajectory identity");
  }
  const std::string key = spec.key();
  const index_t ck = lt.checkpoint_every;
  const index_t n_windows = lt.n_steps / ck;
  const std::size_t nc = static_cast<std::size_t>(lt.n_chips);

  FleetRunResult res;
  res.n_chips = lt.n_chips;

  // Claim-or-load: a complete snapshot (this horizon or longer) serves
  // the trajectory prefix with no local compute; otherwise we either
  // hold the production lease or the store cannot arbitrate and we
  // compute locally (fail-soft).
  FleetSnapshot served;
  ClaimWait cw = claim_or_load(kFleetBucket, key, [&](StoreLoadOutcome* o) {
    StateDict sd;
    if (!store_load_state(kFleetBucket, key, &sd, o)) return false;
    FleetSnapshot s;
    if (!FleetSnapshot::from_state_dict(sd, key, &s)) return false;
    if (s.completed_steps < lt.n_steps) return false;
    served = std::move(s);
    return true;
  });
  if (cw.loaded) {
    res.trajectory.checkpoints.assign(
        served.rows.begin(),
        served.rows.begin() + static_cast<std::size_t>(n_windows));
    res.loaded = true;
    return res;
  }

  // We produce (or extend). Train through the session's cache first —
  // under the model buckets' own claim protocol — then pick up the
  // newest partial snapshot, which may have advanced while we waited.
  TrainedModel tm = session_.train_model(spec.scenario);
  res.trained = tm.trained;
  Module& model = *tm.model;
  model.set_training(false);
  const Dataset& test = session_.dataset(spec.scenario.model).test;

  std::vector<ChipLifetimeState> chips(nc);
  std::vector<double> acc_sum(nc, 0.0);
  std::vector<FleetCheckpoint> rows;
  index_t start_step = 0;
  {
    StateDict sd;
    FleetSnapshot s;
    if (store_load_state(kFleetBucket, key, &sd) &&
        FleetSnapshot::from_state_dict(sd, key, &s) &&
        s.n_chips == lt.n_chips && s.completed_steps % ck == 0 &&
        static_cast<index_t>(s.rows.size()) == s.completed_steps / ck) {
      chips = std::move(s.chips);
      acc_sum = std::move(s.acc_sum);
      rows = std::move(s.rows);
      start_step = s.completed_steps;
    }
  }
  if (start_step >= lt.n_steps) {
    // Completed (by us in a previous run, or by the holder we raced)
    // between the probe and the claim — serve the prefix.
    res.trajectory.checkpoints.assign(
        rows.begin(), rows.begin() + static_cast<std::size_t>(n_windows));
    res.loaded = true;
    return res;
  }
  res.resumed_from_step = start_step;

  const LifetimeModel lm(lt);
  if (start_step == 0) {
    parallel_for(index_t{0}, lt.n_chips, index_t{1},
                 [&](index_t c0, index_t c1) {
                   for (index_t c = c0; c < c1; ++c) {
                     Rng rng = LifetimeModel::init_rng(lt, c);
                     lm.init(&chips[static_cast<std::size_t>(c)], rng);
                   }
                 });
  }

  auto qlayers = model.quant_layers();
  // Clear the sampled state however this scope exits (throw included) —
  // the session's cached model clone must not leak a stale realization.
  struct NoiseGuard {
    Module& model;
    ~NoiseGuard() { clear_all_noise(model); }
  } guard{model};

  const VariabilityConfig within =
      VariabilityConfig::within_only(lt.drift.model, lt.drift.sigma_w);
  const CorrectionKind correction = correction_for(proper_mode(lt.drift.model));
  const index_t chip_batch =
      std::max<index_t>(1, std::min(fleet_chip_batch_from_env(), lt.n_chips));
  const index_t n_test = test.size();
  const index_t rows_per_step = std::min(lt.batch_size, n_test);
  // Same memory discipline as accuracy_batched: the chip-major tiled
  // forward stays the size of one sequential batch.
  const index_t chunk = std::max<index_t>(1, lt.batch_size / chip_batch);
  const bool progress = fleet_progress_enabled();

  // Per-chip window accumulators. Hits are integers and the stale sums
  // are accumulated per chip in step order, so every cross-chip
  // reduction below runs in chip order — bit-identical results for any
  // chip_batch and any QAVAT_THREADS.
  std::vector<index_t> win_hits(nc, 0);
  std::vector<double> win_stale(nc, 0.0);
  std::vector<double> win_acc(nc, 0.0);
  std::vector<index_t> idx, idx_tiled;
  std::vector<index_t> step_idx;
  Tensor block;

  for (index_t w = start_step / ck; w < n_windows; ++w) {
    const index_t t_first = w * ck + 1;
    const index_t t_last = (w + 1) * ck;
    std::fill(win_hits.begin(), win_hits.end(), index_t{0});
    std::fill(win_stale.begin(), win_stale.end(), 0.0);
    for (index_t chip0 = 0; chip0 < lt.n_chips; chip0 += chip_batch) {
      const index_t nb = std::min(chip_batch, lt.n_chips - chip0);
      prepare_fleet_group(qlayers, within, nb, correction);
      // Static within-chip field: re-drawn identically for this group
      // every window from the chip-indexed stream Rng(seed, chip).
      parallel_for(index_t{0}, nb, index_t{1}, [&](index_t b0, index_t b1) {
        for (index_t b = b0; b < b1; ++b) {
          Rng rng(lt.seed, static_cast<std::uint64_t>(chip0 + b));
          for (QuantLayerBase* q : qlayers) {
            sample_variability_slot_draws(*q, within, rng, b);
          }
        }
      });
      for (index_t t = t_first; t <= t_last; ++t) {
        // Advance + re-tune the group's chips: pure per-chip functions
        // of (stored state, counter stream), so any partition works.
        parallel_for(index_t{0}, nb, index_t{1}, [&](index_t b0, index_t b1) {
          for (index_t b = b0; b < b1; ++b) {
            ChipLifetimeState& st = chips[static_cast<std::size_t>(chip0 + b)];
            Rng rng = LifetimeModel::step_rng(lt, chip0 + b, t);
            lm.advance(&st, rng);
            lm.maybe_retune(&st, t, rng);
          }
        });
        for (QuantLayerBase* q : qlayers) {
          NoiseState& ns = q->noise_state();
          for (index_t b = 0; b < nb; ++b) {
            const ChipLifetimeState& st =
                chips[static_cast<std::size_t>(chip0 + b)];
            ns.eps_b_v[static_cast<std::size_t>(b)] =
                static_cast<float>(lm.eps_b(st, t));
            ns.eps_hat_v[static_cast<std::size_t>(b)] =
                static_cast<float>(st.eps_hat);
            ns.ltm_err_v[static_cast<std::size_t>(b)] = 0.0f;
          }
          if (ns.batch == 1) {
            // One-chip groups run the scalar forward path — mirror slot
            // 0 into the scalar fields, as the Monte-Carlo sampler does.
            ns.eps_b = ns.eps_b_v[0];
            ns.eps_hat = ns.eps_hat_v[0];
            ns.ltm_err = ns.ltm_err_v[0];
          }
          // eps_b_v is baked into the stacked effective weights, which
          // cache on the revision — a new drift step needs a new build.
          ++ns.revision;
        }
        for (index_t b = 0; b < nb; ++b) {
          const ChipLifetimeState& st =
              chips[static_cast<std::size_t>(chip0 + b)];
          win_stale[static_cast<std::size_t>(chip0 + b)] +=
              std::fabs(st.eps_hat - lm.eps_b(st, t));
        }
        // Step t evaluates test rows [(t-1)*batch_size, ...) mod n_test
        // — a pure function of t, so a resumed run sees the same data.
        const index_t base = (t - 1) * lt.batch_size;
        for (index_t start = 0; start < rows_per_step; start += chunk) {
          const index_t end = std::min(rows_per_step, start + chunk);
          const index_t nrows = end - start;
          step_idx.resize(static_cast<std::size_t>(nrows));
          for (index_t i = 0; i < nrows; ++i) {
            step_idx[static_cast<std::size_t>(i)] = (base + start + i) % n_test;
          }
          idx_tiled.clear();
          idx_tiled.reserve(static_cast<std::size_t>(nb * nrows));
          for (index_t b = 0; b < nb; ++b) {
            idx_tiled.insert(idx_tiled.end(), step_idx.begin(), step_idx.end());
          }
          Tensor x = test.gather_images(idx_tiled);
          const std::vector<index_t> y = test.gather_labels(step_idx);
          Tensor logits = model.forward(x);  // {nb*nrows, classes}
          const index_t classes = logits.dim(1);
          block.resize_for_overwrite({nrows, classes});
          for (index_t b = 0; b < nb; ++b) {
            std::memcpy(block.data(), logits.data() + b * nrows * classes,
                        static_cast<std::size_t>(nrows * classes) *
                            sizeof(float));
            index_t hits = 0;
            softmax_xent(block, y, nullptr, &hits);
            win_hits[static_cast<std::size_t>(chip0 + b)] += hits;
          }
        }
      }
    }
    // Close the window: per-chip window-mean accuracies, distribution
    // across chips, cumulative retunes, mean staleness. All reductions
    // run in chip order (see the accumulator comment above).
    const double denom = static_cast<double>(ck * rows_per_step);
    index_t retunes = 0;
    double stale_total = 0.0;
    for (std::size_t c = 0; c < nc; ++c) {
      win_acc[c] = static_cast<double>(win_hits[c]) / denom;
      acc_sum[c] += win_acc[c] * static_cast<double>(ck);
      retunes += chips[c].retunes;
      stale_total += win_stale[c];
    }
    FleetCheckpoint row;
    row.step = t_last;
    double sum = 0.0;
    for (std::size_t c = 0; c < nc; ++c) sum += win_acc[c];
    row.mean = sum / static_cast<double>(nc);
    std::vector<double> sorted = win_acc;
    std::sort(sorted.begin(), sorted.end());
    row.min = sorted.front();
    row.max = sorted.back();
    row.p5 = quantile_sorted(sorted, 0.05);
    row.p50 = quantile_sorted(sorted, 0.50);
    row.p95 = quantile_sorted(sorted, 0.95);
    row.retunes = retunes;
    row.stale = stale_total / static_cast<double>(ck * lt.n_chips);
    rows.push_back(row);

    FleetSnapshot snap;
    snap.n_chips = lt.n_chips;
    snap.completed_steps = t_last;
    snap.rows = rows;
    snap.chips = chips;
    snap.acc_sum = acc_sum;
    if (store_save_state(kFleetBucket, key, snap.to_state_dict(key))) {
      ++res.snapshots_published;
    }
    if (progress) {
      std::fprintf(stderr,
                   "[qavat-fleet] %s: step %lld/%lld mean=%.4f retunes=%lld\n",
                   key.c_str(), static_cast<long long>(t_last),
                   static_cast<long long>(lt.n_steps), row.mean,
                   static_cast<long long>(retunes));
    }
  }
  res.trajectory.checkpoints = std::move(rows);
  return res;
}

// -------------------------------------------------------- builtin grids

namespace {

FleetStudySpec builtin_base() {
  FleetStudySpec s;
  s.scenario = ScenarioSpec::within(ModelKind::kLeNet5s, 4, 2,
                                    ScenarioAlgo::kQAVAT,
                                    VarianceModel::kWeightProportional, 0.25);
  s.lifetime.drift.model = VarianceModel::kWeightProportional;
  s.lifetime.drift.sigma_w = 0.25;
  s.lifetime.drift.sigma_b = 0.35;
  s.lifetime.drift.tau = 16.0;
  s.lifetime.gtm_cells = 1000;
  s.lifetime.n_chips = 64;
  s.lifetime.n_steps = 64;
  s.lifetime.checkpoint_every = 16;
  s.lifetime.batch_size = 50;
  s.lifetime.policy.kind = RetunePolicyKind::kFixedInterval;
  s.lifetime.policy.interval = 16;
  return s;
}

}  // namespace

std::vector<std::string> builtin_fleet_names() {
  return {"fleet_ou", "fleet_aging", "fleet_thermal", "fleet_disturb",
          "fleet_mixed"};
}

bool builtin_fleet_study(const std::string& name, FleetStudySpec* out) {
  FleetStudySpec s = builtin_base();
  if (name == "fleet_ou") {
    // Pure OU drift, fixed-interval re-tuning — the bench_drift regime.
  } else if (name == "fleet_aging") {
    s.lifetime.events.aging_rate = 0.002;
    s.lifetime.policy.kind = RetunePolicyKind::kThreshold;
    s.lifetime.policy.budget = 0.1;
  } else if (name == "fleet_thermal") {
    s.lifetime.events.thermal_amp = 0.15;
    s.lifetime.events.thermal_period = 32.0;
  } else if (name == "fleet_disturb") {
    s.lifetime.events.disturb_rate = 0.02;
    s.lifetime.events.disturb_mag = 0.2;
    s.lifetime.policy.kind = RetunePolicyKind::kThreshold;
    s.lifetime.policy.budget = 0.1;
  } else if (name == "fleet_mixed") {
    s.lifetime.events.aging_rate = 0.001;
    s.lifetime.events.thermal_amp = 0.1;
    s.lifetime.events.thermal_period = 32.0;
    s.lifetime.events.disturb_rate = 0.01;
    s.lifetime.events.disturb_mag = 0.2;
    s.lifetime.policy.kind = RetunePolicyKind::kThreshold;
    s.lifetime.policy.budget = 0.1;
  } else {
    return false;
  }
  *out = s;
  return true;
}

}  // namespace qavat
