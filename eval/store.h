// On-disk artifact store. Persists trained-model state dicts and
// Monte-Carlo result vectors under schema-versioned, budget-namespaced
// paths so bench binaries share work across processes: a warm second run
// of any bench loads its models and results instead of recomputing them,
// bit-identically (results round-trip through %.17g text, tensors
// through exact binary — DESIGN.md §11).
//
// Layout: <root>/v<schema>/<fast|full>/<bucket>/<key file>, where root
// is QAVAT_STORE_DIR (default "artifacts/store"), the schema directory
// pins kStoreSchemaVersion, and fast/full mirrors QAVAT_FAST — so a
// smoke-budget run can never collide with (or poison) full-budget
// artifacts, whatever the key says. QAVAT_STORE=0 disables all
// persistence. Writes go to a temp file in the destination directory and
// are published with an atomic rename: concurrent writers race benignly
// (last complete artifact wins) and readers never observe a partial
// file. Every operation is fail-soft — a missing, truncated, corrupt or
// unwritable artifact reads as a miss and the caller recomputes.
#pragma once

#include <string>
#include <vector>

#include "tensor/serialize.h"

namespace qavat {

/// Directory-layout schema version (the "v1" path component); bump
/// together with any incompatible change to what the buckets hold.
inline constexpr int kStoreSchemaVersion = 1;

/// True unless QAVAT_STORE=0 (or any value whose first char is '0').
/// Re-read from the environment on every call so tests can toggle it.
bool store_enabled();

/// Store root: QAVAT_STORE_DIR, or "artifacts/store" (relative to the
/// working directory) when unset/empty.
std::string store_root();

/// Filename a key maps to inside a bucket: the key itself when it is
/// filesystem-safe and short, otherwise a sanitized prefix plus an
/// FNV-1a hash suffix (stable across processes).
std::string store_key_filename(const std::string& key);

/// Load a persisted double vector (results bucket). Returns false on
/// disabled store, missing key or malformed file.
bool store_load_doubles(const char* bucket, const std::string& key,
                        std::vector<double>* out);

/// Persist a double vector with round-trip-exact (%.17g) text encoding
/// and an atomic rename. Returns false (after a once-per-process stderr
/// warning) when the store is disabled or the write fails.
bool store_save_doubles(const char* bucket, const std::string& key,
                        const std::vector<double>& values);

/// Load a persisted state dict (models bucket). Returns false on
/// disabled store, missing key or malformed/corrupt file.
bool store_load_state(const char* bucket, const std::string& key,
                      StateDict* out);

/// Persist a state dict (binary, checksummed) with an atomic rename.
/// Returns false when the store is disabled or the write fails.
bool store_save_state(const char* bucket, const std::string& key,
                      const StateDict& sd);

/// Delete every artifact under this schema's namespace
/// (<root>/v<schema>/, both fast and full). Used by
/// clear_experiment_caches(drop_disk=true); never touches anything
/// outside the versioned subtree.
void store_drop_all();

}  // namespace qavat
