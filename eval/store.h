// On-disk artifact store. Persists trained-model state dicts and
// Monte-Carlo result vectors under schema-versioned, budget-namespaced
// paths so bench binaries share work across processes: a warm second run
// of any bench loads its models and results instead of recomputing them,
// bit-identically (results round-trip through %.17g text, tensors
// through exact binary — DESIGN.md §11).
//
// Layout: <root>/v<schema>/<fast|full>/<bucket>/<key file>, where root
// is QAVAT_STORE_DIR (default "artifacts/store"), the schema directory
// pins kStoreSchemaVersion, and fast/full mirrors QAVAT_FAST — so a
// smoke-budget run can never collide with (or poison) full-budget
// artifacts, whatever the key says. QAVAT_STORE=0 disables all
// persistence. Writes go to a temp file in the destination directory and
// are published with an atomic rename, so readers never observe a
// partial file. Every operation is fail-soft — a missing, truncated,
// corrupt or unwritable artifact reads as a miss and the caller
// recomputes; a corrupt artifact is additionally moved to
// <root>/quarantine/ so it is retrained instead of re-served.
//
// The store is also the fleet coordination substrate (DESIGN.md §14):
// store_try_claim() implements a lease-based work-claim protocol
// (atomic `<key>.claim` files carrying pid/host/heartbeat, TTL-based
// stale reclaim, exponential backoff for waiters) so N processes — or
// hosts sharing a filesystem — can chew one scenario manifest without
// duplicating training. QAVAT_STORE_FAULT injects deterministic faults
// (kill-mid-publish, torn writes, ENOSPC, read corruption) at the
// points listed under StoreFault so the recovery paths are testable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/serialize.h"

namespace qavat {

/// Directory-layout schema version (the "v1" path component); bump
/// together with any incompatible change to what the buckets hold.
inline constexpr int kStoreSchemaVersion = 1;

/// Exit code a process dies with when the kill_before_rename fault
/// fires (the fault calls _exit with this value after the tmp write,
/// before the publishing rename), so tests can tell an injected kill
/// from a real crash.
inline constexpr int kFaultKillExitCode = 42;

/// True unless QAVAT_STORE=0 (or any value whose first char is '0').
/// Re-read from the environment on every call so tests can toggle it.
bool store_enabled();

/// Store root: QAVAT_STORE_DIR, or "artifacts/store" (relative to the
/// working directory) when unset/empty.
std::string store_root();

/// Quarantine directory (<root>/quarantine) corrupt artifacts are moved
/// into on load failure. Outside the v<schema> subtree, so
/// store_drop_all never deletes the evidence; `qavat-store gc
/// --evict-quarantine` empties it.
std::string store_quarantine_dir();

/// Filename a key maps to inside a bucket: the key itself when it is
/// filesystem-safe and short, otherwise a sanitized prefix plus an
/// FNV-1a hash suffix (stable across processes).
std::string store_key_filename(const std::string& key);

/// What a load probe actually observed, for callers that must tell a
/// plain miss from a corrupt artifact (the latter was quarantined and
/// the recompute counts as a retrain-after-corruption).
enum class StoreLoadOutcome {
  kHit,      ///< artifact present and valid
  kMiss,     ///< no artifact (or store disabled)
  kCorrupt,  ///< artifact present but failed validation; quarantined
};

/// Load a persisted double vector (results bucket). Returns false on
/// disabled store, missing key or malformed file; a malformed file is
/// moved to quarantine and reported via *outcome (optional).
bool store_load_doubles(const char* bucket, const std::string& key,
                        std::vector<double>* out,
                        StoreLoadOutcome* outcome = nullptr);

/// Persist a double vector with round-trip-exact (%.17g) text encoding
/// and an atomic rename. Returns false (counting writes_failed, with a
/// once-per-process stderr warning) when the store is disabled or the
/// write fails.
bool store_save_doubles(const char* bucket, const std::string& key,
                        const std::vector<double>& values);

/// Load a persisted state dict (models bucket). Returns false on
/// disabled store, missing key or malformed/corrupt file; a corrupt
/// file is moved to quarantine and reported via *outcome (optional).
bool store_load_state(const char* bucket, const std::string& key,
                      StateDict* out, StoreLoadOutcome* outcome = nullptr);

/// Persist a state dict (binary, checksummed) with an atomic rename.
/// Returns false when the store is disabled or the write fails.
bool store_save_state(const char* bucket, const std::string& key,
                      const StateDict& sd);

/// Cheap existence probe: true when an artifact file is published for
/// (bucket, key). No content validation, no quarantine side effects —
/// the claim-aware scheduler and `qavat-sweep --dry-run` use it to
/// classify units without paying a full load (a published-but-corrupt
/// artifact reads "present" here and is handled by the load path's
/// quarantine-and-recompute when actually consumed). False when the
/// store is disabled.
bool store_has(const char* bucket, const std::string& key);

/// Non-destructive work-claim probe: true when a claim file exists for
/// (bucket, key) whose age is younger than the TTL — i.e. a live holder
/// is producing the artifact right now and skipping to other work is
/// productive. An absent or stale claim (reclaimable immediately), or a
/// disabled store, reads false. Never creates, refreshes or reclaims
/// anything — the scheduler's look-before-you-claim primitive.
bool store_claim_busy(const char* bucket, const std::string& key);

/// Delete every artifact under this schema's namespace
/// (<root>/v<schema>/, both fast and full). Used by
/// clear_experiment_caches(drop_disk=true); never touches anything
/// outside the versioned subtree (quarantine survives).
void store_drop_all();

// ------------------------------------------------------------ statistics

/// Snapshot of the store's per-category operation counters (atomic,
/// process-wide). Replaces the old single-shot write warning: the first
/// failed write still warns on stderr once, but every category stays
/// countable and is printed in the `[qavat-store]` session summary.
struct StoreStats {
  long long writes_failed = 0;      ///< artifact writes that failed
  long long loads_corrupt = 0;      ///< loads rejected + quarantined
  long long claims_reclaimed = 0;   ///< stale leases taken over
  long long retrains_after_corruption = 0;  ///< recomputes forced by a
                                            ///< corrupt artifact
  long long tmp_swept = 0;          ///< orphaned .tmp files removed
  long long faults_injected = 0;    ///< QAVAT_STORE_FAULT firings
};

/// Current counter values.
StoreStats store_stats();

/// Zero every counter (tests).
void store_stats_reset();

/// Count one recompute that was forced by a corrupt artifact (called by
/// the read-through caches when a claim-or-load round saw kCorrupt and
/// then recomputed the unit).
void store_note_retrain_after_corruption();

// ------------------------------------------------- work-claim protocol

/// Why store_try_claim() returned without the lease (or with it) —
/// waiters must tell "someone else is producing this" (keep backing
/// off) from "claims cannot exist here" (stop waiting and compute
/// locally, preserving the store's fail-soft contract).
enum class StoreClaimStatus {
  kAcquired,     ///< the returned claim is held
  kBusy,         ///< a live holder's lease was observed (or the store
                 ///< is disabled); backing off is productive
  kUnavailable,  ///< the claim file can never be created here (EACCES,
                 ///< read-only root, persistent ENOSPC, ...); waiting
                 ///< would hang forever
};

/// RAII lease on the right to produce one artifact. Obtained via
/// store_try_claim(); while held, a background heartbeat thread
/// refreshes the claim file every TTL/3 so live holders are never
/// reclaimed, however long training takes. Every refresh first
/// verifies the file still carries this claim's token — a holder that
/// stalled past its TTL and was reclaimed marks itself lost instead of
/// truncating the new holder's lease. The destructor (or release())
/// removes the claim file under the same token check.
class StoreClaim {
 public:
  StoreClaim();
  ~StoreClaim();
  /// Moveable, not copyable (a lease has one owner).
  StoreClaim(StoreClaim&& other) noexcept;
  StoreClaim& operator=(StoreClaim&& other) noexcept;

  /// True while this object owns the lease.
  bool held() const { return impl_ != nullptr; }

  /// Drop the lease now (idempotent; also run by the destructor).
  void release();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  friend StoreClaim store_try_claim(const char* bucket,
                                    const std::string& key,
                                    StoreClaimStatus* status);
};

/// Try to acquire the work-claim lease for (bucket, key): atomically
/// create `<key file>.claim` (O_CREAT|O_EXCL) carrying pid, host and a
/// heartbeat counter. If a claim file already exists but its mtime is
/// older than the TTL (QAVAT_CLAIM_TTL_S, default 120 s — a crashed
/// holder stops heartbeating), the stale lease is reclaimed via an
/// atomic rename (exactly one of several racing reclaimers wins) and
/// acquisition is retried. Returns a non-held claim when another live
/// process holds the lease or the store is disabled; `*status`
/// (optional) additionally distinguishes a live holder (kBusy) from a
/// store where claims can never be created (kUnavailable — any open()
/// failure other than EEXIST, or a stale reclaim rename that fails for
/// a reason other than losing the race). Callers loop: probe the
/// artifact, try_claim, on kBusy back off with
/// store_claim_backoff_wait(), and on kUnavailable fall through to
/// computing locally.
StoreClaim store_try_claim(const char* bucket, const std::string& key,
                           StoreClaimStatus* status = nullptr);

/// Sleep for the waiter backoff of round `attempt`: exponential
/// (QAVAT_CLAIM_BACKOFF_MS base, default 25 ms, doubling per round,
/// capped at 2 s) with ±25% per-process jitter so a fleet of waiters
/// doesn't stampede the filesystem in lockstep.
void store_claim_backoff_wait(int attempt);

/// Lease TTL in seconds (QAVAT_CLAIM_TTL_S, default 120; fractional
/// values allowed, 0 makes every existing claim immediately stale).
/// Re-read from the environment on every call.
double store_claim_ttl_seconds();

/// Base waiter backoff in milliseconds (QAVAT_CLAIM_BACKOFF_MS,
/// default 25). Re-read from the environment on every call.
long long store_claim_backoff_ms();

// ------------------------------------------------------ fault injection

/// Deterministic fault-injection points, armed via
/// QAVAT_STORE_FAULT="kind:N[,kind:N...]" where N is the 1-based count
/// of the matching operation at which the fault fires, once per entry
/// (repeat an entry to fire again later). Parsed lazily at first store
/// operation; call store_fault_reload() after changing the variable
/// mid-process.
enum class StoreFault {
  kKillBeforeRename,  ///< _exit(kFaultKillExitCode) after the tmp write,
                      ///< before the publishing rename (crash mid-write)
  kTornWrite,         ///< publish only the first half of the payload
                      ///< (torn write survives the atomic rename)
  kEnospc,            ///< fail the tmp write as if the disk were full
  kCorruptRead,       ///< flip one byte of the bytes read back from disk
                      ///< (bit-rot / short read; fails the checksum)
};

/// Re-parse QAVAT_STORE_FAULT and reset all trigger counters (tests
/// toggle faults between phases with setenv + this call).
void store_fault_reload();

// ---------------------------------------------------------- maintenance

/// What one store_gc() pass removed.
struct StoreGcResult {
  long long tmp_removed = 0;         ///< orphaned .tmp.<pid> files
  long long claims_removed = 0;      ///< stale .claim / .reclaim files
  long long quarantine_removed = 0;  ///< quarantined artifacts evicted
};

/// Garbage-collect the schema subtree: remove `.tmp.` files and
/// `.claim`/`.reclaim` files older than `min_age_s` seconds (pass the
/// claim TTL to keep live writers/leases safe), and — with
/// `evict_quarantine` — every quarantined artifact older than the same
/// age. Also runs opportunistically once per process at the first store
/// operation, with min_age = the claim TTL, so a crashed writer's tmp
/// droppings never accumulate forever.
StoreGcResult store_gc(double min_age_s, bool evict_quarantine);

/// What a store_verify_all() walk found.
struct StoreVerifyResult {
  long long ok = 0;                        ///< artifacts that validate
  long long corrupt = 0;                   ///< artifacts that do not
  std::vector<std::string> corrupt_paths;  ///< paths of the corrupt ones
};

/// Walk every artifact under the schema subtree and validate it
/// end-to-end (envelope magic/version/size/checksum for state dicts,
/// header + full value parse for double vectors; the format is sniffed
/// from the leading bytes). With `quarantine_bad`, corrupt artifacts
/// are moved to quarantine so the next consumer retrains instead of
/// tripping over them.
StoreVerifyResult store_verify_all(bool quarantine_bad);

/// Delete every artifact (not claims/tmp — store_gc owns those) older
/// than `seconds` under the schema subtree; returns the number removed.
long long store_evict_older_than(double seconds);

}  // namespace qavat
