#include "tensor/workspace.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <thread>

namespace qavat {

namespace {

std::size_t this_thread_key() {
  // Nonzero hash of the calling thread's id (0 is the "no driver"
  // sentinel).
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h == 0 ? std::size_t{1} : h;
}

}  // namespace

Workspace::DriverScope::DriverScope(Workspace& ws) : ws_(ws) {
  const std::size_t self = this_thread_key();
  if (ws_.scope_depth_.fetch_add(1, std::memory_order_relaxed) == 0) {
    ws_.driver_.store(self, std::memory_order_relaxed);
  } else if (ws_.driver_.load(std::memory_order_relaxed) != self) {
    std::fprintf(stderr,
                 "qavat: Workspace driver violation: a second thread opened a "
                 "DriverScope while another thread's pass is live (one "
                 "workspace = one driver thread; see tensor/workspace.h)\n");
    std::abort();
  }
}

Workspace::DriverScope::~DriverScope() {
  if (ws_.scope_depth_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    ws_.driver_.store(0, std::memory_order_relaxed);
  }
}

void Workspace::check_driver(const char* what) const {
  if (scope_depth_.load(std::memory_order_relaxed) > 0 &&
      driver_.load(std::memory_order_relaxed) != this_thread_key()) {
    std::fprintf(stderr,
                 "qavat: Workspace driver violation: %s called from a thread "
                 "other than the live DriverScope's driver (pool workers must "
                 "not touch the arena; pre-acquire scratch serially — see "
                 "tensor/workspace.h)\n",
                 what);
    std::abort();
  }
}

Tensor& Workspace::acquire(const void* owner, int slot,
                           std::vector<index_t> shape) {
  check_driver("acquire");
  Entry& e = slots_[{owner, slot}];
  // Re-sync from the tensor's CURRENT size before subtracting: a caller
  // may have resized the borrowed tensor after the last acquire (e.g. a
  // kernel sizing its own output), and subtracting a stale record would
  // underflow the counter.
  retained_bytes_ -= e.bytes;
  e.t.resize_for_overwrite(std::move(shape));
  e.tick = ++clock_;
  e.bytes = static_cast<std::size_t>(e.t.size()) * sizeof(float);
  retained_bytes_ += e.bytes;
  return e.t;
}

void Workspace::trim(std::size_t cap_bytes) {
  check_driver("trim");
  // Refresh byte records first (callers may have grown borrowed tensors
  // since their acquire), so the cap applies to what is actually held.
  std::size_t total = 0;
  for (auto& kv : slots_) {
    kv.second.bytes = static_cast<std::size_t>(kv.second.t.size()) * sizeof(float);
    total += kv.second.bytes;
  }
  retained_bytes_ = total;
  while (retained_bytes_ > cap_bytes && !slots_.empty()) {
    auto lru = slots_.begin();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.tick < lru->second.tick) lru = it;
    }
    retained_bytes_ -= lru->second.bytes;
    slots_.erase(lru);
  }
}

void Workspace::release(const void* owner) {
  // Keys sort by owner pointer first, so the owner's slots are one
  // contiguous map range. retained_bytes_ is the sum of the recorded
  // per-entry shares, so subtracting each record keeps it exact.
  auto it = slots_.lower_bound({owner, std::numeric_limits<int>::min()});
  while (it != slots_.end() && it->first.first == owner) {
    retained_bytes_ -= it->second.bytes;
    it = slots_.erase(it);
  }
}

std::size_t Workspace::cap_bytes_from_env() {
  static const std::size_t cap = [] {
    const char* env = std::getenv("QAVAT_WORKSPACE_MB");
    long mb = 256;
    if (env != nullptr) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) mb = v;
    }
    return static_cast<std::size_t>(mb) * (std::size_t{1} << 20);
  }();
  return cap;
}

}  // namespace qavat
