#include "tensor/workspace.h"

#include <cstdlib>
#include <limits>

namespace qavat {

Tensor& Workspace::acquire(const void* owner, int slot,
                           std::vector<index_t> shape) {
  Entry& e = slots_[{owner, slot}];
  // Re-sync from the tensor's CURRENT size before subtracting: a caller
  // may have resized the borrowed tensor after the last acquire (e.g. a
  // kernel sizing its own output), and subtracting a stale record would
  // underflow the counter.
  retained_bytes_ -= e.bytes;
  e.t.resize_for_overwrite(std::move(shape));
  e.tick = ++clock_;
  e.bytes = static_cast<std::size_t>(e.t.size()) * sizeof(float);
  retained_bytes_ += e.bytes;
  return e.t;
}

void Workspace::trim(std::size_t cap_bytes) {
  // Refresh byte records first (callers may have grown borrowed tensors
  // since their acquire), so the cap applies to what is actually held.
  std::size_t total = 0;
  for (auto& kv : slots_) {
    kv.second.bytes = static_cast<std::size_t>(kv.second.t.size()) * sizeof(float);
    total += kv.second.bytes;
  }
  retained_bytes_ = total;
  while (retained_bytes_ > cap_bytes && !slots_.empty()) {
    auto lru = slots_.begin();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.tick < lru->second.tick) lru = it;
    }
    retained_bytes_ -= lru->second.bytes;
    slots_.erase(lru);
  }
}

void Workspace::release(const void* owner) {
  // Keys sort by owner pointer first, so the owner's slots are one
  // contiguous map range. retained_bytes_ is the sum of the recorded
  // per-entry shares, so subtracting each record keeps it exact.
  auto it = slots_.lower_bound({owner, std::numeric_limits<int>::min()});
  while (it != slots_.end() && it->first.first == owner) {
    retained_bytes_ -= it->second.bytes;
    it = slots_.erase(it);
  }
}

std::size_t Workspace::cap_bytes_from_env() {
  static const std::size_t cap = [] {
    const char* env = std::getenv("QAVAT_WORKSPACE_MB");
    long mb = 256;
    if (env != nullptr) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) mb = v;
    }
    return static_cast<std::size_t>(mb) * (std::size_t{1} << 20);
  }();
  return cap;
}

}  // namespace qavat
