// Integer GEMM + requantization kernels for the int8 inference backend
// (DESIGN.md §12). s8 x s8 -> s32 in the same NT layout as the float path
// (A {m,k} row-major activations, B {n,k} row-major weight rows), register
// tiled, with parallel_for row partitioning. Integer accumulation is
// associative, so results are bit-identical for ANY thread count and for
// any register-tile schedule — stronger than the float contract, which
// only pins one schedule.
//
// Two kernel modes share one packed-B format chosen at runtime:
//  * AVX-512 VNNI (when compiled in and supported): B packed per 16-column
//    tile into k-groups of 4 interleaved bytes, A biased to u8 by +128 and
//    the bias removed exactly via precomputed B row sums.
//  * Portable: plain omp-simd dot products on the unpacked s8 rows.
// The packed-B layout is MODE-SPECIFIC: a buffer produced by pack_b_s8()
// is only valid for the mode active when it was packed (see
// detail::set_int8_force_portable).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace qavat {

/// Bytes required for pack_b_s8()'s packed image of a {n, k} s8 weight
/// matrix under the currently active kernel mode. Always >= 1 so a
/// zero-sized matrix still has a valid (unused) buffer address.
index_t packed_b_s8_bytes(index_t n, index_t k);

/// Pack B {n, k} (s8 row-major weight rows, NT layout) into `packed`
/// (>= packed_b_s8_bytes(n, k) bytes, 4-byte aligned) and write the per-row
/// code sums into row_sums[0..n) — used by the VNNI kernel's u8 bias
/// correction and by callers folding activation zero-points
/// (acc + zero_point * row_sums[j] shifts u8 codes back to signed).
void pack_b_s8(const std::int8_t* b, index_t n, index_t k, void* packed,
               std::int32_t* row_sums);

/// C {m, n} (s32) = A {m, k} (s8) * B^T where `packed`/`row_sums` came from
/// pack_b_s8 on B {n, k} under the SAME kernel mode. This is the fast path
/// for weights reused across many activation batches (the per-chip plane
/// cache): per-call work is one u8 repack of A plus the multiply.
void gemm_s8s8_s32_prepacked(const std::int8_t* a, const void* packed,
                             const std::int32_t* row_sums, std::int32_t* c,
                             index_t m, index_t k, index_t n);

/// Self-contained C {m, n} (s32) = A {m, k} (s8) * B {n, k} (s8)^T — packs
/// B into thread-local scratch, then runs the prepacked kernel. Same exact
/// integer result as the prepacked form.
void gemm_s8s8_s32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                   index_t m, index_t k, index_t n);

/// out[i] = clamp(nearbyint(x[i] * inv_scale) + bias, lo, hi) as s8, for
/// i in [0, count). nearbyint (round-half-to-even) matches the float
/// quantizers, so grid values x = scale * q with |q| <= 255 recover q
/// exactly. [lo, hi] must lie within [-128, 127]. Thread-count
/// deterministic (pure elementwise).
void quantize_to_s8(const float* x, index_t count, float inv_scale,
                    std::int32_t bias, std::int32_t lo, std::int32_t hi,
                    std::int8_t* out);

/// gemmlowp-style fixed-point representation of a positive real multiplier:
/// value ~= multiplier * 2^-shift with multiplier in [2^30, 2^31) — i.e. a
/// Q31 mantissa — so requantize_one() needs only one 64-bit multiply and a
/// round-half-away shift.
struct RequantScale {
  /// Q31 mantissa in [2^30, 2^31).
  std::int32_t multiplier = 0;
  /// Right-shift applied after the 64-bit multiply; >= 0 for any
  /// real multiplier < 2^31.
  int shift = 0;
};

/// Decompose `scale` (finite, in [2^-24, 2^31) — throws
/// std::invalid_argument otherwise) into the multiplier/shift pair. Exact
/// when scale is a dyadic rational with a <= 31-bit mantissa; nearest
/// representable otherwise.
RequantScale requant_scale(double scale);

/// round-half-away-from-zero(acc * rs) saturated to int32. Ties (an exact
/// .5 after the multiply) round away from zero, per the gemmlowp output
/// pipeline — deliberately different from quantize_to_s8's half-to-even.
std::int32_t requantize_one(std::int32_t acc, const RequantScale& rs);

/// out[i] = clamp(requantize_one(acc[i], rs) + zero_point, -128, 127) as
/// s8 over [0, count): the full int32 accumulator -> next-layer activation
/// grid step for a pure-integer chain. Thread-count deterministic.
void requantize_s32_s8(const std::int32_t* acc, index_t count,
                       const RequantScale& rs, std::int32_t zero_point,
                       std::int8_t* out);

namespace detail {
/// True when the AVX-512 VNNI kernel is compiled in and not overridden —
/// i.e. the mode pack_b_s8 / gemm_s8s8_s32_prepacked currently use.
bool int8_kernel_is_vnni();

/// Test hook: force the portable kernel even when VNNI is available (used
/// to assert both kernels produce identical integers). Packed-B buffers do
/// NOT survive a mode flip — only toggle between complete GEMM + pack
/// cycles, never while a packed plane is live.
void set_int8_force_portable(bool on);

/// Human-readable name of the active kernel mode ("avx512-vnni" or
/// "portable"), for bench output.
const char* int8_kernel_name();
}  // namespace detail

}  // namespace qavat
