#include "tensor/tensor.h"

#include <cmath>

namespace qavat {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t x = seed ^ (0xd1b54a32d192ed03ULL * (stream + 1));
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform(double lo, double hi) {
  const double u =
      static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  return lo + u * (hi - lo);
}

double Rng::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  double u1 = uniform(0.0, 1.0);
  while (u1 <= 1e-300) u1 = uniform(0.0, 1.0);
  const double u2 = uniform(0.0, 1.0);
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

index_t Rng::below(index_t n) {
  return n <= 0 ? 0 : static_cast<index_t>(next_u64() % static_cast<std::uint64_t>(n));
}

Tensor::Tensor(std::vector<index_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(numel(shape_)), 0.0f);
}

Tensor::Tensor(std::vector<index_t> shape, float fill) : Tensor(std::move(shape)) {
  this->fill(fill);
}

void Tensor::reshape(std::vector<index_t> shape) {
  assert(numel(shape) == size());
  shape_ = std::move(shape);
}

void Tensor::resize(std::vector<index_t> shape) {
  shape_ = std::move(shape);
  data_.assign(static_cast<std::size_t>(numel(shape_)), 0.0f);
}

void Tensor::resize_for_overwrite(std::vector<index_t> shape) {
  shape_ = std::move(shape);
  data_.resize(static_cast<std::size_t>(numel(shape_)));
}

void Tensor::zero() { fill(0.0f); }

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace qavat
