#include "tensor/ops.h"

#include <cassert>
#include <cmath>

namespace qavat {

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1));
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (index_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (index_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (index_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      pc[i * n + j] = acc;
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(0) == b.dim(0));
  const index_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (index_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (index_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void fill_normal(Tensor& t, Rng& rng) { fill_normal(t, rng, 0.0, 1.0); }

void fill_normal(Tensor& t, Rng& rng, double mean, double stddev) {
  float* p = t.data();
  for (index_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
}

void fill_uniform(Tensor& t, Rng& rng, double lo, double hi) {
  float* p = t.data();
  for (index_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

void relu_inplace(Tensor& x, Tensor* mask) {
  if (mask != nullptr) mask->resize(x.shape());
  float* p = x.data();
  float* m = mask != nullptr ? mask->data() : nullptr;
  for (index_t i = 0; i < x.size(); ++i) {
    const bool pos = p[i] > 0.0f;
    if (!pos) p[i] = 0.0f;
    if (m != nullptr) m[i] = pos ? 1.0f : 0.0f;
  }
}

double softmax_xent(const Tensor& logits, const std::vector<index_t>& labels,
                    Tensor* grad, index_t* correct) {
  assert(logits.ndim() == 2);
  const index_t n = logits.dim(0), c = logits.dim(1);
  assert(static_cast<index_t>(labels.size()) == n);
  if (grad != nullptr) grad->resize(logits.shape());
  double loss = 0.0;
  index_t hits = 0;
  const float* pl = logits.data();
  for (index_t i = 0; i < n; ++i) {
    const float* row = pl + i * c;
    float mx = row[0];
    index_t arg = 0;
    for (index_t j = 1; j < c; ++j) {
      if (row[j] > mx) {
        mx = row[j];
        arg = j;
      }
    }
    if (arg == labels[static_cast<std::size_t>(i)]) ++hits;
    double z = 0.0;
    for (index_t j = 0; j < c; ++j) z += std::exp(static_cast<double>(row[j] - mx));
    const index_t y = labels[static_cast<std::size_t>(i)];
    const double logp = static_cast<double>(row[y] - mx) - std::log(z);
    loss -= logp;
    if (grad != nullptr) {
      float* grow = grad->data() + i * c;
      for (index_t j = 0; j < c; ++j) {
        const double p = std::exp(static_cast<double>(row[j] - mx)) / z;
        grow[j] = static_cast<float>((p - (j == y ? 1.0 : 0.0)) /
                                     static_cast<double>(n));
      }
    }
  }
  if (correct != nullptr) *correct = hits;
  return loss / static_cast<double>(n);
}

}  // namespace qavat
