#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/parallel_for.h"

// SIMD hints for the inner loops. -fopenmp-simd (no OpenMP runtime) turns
// these into vectorization directives; without it they expand to nothing
// and the plain loops still auto-vectorize where the compiler can prove it.
#if defined(QAVAT_OMP_SIMD)
#define QAVAT_PRAGMA(x) _Pragma(#x)
#define QAVAT_SIMD QAVAT_PRAGMA(omp simd)
#else
#define QAVAT_SIMD
#endif

namespace qavat {

namespace {

// ---------------------------------------------------------------- checks

std::string shape_str(const Tensor& t) {
  std::ostringstream os;
  os << "{";
  for (int i = 0; i < t.ndim(); ++i) os << (i ? "," : "") << t.dim(i);
  os << "}";
  return os.str();
}

// Always-on (independent of NDEBUG): a mismatched GEMM must fail loudly
// in Release builds instead of silently reading out of bounds.
void check_gemm_2d(const char* name, const Tensor& a, const Tensor& b,
                   int a_match, int b_match) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument(std::string(name) + ": operands must be 2-D, got " +
                                shape_str(a) + " and " + shape_str(b));
  }
  if (a.dim(a_match) != b.dim(b_match)) {
    throw std::invalid_argument(std::string(name) + ": inner dimensions differ, got " +
                                shape_str(a) + " and " + shape_str(b));
  }
}

// ---------------------------------------------------------------- kernels
//
// All cores operate on a row range [i0, i1) of the output and are pure
// serial code; parallel_for splits rows across threads with boundaries
// aligned to kRowBlock, so each row is always processed by the same code
// path (block vs. remainder) with the same per-element operation order —
// the bit-identity guarantee in ops.h.

constexpr index_t kRowBlock = 4;   // register-blocked output rows
constexpr index_t kJTile = 32;     // C columns accumulated in registers
constexpr index_t kMinMacsPerChunk = index_t{1} << 19;  // thread grain target
constexpr index_t kSerialMacs = index_t{1} << 21;       // below: never fork

// 4 x kJTile register tile shared by all three GEMM kernels: the C tile
// stays in vector registers across the whole contraction, the p-th B row
// slice is read at `pb + p*bstride + bj0`, and the per-element
// accumulation order (ascending p from 0.0f) matches a naive triple loop.
// `LoadA` maps (p, r) to the A element for C row i+r — the only
// difference between the NN (row-major A) and TN (transposed A) kernels;
// the NT kernel feeds a transposed-packed B panel instead.
//
// When `Acc` is set the accumulators initialize from C instead of 0.0f,
// so the per-element chain CONTINUES from C's value: splitting the
// contraction dimension into segments and chaining Acc calls is
// bit-identical to one full-width pass. That exact-reassociation
// property is what makes the crossbar column-tiling (pim/tiling.h)
// bit-identical to an untiled readout.
template <index_t JR, bool Acc, typename LoadA>
inline void mul_tile4(const LoadA& load_a, const float* pb, index_t bstride,
                      index_t bj0, float* pc, index_t i, index_t j0, index_t jr,
                      index_t k, index_t n) {
  float acc0[JR], acc1[JR], acc2[JR], acc3[JR];
  if (Acc) {
    const float* c0 = pc + (i + 0) * n + j0;
    const float* c1 = pc + (i + 1) * n + j0;
    const float* c2 = pc + (i + 2) * n + j0;
    const float* c3 = pc + (i + 3) * n + j0;
    for (index_t jj = 0; jj < jr; ++jj) {
      acc0[jj] = c0[jj];
      acc1[jj] = c1[jj];
      acc2[jj] = c2[jj];
      acc3[jj] = c3[jj];
    }
  } else {
    for (index_t jj = 0; jj < jr; ++jj) {
      acc0[jj] = acc1[jj] = acc2[jj] = acc3[jj] = 0.0f;
    }
  }
  for (index_t p = 0; p < k; ++p) {
    const float* brow = pb + p * bstride + bj0;
    const float av0 = load_a(p, 0), av1 = load_a(p, 1);
    const float av2 = load_a(p, 2), av3 = load_a(p, 3);
    QAVAT_SIMD
    for (index_t jj = 0; jj < jr; ++jj) {
      acc0[jj] += av0 * brow[jj];
      acc1[jj] += av1 * brow[jj];
      acc2[jj] += av2 * brow[jj];
      acc3[jj] += av3 * brow[jj];
    }
  }
  float* c0 = pc + (i + 0) * n + j0;
  float* c1 = pc + (i + 1) * n + j0;
  float* c2 = pc + (i + 2) * n + j0;
  float* c3 = pc + (i + 3) * n + j0;
  for (index_t jj = 0; jj < jr; ++jj) {
    c0[jj] = acc0[jj];
    c1[jj] = acc1[jj];
    c2[jj] = acc2[jj];
    c3[jj] = acc3[jj];
  }
}

// Single-row remainder of the tile kernel, same accumulation order.
template <index_t JR, bool Acc, typename LoadA>
inline void mul_tile1(const LoadA& load_a, const float* pb, index_t bstride,
                      index_t bj0, float* pc, index_t i, index_t j0, index_t jr,
                      index_t k, index_t n) {
  float acc[JR];
  if (Acc) {
    const float* crow = pc + i * n + j0;
    for (index_t jj = 0; jj < jr; ++jj) acc[jj] = crow[jj];
  } else {
    for (index_t jj = 0; jj < jr; ++jj) acc[jj] = 0.0f;
  }
  for (index_t p = 0; p < k; ++p) {
    const float* brow = pb + p * bstride + bj0;
    const float av = load_a(p, 0);
    QAVAT_SIMD
    for (index_t jj = 0; jj < jr; ++jj) acc[jj] += av * brow[jj];
  }
  float* crow = pc + i * n + j0;
  for (index_t jj = 0; jj < jr; ++jj) crow[jj] = acc[jj];
}

// Tile sweep over one C row band [i, i+rows) for C columns [j0, j0+jr);
// `rows` is 4 or the final remainder. Full-width (32) and half-width (16)
// tiles run with compile-time constant trip counts so the accumulators
// stay in registers — the 16-wide case is the narrow-fan-out conv/linear
// layers (cout 16), where a 32-wide tile would waste half its lanes.
// JR only sizes the accumulator array; the per-element accumulation
// order (ascending p) is identical across instantiations.
template <bool Acc = false, typename LoadA>
void mul_band(const LoadA& load_a, const float* pb, index_t bstride,
              index_t bj0, float* pc, index_t i, index_t rows, index_t j0,
              index_t jr, index_t k, index_t n) {
  if (rows == kRowBlock) {
    if (jr == kJTile) {
      mul_tile4<kJTile, Acc>(load_a, pb, bstride, bj0, pc, i, j0, kJTile, k, n);
    } else if (jr == kJTile / 2) {
      mul_tile4<kJTile / 2, Acc>(load_a, pb, bstride, bj0, pc, i, j0, jr, k, n);
    } else {
      mul_tile4<kJTile, Acc>(load_a, pb, bstride, bj0, pc, i, j0, jr, k, n);
    }
  } else {
    for (index_t r = 0; r < rows; ++r) {
      const index_t ir = i + r;
      auto load_r = [&](index_t p, index_t) { return load_a(p, r); };
      if (jr == kJTile) {
        mul_tile1<kJTile, Acc>(load_r, pb, bstride, bj0, pc, ir, j0, kJTile, k, n);
      } else if (jr == kJTile / 2) {
        mul_tile1<kJTile / 2, Acc>(load_r, pb, bstride, bj0, pc, ir, j0, jr, k, n);
      } else {
        mul_tile1<kJTile, Acc>(load_r, pb, bstride, bj0, pc, ir, j0, jr, k, n);
      }
    }
  }
}

// C rows [i0,i1) = A rows * B  (A {m,k} row-major, B {k,n} row-major).
// Row bands outermost: the 4 A rows stay hot while B streams through.
void gemm_nn_rows(const float* pa, const float* pb, float* pc, index_t i0,
                  index_t i1, index_t k, index_t n) {
  index_t i = i0;
  for (; i + kRowBlock <= i1; i += kRowBlock) {
    const float* a0 = pa + i * k;
    auto load_a = [&](index_t p, index_t r) { return a0[r * k + p]; };
    for (index_t j0 = 0; j0 < n; j0 += kJTile) {
      const index_t jr = std::min(kJTile, n - j0);
      mul_band(load_a, pb, n, j0, pc, i, kRowBlock, j0, jr, k, n);
    }
  }
  if (i < i1) {
    const float* a0 = pa + i * k;
    auto load_a = [&](index_t p, index_t r) { return a0[r * k + p]; };
    for (index_t j0 = 0; j0 < n; j0 += kJTile) {
      const index_t jr = std::min(kJTile, n - j0);
      mul_band(load_a, pb, n, j0, pc, i, i1 - i, j0, jr, k, n);
    }
  }
}

// Transpose one kJTile-column panel of B {n, k} into a packed {k, kJTile}
// buffer so the register-tile kernel runs at full SIMD width. The pack
// depends only on (B, j0), never on the row range, so results stay
// thread-count independent no matter who packs.
void pack_nt_panel(const float* pb, index_t k, index_t j0, index_t jr,
                   float* pk) {
  for (index_t jj = 0; jj < jr; ++jj) {
    const float* brow = pb + (j0 + jj) * k;
    for (index_t p = 0; p < k; ++p) pk[p * kJTile + jj] = brow[p];
  }
}

// C rows [i0,i1) = A rows * B_packed^T over one packed panel; with Acc
// the per-element chain continues from C's current values.
template <bool Acc = false>
void gemm_nt_panel_rows(const float* pa, const float* pk, float* pc,
                        index_t i0, index_t i1, index_t j0, index_t jr,
                        index_t k, index_t n) {
  index_t i = i0;
  for (; i + kRowBlock <= i1; i += kRowBlock) {
    const float* a0 = pa + i * k;
    auto load_a = [&](index_t p, index_t r) { return a0[r * k + p]; };
    mul_band<Acc>(load_a, pk, kJTile, index_t{0}, pc, i, kRowBlock, j0, jr, k, n);
  }
  if (i < i1) {
    const float* a0 = pa + i * k;
    auto load_a = [&](index_t p, index_t r) { return a0[r * k + p]; };
    mul_band<Acc>(load_a, pk, kJTile, index_t{0}, pc, i, i1 - i, j0, jr, k, n);
  }
}

// C rows [i0,i1) = A rows * B^T  (A {m,k}, B {n,k}, both row-major),
// packing each panel locally — for callers that process the whole row
// range in one call (the grouped/batched paths pack once per group).
template <bool Acc = false>
void gemm_nt_rows(const float* pa, const float* pb, float* pc, index_t i0,
                  index_t i1, index_t k, index_t n) {
  // thread_local: reused across the many small NT GEMMs of an eval loop
  // without a heap allocation per call, and safe under parallel_for.
  thread_local std::vector<float> pack;
  pack.resize(static_cast<std::size_t>(k * kJTile));
  for (index_t j0 = 0; j0 < n; j0 += kJTile) {
    const index_t jr = std::min(kJTile, n - j0);
    pack_nt_panel(pb, k, j0, jr, pack.data());
    gemm_nt_panel_rows<Acc>(pa, pack.data(), pc, i0, i1, j0, jr, k, n);
  }
}

// C rows [i0,i1) = A^T rows * B  (A {k,m}, B {k,n}, both row-major).
void gemm_tn_rows(const float* pa, const float* pb, float* pc, index_t i0,
                  index_t i1, index_t k, index_t m, index_t n) {
  index_t i = i0;
  for (; i + kRowBlock <= i1; i += kRowBlock) {
    const float* a0 = pa + i;
    auto load_a = [&](index_t p, index_t r) { return a0[p * m + r]; };
    for (index_t j0 = 0; j0 < n; j0 += kJTile) {
      const index_t jr = std::min(kJTile, n - j0);
      mul_band(load_a, pb, n, j0, pc, i, kRowBlock, j0, jr, k, n);
    }
  }
  if (i < i1) {
    const float* a0 = pa + i;
    auto load_a = [&](index_t p, index_t r) { return a0[p * m + r]; };
    for (index_t j0 = 0; j0 < n; j0 += kJTile) {
      const index_t jr = std::min(kJTile, n - j0);
      mul_band(load_a, pb, n, j0, pc, i, i1 - i, j0, jr, k, n);
    }
  }
}

// Row-partition dispatch: grain sized so each chunk carries at least
// kMinMacsPerChunk of work, rounded up to kRowBlock so chunk boundaries
// never change a row's block-vs-remainder path.
template <typename Core>
void launch_rows(index_t m, index_t macs_per_row, Core&& core) {
  if (m <= 0) return;
  if (m * macs_per_row < kSerialMacs) {
    core(index_t{0}, m);
    return;
  }
  index_t grain =
      (kMinMacsPerChunk + macs_per_row - 1) / std::max<index_t>(1, macs_per_row);
  grain = ((std::max<index_t>(grain, 1) + kRowBlock - 1) / kRowBlock) * kRowBlock;
  parallel_for(index_t{0}, m, grain, core);
}

// Shared body of matmul_nt_into / matmul_nt_acc_into: serial cutoff,
// pack every B panel once up front so row-split worker threads share the
// transposed panels, then the row-partition sweep. One definition keeps
// the overwrite and accumulate paths schedule-identical — the chained
// bit-equality contract of the acc form depends on that.
template <bool Acc>
void gemm_nt_dispatch(const float* pa, const float* pb, float* pc, index_t m,
                      index_t k, index_t n) {
  if (m * k * n < kSerialMacs) {
    gemm_nt_rows<Acc>(pa, pb, pc, index_t{0}, m, k, n);
    return;
  }
  // thread_local (one buffer per Acc instantiation): reused by the many
  // same-shape NT GEMMs of an eval or training loop without a heap
  // allocation per call.
  const index_t npanels = (n + kJTile - 1) / kJTile;
  thread_local std::vector<float> pack;
  if (pack.size() < static_cast<std::size_t>(npanels * k * kJTile)) {
    pack.resize(static_cast<std::size_t>(npanels * k * kJTile));
  }
  for (index_t j0 = 0; j0 < n; j0 += kJTile) {
    pack_nt_panel(pb, k, j0, std::min(kJTile, n - j0),
                  pack.data() + (j0 / kJTile) * k * kJTile);
  }
  const float* pk_all = pack.data();
  launch_rows(m, k * n, [=](index_t i0, index_t i1) {
    for (index_t j0 = 0; j0 < n; j0 += kJTile) {
      gemm_nt_panel_rows<Acc>(pa, pk_all + (j0 / kJTile) * k * kJTile, pc, i0,
                              i1, j0, std::min(kJTile, n - j0), k, n);
    }
  });
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  check_gemm_2d("matmul", a, b, 1, 0);
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  c.resize_for_overwrite({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  launch_rows(m, k * n, [=](index_t i0, index_t i1) {
    gemm_nn_rows(pa, pb, pc, i0, i1, k, n);
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(a, b, c);
  return c;
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c) {
  check_gemm_2d("matmul_nt", a, b, 1, 1);
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  c.resize_for_overwrite({m, n});
  gemm_nt_dispatch<false>(a.data(), b.data(), c.data(), m, k, n);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_nt_into(a, b, c);
  return c;
}

void matmul_nt_acc_into(const Tensor& a, const Tensor& b, Tensor& c) {
  check_gemm_2d("matmul_nt_acc", a, b, 1, 1);
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (c.ndim() != 2 || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument(
        "matmul_nt_acc: C must be pre-sized to {m,n}, got " + shape_str(c) +
        " for " + shape_str(a) + " * " + shape_str(b) + "^T");
  }
  gemm_nt_dispatch<true>(a.data(), b.data(), c.data(), m, k, n);
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c) {
  check_gemm_2d("matmul_tn", a, b, 0, 0);
  const index_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  c.resize_for_overwrite({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  launch_rows(m, k * n, [=](index_t i0, index_t i1) {
    gemm_tn_rows(pa, pb, pc, i0, i1, k, m, n);
  });
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_tn_into(a, b, c);
  return c;
}

void matmul_nt_shared_into(const Tensor& a, const Tensor& b, index_t groups,
                           Tensor& c) {
  check_gemm_2d("matmul_nt_shared", a, b, 1, 1);
  if (groups < 1) {
    throw std::invalid_argument("matmul_nt_shared: groups must be >= 1");
  }
  if (b.dim(0) % groups != 0) {
    throw std::invalid_argument(
        "matmul_nt_shared: B rows not divisible by groups, got " + shape_str(b) +
        " with groups=" + std::to_string(groups));
  }
  const index_t rows = a.dim(0), k = a.dim(1), n = b.dim(0) / groups;
  c.resize_for_overwrite({groups * rows, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Each group goes through the full NT dispatch: a group big enough to
  // clear the serial cutoff splits its rows as a NESTED job on the same
  // pool, so group x row parallelism composes without oversubscription
  // (nested dispatches enqueue; the worker budget never multiplies).
  // Either split is bit-identical by the chunking contract.
  auto run = [=](index_t g0, index_t g1) {
    for (index_t g = g0; g < g1; ++g) {
      gemm_nt_dispatch<false>(pa, pb + g * n * k, pc + g * rows * n, rows, k, n);
    }
  };
  if (groups * rows * k * n < kSerialMacs) {
    run(index_t{0}, groups);  // too small to pay a pool dispatch
  } else {
    parallel_for(index_t{0}, groups, index_t{1}, run);
  }
}

Tensor matmul_nt_shared(const Tensor& a, const Tensor& b, index_t groups) {
  Tensor c;
  matmul_nt_shared_into(a, b, groups, c);
  return c;
}

void matmul_nt_batched_into(const Tensor& a, const Tensor& b, index_t groups,
                            Tensor& c) {
  check_gemm_2d("matmul_nt_batched", a, b, 1, 1);
  if (groups < 1) {
    throw std::invalid_argument("matmul_nt_batched: groups must be >= 1");
  }
  if (a.dim(0) % groups != 0 || b.dim(0) % groups != 0) {
    throw std::invalid_argument(
        "matmul_nt_batched: rows not divisible by groups, got " + shape_str(a) +
        " and " + shape_str(b) + " with groups=" + std::to_string(groups));
  }
  const index_t rows = a.dim(0) / groups;  // rows per group
  const index_t k = a.dim(1), n = b.dim(0) / groups;
  c.resize_for_overwrite({a.dim(0), n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Parallelize across groups with the same local row origin as a
  // standalone matmul_nt, so per-block results are bit-identical to
  // per-group calls. Each group runs the full NT dispatch: big groups
  // split their rows as a NESTED pool job (chip batch x GEMM rows share
  // one worker budget — nested dispatches enqueue, never spawn).
  auto run = [=](index_t g0, index_t g1) {
    for (index_t g = g0; g < g1; ++g) {
      gemm_nt_dispatch<false>(pa + g * rows * k, pb + g * n * k,
                              pc + g * rows * n, rows, k, n);
    }
  };
  if (groups * rows * k * n < kSerialMacs) {
    run(index_t{0}, groups);  // too small to pay a pool dispatch
  } else {
    parallel_for(index_t{0}, groups, index_t{1}, run);
  }
}

Tensor matmul_nt_batched(const Tensor& a, const Tensor& b, index_t groups) {
  Tensor c;
  matmul_nt_batched_into(a, b, groups, c);
  return c;
}

void fill_normal(Tensor& t, Rng& rng) { fill_normal(t, rng, 0.0, 1.0); }

void fill_normal(Tensor& t, Rng& rng, double mean, double stddev) {
  float* p = t.data();
  for (index_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
}

void fill_uniform(Tensor& t, Rng& rng, double lo, double hi) {
  float* p = t.data();
  for (index_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

void relu_inplace(Tensor& x, Tensor* mask) {
  if (mask != nullptr) mask->resize_for_overwrite(x.shape());
  float* p = x.data();
  float* m = mask != nullptr ? mask->data() : nullptr;
  parallel_for_elems(x.size(), [p, m](index_t i0, index_t i1) {
    if (m != nullptr) {
      for (index_t i = i0; i < i1; ++i) {
        const bool pos = p[i] > 0.0f;
        if (!pos) p[i] = 0.0f;
        m[i] = pos ? 1.0f : 0.0f;
      }
    } else {
      QAVAT_SIMD
      for (index_t i = i0; i < i1; ++i) {
        if (p[i] < 0.0f) p[i] = 0.0f;
      }
    }
  });
}

void scale(float* p, index_t n, float s) {
  parallel_for_elems(n, [p, s](index_t i0, index_t i1) {
    QAVAT_SIMD
    for (index_t i = i0; i < i1; ++i) p[i] *= s;
  });
}

void scale(Tensor& t, float s) { scale(t.data(), t.size(), s); }

double softmax_xent(const Tensor& logits, const std::vector<index_t>& labels,
                    Tensor* grad, index_t* correct) {
  assert(logits.ndim() == 2);
  const index_t n = logits.dim(0), c = logits.dim(1);
  assert(static_cast<index_t>(labels.size()) == n);
  if (grad != nullptr) grad->resize(logits.shape());
  double loss = 0.0;
  index_t hits = 0;
  const float* pl = logits.data();
  for (index_t i = 0; i < n; ++i) {
    const float* row = pl + i * c;
    float mx = row[0];
    index_t arg = 0;
    for (index_t j = 1; j < c; ++j) {
      if (row[j] > mx) {
        mx = row[j];
        arg = j;
      }
    }
    if (arg == labels[static_cast<std::size_t>(i)]) ++hits;
    double z = 0.0;
    for (index_t j = 0; j < c; ++j) z += std::exp(static_cast<double>(row[j] - mx));
    const index_t y = labels[static_cast<std::size_t>(i)];
    const double logp = static_cast<double>(row[y] - mx) - std::log(z);
    loss -= logp;
    if (grad != nullptr) {
      float* grow = grad->data() + i * c;
      for (index_t j = 0; j < c; ++j) {
        const double p = std::exp(static_cast<double>(row[j] - mx)) / z;
        grow[j] = static_cast<float>((p - (j == y ? 1.0 : 0.0)) /
                                     static_cast<double>(n));
      }
    }
  }
  if (correct != nullptr) *correct = hits;
  return loss / static_cast<double>(n);
}

}  // namespace qavat
