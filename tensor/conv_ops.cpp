#include "tensor/conv_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/parallel_for.h"

namespace qavat {

namespace {

// Thread grain targets, mirroring the GEMM constants in ops.cpp: chunks
// carry at least kMinElemsPerChunk elements of traffic and ranges below
// kSerialElems never fork. Both are pure functions of shape, so the
// fork-or-not decision (and therefore the code path) never depends on the
// thread count.
constexpr index_t kMinElemsPerChunk = index_t{1} << 15;
constexpr index_t kSerialElems = index_t{1} << 17;

inline index_t grain_for(index_t per_item) {
  return std::max<index_t>(1, (kMinElemsPerChunk + per_item - 1) / per_item);
}

// One im2col output row (one output position): gather the C*K*K window,
// zero-padding out-of-image taps, applying `xf` to every in-image value.
// KS is the compile-time kernel size (0 = runtime-sized fallback): with a
// constant trip count the per-tap loops fully unroll, which is what makes
// the gather bandwidth-bound instead of loop-overhead-bound at the small
// K (1/2/3/5) every model here uses. Interior positions (no clipping)
// take a branch-free path.
template <index_t KS, typename Xf>
inline void gather_row(const float* px, const ConvGeom& g, float* row,
                       index_t ni, index_t y, index_t xo, const Xf& xf) {
  const index_t k = KS > 0 ? KS : g.k;
  const index_t h = g.h, w = g.w, c = g.c;
  const index_t iy0 = y * g.stride - g.pad;
  const index_t ix0 = xo * g.stride - g.pad;
  if (iy0 >= 0 && iy0 + k <= h && ix0 >= 0 && ix0 + k <= w) {
    const float* base = px + ni * c * h * w + iy0 * w + ix0;
    for (index_t ci = 0; ci < c; ++ci) {
      const float* src = base + ci * h * w;
      float* dst = row + ci * k * k;
      for (index_t ky = 0; ky < k; ++ky) {
        const float* s = src + ky * w;
        float* d = dst + ky * k;
        for (index_t kx = 0; kx < k; ++kx) d[kx] = xf(s[kx]);
      }
    }
    return;
  }
  const index_t kx_lo = std::max<index_t>(0, -ix0);
  const index_t kx_hi = std::min<index_t>(k, w - ix0);
  for (index_t ci = 0; ci < c; ++ci) {
    const float* plane = px + (ni * c + ci) * h * w;
    for (index_t ky = 0; ky < k; ++ky) {
      float* dst = row + (ci * k + ky) * k;
      const index_t iy = iy0 + ky;
      if (iy < 0 || iy >= h) {
        for (index_t kx = 0; kx < k; ++kx) dst[kx] = 0.0f;
        continue;
      }
      // Index from the row base: ix0 can be negative, and forming
      // `plane + iy*w + ix0` would be an out-of-bounds pointer (UB) even
      // though only kx >= kx_lo is ever read.
      const float* srow = plane + iy * w;
      for (index_t kx = 0; kx < kx_lo; ++kx) dst[kx] = 0.0f;
      for (index_t kx = kx_lo; kx < kx_hi; ++kx) dst[kx] = xf(srow[ix0 + kx]);
      for (index_t kx = kx_hi; kx < k; ++kx) dst[kx] = 0.0f;
    }
  }
}

// Threaded sweep over im2col output rows [r0, r1). Each row is written by
// exactly one thread with a fixed gather order — bit-identical for any
// partition.
template <index_t KS, typename Xf>
void im2col_sweep(const Tensor& x, const ConvGeom& g, Tensor& cols,
                  const Xf& xf) {
  const index_t ckk = g.ckk(), rows = g.rows();
  cols.resize_for_overwrite({rows, ckk});
  const float* px = x.data();
  float* pc = cols.data();
  auto run = [&, px, pc](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const index_t ni = r / (g.oh * g.ow);
      const index_t rem = r - ni * g.oh * g.ow;
      gather_row<KS>(px, g, pc + r * ckk, ni, rem / g.ow, rem % g.ow, xf);
    }
  };
  if (rows * ckk < kSerialElems) {
    run(index_t{0}, rows);
  } else {
    parallel_for(index_t{0}, rows, grain_for(ckk), run);
  }
}

// Kernel-size dispatch (values are identical across instantiations; only
// the unrolling changes, so this is a pure schedule decision).
template <typename Xf>
void im2col_impl(const Tensor& x, const ConvGeom& g, Tensor& cols,
                 const Xf& xf) {
  switch (g.k) {
    case 1: im2col_sweep<1>(x, g, cols, xf); break;
    case 2: im2col_sweep<2>(x, g, cols, xf); break;
    case 3: im2col_sweep<3>(x, g, cols, xf); break;
    case 5: im2col_sweep<5>(x, g, cols, xf); break;
    default: im2col_sweep<0>(x, g, cols, xf); break;
  }
}

}  // namespace

void im2col(const Tensor& x, const ConvGeom& g, Tensor& cols) {
  im2col_impl(x, g, cols, [](float v) { return v; });
}

void im2col_quant(const Tensor& x, const ConvGeom& g, float scale,
                  index_t qmax, Tensor& cols) {
  const float inv = 1.0f / scale;
  const float qm = static_cast<float>(qmax);
  // Same expression as ActQuantizer::quantize, applied per gathered
  // element; zero-padding commutes (quantize(0) == 0).
  im2col_impl(x, g, cols, [inv, scale, qm](float v) {
    float q = std::nearbyint(v * inv);
    const bool inside = q >= 0.0f && q <= qm;
    if (!inside) q = q < 0.0f ? 0.0f : qm;
    return q * scale;
  });
}

namespace {

// Owner-computes gather: input row index r = (ni*C + ci)*H + iy; each
// thread fully produces its rows. Per element, window contributions
// accumulate in ascending (ky, kx) order — a pure function of shape —
// so any thread count (and any chunking) is bit-identical. KS as in
// gather_row: compile-time kernel size, 0 = runtime fallback.
template <index_t KS>
void col2im_sweep(const Tensor& cols, const ConvGeom& g, Tensor& gx) {
  gx.resize_for_overwrite({g.n, g.c, g.h, g.w});
  const index_t k = KS > 0 ? KS : g.k;
  const index_t stride = g.stride, pad = g.pad;
  const index_t w = g.w, oh = g.oh, ow = g.ow, ckk = g.ckk();
  const float* pc = cols.data();
  float* pg = gx.data();
  const index_t in_rows = g.n * g.c * g.h;
  auto run = [&, pc, pg](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const index_t ni = r / (g.c * g.h);
      const index_t rem = r - ni * g.c * g.h;
      const index_t ci = rem / g.h, iy = rem % g.h;
      float* out = pg + r * w;
      for (index_t ix = 0; ix < w; ++ix) out[ix] = 0.0f;
      for (index_t ky = 0; ky < k; ++ky) {
        const index_t t = iy + pad - ky;
        if (t < 0 || t % stride != 0) continue;
        const index_t y = t / stride;
        if (y >= oh) continue;
        const float* cbase = pc + (ni * oh + y) * ow * ckk + (ci * k + ky) * k;
        for (index_t kx = 0; kx < k; ++kx) {
          // ix = xo*stride - pad + kx in [0, w)  =>  xo range. A negative
          // upper numerator means no xo can reach the image (C++ division
          // truncates toward zero, so -1/stride would wrongly allow
          // xo = 0); skip the tap.
          const index_t hi_num = w - 1 + pad - kx;
          if (hi_num < 0) continue;
          const index_t xo_lo =
              pad > kx ? (pad - kx + stride - 1) / stride : index_t{0};
          const index_t xo_hi = std::min<index_t>(ow - 1, hi_num / stride);
          // Index `out` with the full expression (>= 0 for xo >= xo_lo):
          // pre-offsetting by kx - pad would form a before-the-array
          // pointer (UB) whenever pad > kx.
          const float* src = cbase + kx;
          for (index_t xo = xo_lo; xo <= xo_hi; ++xo) {
            out[xo * stride + kx - pad] += src[xo * ckk];
          }
        }
      }
    }
  };
  if (in_rows * w * k < kSerialElems) {
    run(index_t{0}, in_rows);
  } else {
    parallel_for(index_t{0}, in_rows, grain_for(w * k * k), run);
  }
}

}  // namespace

void col2im(const Tensor& cols, const ConvGeom& g, Tensor& gx) {
  switch (g.k) {
    case 1: col2im_sweep<1>(cols, g, gx); break;
    case 2: col2im_sweep<2>(cols, g, gx); break;
    case 3: col2im_sweep<3>(cols, g, gx); break;
    case 5: col2im_sweep<5>(cols, g, gx); break;
    default: col2im_sweep<0>(cols, g, gx); break;
  }
}

void maxpool2d(const Tensor& x, index_t k, Tensor& y,
               std::vector<index_t>& argmax) {
  const index_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t oh = h / k, ow = w / k;
  y.resize_for_overwrite({n, c, oh, ow});
  argmax.resize(static_cast<std::size_t>(y.size()));
  const float* px = x.data();
  float* py = y.data();
  index_t* parg = argmax.data();
  auto run = [&, px, py, parg](index_t nc0, index_t nc1) {
    for (index_t nc = nc0; nc < nc1; ++nc) {
      const float* plane = px + nc * h * w;
      for (index_t oy = 0; oy < oh; ++oy) {
        for (index_t ox = 0; ox < ow; ++ox) {
          index_t best = (oy * k) * w + ox * k;
          float bv = plane[best];
          for (index_t dy = 0; dy < k; ++dy) {
            for (index_t dx = 0; dx < k; ++dx) {
              const index_t idx = (oy * k + dy) * w + ox * k + dx;
              if (plane[idx] > bv) {  // strict > : first max wins the tie
                bv = plane[idx];
                best = idx;
              }
            }
          }
          const index_t oidx = nc * oh * ow + oy * ow + ox;
          py[oidx] = bv;
          parg[oidx] = nc * h * w + best;
        }
      }
    }
  };
  const index_t planes = n * c;
  if (planes * h * w < kSerialElems) {
    run(index_t{0}, planes);
  } else {
    parallel_for(index_t{0}, planes, grain_for(h * w), run);
  }
}

void maxpool2d_backward(const Tensor& gy, const std::vector<index_t>& argmax,
                        const std::vector<index_t>& in_shape, Tensor& gx) {
  gx.resize_for_overwrite(in_shape);
  const index_t n = in_shape[0], c = in_shape[1];
  const index_t hw = in_shape[2] * in_shape[3];
  const index_t ohw = gy.size() / (n * c);
  const float* pgy = gy.data();
  const index_t* parg = argmax.data();
  float* pgx = gx.data();
  // Pooling windows are disjoint and argmax indices stay inside their own
  // plane, so a plane split scatters race-free; each gx element is
  // written (zero or one scatter after the zero-fill) by its plane's
  // owner thread only.
  auto run = [&, pgy, parg, pgx](index_t nc0, index_t nc1) {
    for (index_t nc = nc0; nc < nc1; ++nc) {
      float* plane = pgx + nc * hw;
      for (index_t i = 0; i < hw; ++i) plane[i] = 0.0f;
      const index_t base = nc * ohw;
      for (index_t i = 0; i < ohw; ++i) {
        pgx[parg[base + i]] += pgy[base + i];
      }
    }
  };
  const index_t planes = n * c;
  if (planes * hw < kSerialElems) {
    run(index_t{0}, planes);
  } else {
    parallel_for(index_t{0}, planes, grain_for(hw), run);
  }
}

}  // namespace qavat
