// Convolution/pooling loop nests: im2col, col2im, max-pooling, and the
// fused act-quantize + im2col gather used by the inference path. Following
// the Halide schedule/algorithm separation, this file owns the SCHEDULE
// (threading grain, loop order, padding specialization) for the conv
// pipeline, while the algorithms stay naive-loop-equivalent — the same
// determinism contract tensor/ops.h establishes for the GEMM kernels.
//
// Determinism contract (tested by tests/test_conv_ops.cpp):
//  * Every output element is produced by exactly one thread with a fixed
//    per-element operation order, so results are bit-identical for any
//    QAVAT_THREADS, including 1.
//  * col2im is the dangerous one: as a scatter-add over overlapping
//    windows, a naive row split races (adjacent output-row chunks
//    scatter into the same input rows) and atomics would "fix" the race
//    only by making the float accumulation ORDER scheduling-dependent —
//    both are banned. A parallel scatter formulation must instead use
//    per-chunk partial buffers (one per FIXED grain chunk, not per
//    thread) combined in a deterministic serial reduction. We avoid even
//    that cost by restructuring to owner-computes GATHER form: each
//    thread owns whole input rows and accumulates the <= K*K window
//    contributions per element in fixed (ky, kx) ascending order. No
//    shared writes, no atomics, no partials.
//  * im2col/pooling threading grains are whole output rows / whole
//    (image, channel) planes, so chunk boundaries can never split one
//    output element's work.
//
// The fused im2col_quant applies the unsigned activation quantizer
// elementwise while gathering — arithmetic identical to
// ActQuantizer::quantize followed by im2col (quantize(0) == 0, so padding
// commutes with the quantizer) — removing one full tensor pass and one
// scratch tensor. Because the gather visits each input element once per
// covering window, the fusion only pays off when windows do not overlap
// (stride >= k; e.g. 1x1 convs); QuantConv2d shape-gates it accordingly
// and otherwise quantizes once (vectorized) before a pure-copy gather.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace qavat {

/// Geometry of one conv application over NCHW images. `n` is the number
/// of images actually gathered — pass n = x.dim(0) / nb to read only the
/// first chip block of a noise-batched input that is known to be nb
/// identical blocks. All fields are element counts (pixels/taps).
struct ConvGeom {
  index_t n, c, h, w;       ///< input images (leading prefix of x, NCHW)
  index_t k, stride, pad;   ///< square kernel side, stride, zero padding
  index_t oh, ow;           ///< output spatial dims

  index_t ckk() const { return c * k * k; }     ///< im2col row width
  index_t rows() const { return n * oh * ow; }  ///< im2col rows
};

/// x (NCHW, first g.n images) -> cols {g.n*g.oh*g.ow, g.ckk()}; row index
/// = (n*OH + oh)*OW + ow, zero padding. Threaded over output rows
/// (QAVAT_THREADS), bit-identical for any thread count.
void im2col(const Tensor& x, const ConvGeom& g, Tensor& cols);

/// im2col with the unsigned activation quantizer fused into the gather:
/// every gathered element v becomes scale * clamp(nearbyint(v / scale),
/// 0, qmax). Bit-identical to ActQuantizer::quantize + im2col.
void im2col_quant(const Tensor& x, const ConvGeom& g, float scale,
                  index_t qmax, Tensor& cols);

/// Transpose of im2col: scatter-add the cols-layout gradient back to the
/// input image layout (gather form, see the contract above). Writes every
/// element of gx (resized to {g.n, g.c, g.h, g.w}); threaded over input
/// rows, bit-identical for any thread count.
void col2im(const Tensor& cols, const ConvGeom& g, Tensor& gx);

/// Non-overlapping k x k max pooling over NCHW (floor semantics: trailing
/// rows/cols that do not fill a window are dropped). `argmax` records the
/// flat input index of each selected element for the backward scatter.
/// Ties break to the first (lowest-index) element, value-independent of
/// threading. Threaded over (image, channel) planes.
void maxpool2d(const Tensor& x, index_t k, Tensor& y,
               std::vector<index_t>& argmax);

/// Scatter gy through argmax into gx (resized + zeroed to in_shape).
/// Window positions are disjoint, so plane-parallel scatter is race-free.
void maxpool2d_backward(const Tensor& gy, const std::vector<index_t>& argmax,
                        const std::vector<index_t>& in_shape, Tensor& gx);

}  // namespace qavat
