// Per-model scratch arena for the conv/eval pipeline.
//
// A forward/backward pass through a quant model needs a handful of
// transient buffers per layer (quantized activations, im2col matrices,
// 2-D GEMM outputs, permuted gradients). Allocating them per call puts a
// malloc + page-fault + zero-fill pass on every layer of every
// Monte-Carlo chip and every training step; the arena instead hands out
// persistently-sized buffers keyed by (owner, slot), so a steady-state
// pipeline (same shapes every step) performs zero heap allocation after
// the first pass.
//
// Lifetime contract:
//  * acquire(owner, slot, shape) returns a Tensor resized (without
//    zero-fill — resize_for_overwrite) to `shape`. The reference stays
//    valid until the same key is acquired again or trim() runs; callers
//    must treat the contents as unspecified and fully overwrite them.
//  * Buffers that must survive BETWEEN layer calls (e.g. a conv layer's
//    im2col cache consumed by backward) are layer members, NOT workspace
//    slots — trim() may free any slot at any sequence point between
//    top-level forward/backward calls.
//  * NOT thread-safe: one workspace per model, acquired only from the
//    SINGLE thread driving forward/backward — with pipelined Session
//    execution (eval/runner.h run_all) that driver is a different thread
//    per model, never two threads on one model. Kernels parallelize
//    internally via tensor/parallel_for.h; pool workers never re-enter
//    acquire (parallel regions pre-acquire their scratch serially, e.g.
//    the row-tile partials in pim/tiling.cpp). DriverScope makes the
//    rule loud: while any scope is open, an acquire from a thread other
//    than the scope-opening driver aborts with a diagnostic instead of
//    silently corrupting scratch.
//
// The retained footprint is capped by QAVAT_WORKSPACE_MB (default 256):
// Module::forward/backward call trim(cap_bytes_from_env()) after each
// pass, which frees least-recently-used slots until under the cap. A cap
// smaller than one layer's working set is honored best-effort (the live
// pass always gets its buffers; eviction happens between passes).
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace qavat {

/// Keyed scratch arena: persistently-sized float buffers handed out by
/// (owner pointer, slot id), LRU-trimmed to QAVAT_WORKSPACE_MB. Sizes are
/// element counts (4-byte floats); shapes follow the tensor conventions
/// ({rows, cols} matrices, {N, C, H, W} images). NOT thread-safe — one
/// workspace per model, driven from the single thread that runs
/// forward/backward (see the lifetime contract above).
class Workspace {
 public:
  /// RAII marker that the calling thread is the single driver of this
  /// workspace for the duration of a forward/backward pass
  /// (Module::forward/backward open one). Reentrant on the same thread
  /// (nested passes share the driver); opening a scope from a second
  /// thread while another driver's scope is live, or acquiring from a
  /// non-driver thread inside a scope, aborts with a diagnostic — the
  /// fail-loud half of the single-driver contract that pipelined
  /// sessions (eval/runner.h run_all) rely on. The checks are two
  /// relaxed atomics, cheap enough to stay on in Release.
  class DriverScope {
   public:
    explicit DriverScope(Workspace& ws);
    ~DriverScope();
    DriverScope(const DriverScope&) = delete;
    DriverScope& operator=(const DriverScope&) = delete;

   private:
    Workspace& ws_;
  };

  /// Borrow the scratch tensor for (owner, slot), resized to `shape`.
  /// Contents are unspecified; the caller must overwrite what it reads.
  /// Single-driver-thread only (see DriverScope); aborts if called from
  /// a non-driver thread while a DriverScope is open.
  Tensor& acquire(const void* owner, int slot, std::vector<index_t> shape);

  /// Bytes currently held across all slots (element storage; excludes
  /// map overhead). Stable across steady-shape passes — tested as the
  /// zero-alloc invariant in test_conv_ops.
  std::size_t retained_bytes() const { return retained_bytes_; }

  /// Free least-recently-acquired slots until retained_bytes() <= cap.
  /// Invalidates references to the freed slots.
  void trim(std::size_t cap_bytes);

  /// Free every slot keyed by `owner` (all slot ids). Owners whose
  /// lifetime ends before the workspace's (e.g. the per-chip
  /// TiledCrossbarLayers of a circuit evaluation) call this from their
  /// destructor so dead-owner buffers never crowd live layers out of the
  /// retention cap. Invalidates references to the freed slots.
  void release(const void* owner);

  /// QAVAT_WORKSPACE_MB (positive integer, megabytes) as a byte cap;
  /// default 256 MB. Resolved once and cached.
  static std::size_t cap_bytes_from_env();

 private:
  struct Entry {
    Tensor t;
    std::uint64_t tick = 0;   // last acquire time, for LRU trim
    std::size_t bytes = 0;    // this entry's recorded share of
                              // retained_bytes_ (kept exact even when a
                              // caller resizes the borrowed tensor)
  };
  void check_driver(const char* what) const;

  std::map<std::pair<const void*, int>, Entry> slots_;
  std::uint64_t clock_ = 0;
  std::size_t retained_bytes_ = 0;
  // Single-driver enforcement (DriverScope): nesting depth of open
  // scopes and a hash of the driver thread's id (0 = no scope open).
  // Atomics because the violating reader is by definition another
  // thread; ordering is relaxed — the check is a diagnostic, the
  // contract forbids the race it detects.
  std::atomic<int> scope_depth_{0};
  std::atomic<std::size_t> driver_{0};
};

}  // namespace qavat
