// Deterministic std::thread fork-join helper for the tensor kernels.
//
// parallel_for(begin, end, grain, fn) splits [begin, end) into contiguous
// chunks whose boundaries are multiples of `grain` (measured from `begin`)
// and invokes fn(chunk_begin, chunk_end) once per chunk, spreading chunks
// across up to num_threads() worker threads.
//
// Determinism contract: chunk boundaries depend only on (range, grain,
// thread count), every index lands in exactly one chunk, and chunks are
// grain-aligned — so a kernel whose per-index arithmetic is independent of
// chunk boundaries (e.g. a GEMM that owns whole output rows and blocks
// rows in groups that divide `grain`) produces bit-identical results for
// ANY thread count, including 1. The GEMM kernels in tensor/ops.cpp are
// written to this contract.
//
// Nested calls (fn itself calling parallel_for) run inline on the calling
// worker, so parallelism never multiplies.
//
// Thread count resolution: QAVAT_THREADS environment variable if set to a
// positive integer, otherwise std::thread::hardware_concurrency(). Tests
// and benches may override programmatically with set_num_threads().
#pragma once

#include <algorithm>
#include <thread>
#include <vector>

#include "tensor/tensor.h"

namespace qavat {

/// Worker-thread budget: QAVAT_THREADS > 0, else hardware_concurrency().
/// Resolved once and cached; set_num_threads() overrides the cache.
index_t num_threads();

/// Override the thread budget (n >= 1). Passing n <= 0 re-resolves from
/// the environment on the next num_threads() call.
void set_num_threads(index_t n);

namespace detail {
/// True inside a parallel_for worker; nested calls run inline.
bool in_parallel_region();
void set_in_parallel_region(bool on);
}  // namespace detail

/// Default grain (indices per chunk) and serial cutoff for pure
/// elementwise kernels dispatched via parallel_for_elems below. Shared by
/// the quantizers, activation ops and scratch fills so every elementwise
/// pass in the pipeline makes the same fork-or-not decision.
constexpr index_t kElemGrain = index_t{1} << 16;
constexpr index_t kSerialElemWork = index_t{1} << 18;

template <typename Fn>
void parallel_for(index_t begin, index_t end, index_t grain, Fn&& fn) {
  const index_t total = end - begin;
  if (total <= 0) return;
  if (grain < 1) grain = 1;
  const index_t nchunks = (total + grain - 1) / grain;
  const index_t nt = std::min<index_t>(num_threads(), nchunks);
  if (nt <= 1 || detail::in_parallel_region()) {
    fn(begin, end);
    return;
  }
  // Thread t owns chunks [t*nchunks/nt, (t+1)*nchunks/nt): a contiguous,
  // grain-aligned span. All spans are disjoint and cover [begin, end).
  auto run = [&](index_t t) {
    detail::set_in_parallel_region(true);
    const index_t c0 = t * nchunks / nt;
    const index_t c1 = (t + 1) * nchunks / nt;
    const index_t lo = begin + c0 * grain;
    const index_t hi = std::min(end, begin + c1 * grain);
    if (lo < hi) fn(lo, hi);
    detail::set_in_parallel_region(false);
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nt - 1));
  for (index_t t = 1; t < nt; ++t) workers.emplace_back(run, t);
  run(0);
  for (auto& w : workers) w.join();
}

/// Elementwise dispatch over [0, n): runs fn(i0, i1) serially below
/// kSerialElemWork indices, otherwise splits with kElemGrain-sized chunks.
/// Safe for any kernel whose per-index work is independent of the chunk
/// boundaries (each index is touched by exactly one call) — such kernels
/// are bit-identical for any thread count by construction.
template <typename Fn>
void parallel_for_elems(index_t n, Fn&& fn) {
  if (n <= 0) return;
  if (n < kSerialElemWork) {
    fn(index_t{0}, n);
    return;
  }
  parallel_for(index_t{0}, n, kElemGrain, fn);
}

}  // namespace qavat
