// Deterministic parallel-for on the persistent work-stealing pool
// (tensor/thread_pool.h, DESIGN.md §13).
//
// parallel_for(begin, end, grain, fn) splits [begin, end) into contiguous
// chunks whose boundaries are multiples of `grain` (measured from `begin`)
// and invokes fn(chunk_begin, chunk_end) once per chunk span, spreading
// spans across up to num_threads() pool workers plus the calling thread.
//
// Determinism contract: chunk boundaries depend only on (range, grain,
// thread count), every index lands in exactly one chunk, and chunks are
// grain-aligned — so a kernel whose per-index arithmetic is independent of
// chunk boundaries (e.g. a GEMM that owns whole output rows and blocks
// rows in groups that divide `grain`) produces bit-identical results for
// ANY thread count, including 1, and for any nesting depth. The GEMM
// kernels in tensor/ops.cpp are written to this contract.
//
// Nested calls (fn itself calling parallel_for) enqueue sub-jobs on the
// same pool instead of running inline: the calling worker executes the
// first span itself and then helps/steals until its sub-job drains, so
// composed parallelism (chip batch × GEMM rows × crossbar tiles) shares
// one worker budget and the process never runs more than num_threads()
// compute threads.
//
// Thread count resolution: the budget comes from QAVAT_THREADS (positive
// integer) or std::thread::hardware_concurrency(), and is RE-RESOLVED
// from the environment every time the pool (re)starts — at first
// dispatch, and after every set_num_threads() call (which stops the
// pool). set_num_threads(n > 0) pins a programmatic override that wins
// over the environment until set_num_threads(0) unpins it. Like
// QAVAT_EVAL_BACKEND, changing QAVAT_THREADS between runs therefore
// takes effect without rebuilding; unlike it, the value is stable while
// workers are alive (a mid-flight budget change would tear the
// determinism contract).
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>

#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

namespace qavat {

/// Worker-thread budget: QAVAT_THREADS > 0, else hardware_concurrency().
/// Re-resolved from the environment at every pool (re)start unless
/// pinned by set_num_threads(n > 0) — see the header comment.
index_t num_threads();

/// Override the thread budget (n >= 1) and pin it against environment
/// re-resolution; n <= 0 unpins and re-resolves QAVAT_THREADS on the
/// next dispatch. Stops the pool (workers join and lazily respawn at
/// the new budget) — must not be called while a dispatch is in flight.
void set_num_threads(index_t n);

namespace detail {
/// True while the calling thread is executing a parallel_for span.
/// Nested calls no longer serialize on this flag (they enqueue pool
/// sub-jobs); it remains for introspection and tests.
bool in_parallel_region();
/// Maintained by the pool around span execution; not for general use.
void set_in_parallel_region(bool on);
/// Re-resolve QAVAT_THREADS into the cached budget unless a positive
/// set_num_threads() override is pinned. Called by the pool every time
/// it (re)starts.
void refresh_thread_budget_from_env();
}  // namespace detail

/// Default grain (indices per chunk) and serial cutoff for pure
/// elementwise kernels dispatched via parallel_for_elems below. Shared by
/// the quantizers, activation ops and scratch fills so every elementwise
/// pass in the pipeline makes the same fork-or-not decision.
constexpr index_t kElemGrain = index_t{1} << 16;
constexpr index_t kSerialElemWork = index_t{1} << 18;

template <typename Fn>
void parallel_for(index_t begin, index_t end, index_t grain, Fn&& fn) {
  const index_t total = end - begin;
  if (total <= 0) return;
  if (grain < 1) grain = 1;
  const index_t nchunks = (total + grain - 1) / grain;
  const index_t nspans = std::min<index_t>(num_threads(), nchunks);
  if (nspans <= 1) {
    fn(begin, end);
    return;
  }
  // Span s owns chunks [s*nchunks/nspans, (s+1)*nchunks/nspans): a
  // contiguous, grain-aligned range — the same partition the old
  // fork-join dispatcher computed, evaluated inside the pool
  // (ThreadPool::Impl::run_span). All spans are disjoint and cover
  // [begin, end). fn outlives the dispatch (run() returns only after
  // every span finished), so passing its address through the
  // type-erased hook is safe.
  auto invoke = [](void* ctx, index_t lo, index_t hi) {
    (*static_cast<typename std::remove_reference<Fn>::type*>(ctx))(lo, hi);
  };
  ThreadPool::instance().run(
      begin, end, grain, nchunks, nspans, invoke,
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
}

/// Elementwise dispatch over [0, n): runs fn(i0, i1) serially below
/// kSerialElemWork indices, otherwise splits with kElemGrain-sized chunks.
/// Safe for any kernel whose per-index work is independent of the chunk
/// boundaries (each index is touched by exactly one call) — such kernels
/// are bit-identical for any thread count by construction.
template <typename Fn>
void parallel_for_elems(index_t n, Fn&& fn) {
  if (n <= 0) return;
  if (n < kSerialElemWork) {
    fn(index_t{0}, n);
    return;
  }
  parallel_for(index_t{0}, n, kElemGrain, fn);
}

}  // namespace qavat
