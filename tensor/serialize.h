// Versioned binary serialization for tensors and model state. A
// StateDict is an ordered bag of named tensors and named scalars — the
// persistence unit the artifact store (eval/store.h) writes to disk so
// trained models survive the process. The format carries a magic tag, a
// schema version, an explicit payload size and a trailing FNV-1a
// checksum: truncated, corrupted or future-versioned files fail load()
// cleanly (return false) instead of crashing or yielding garbage, and
// callers fall back to recomputation. Byte layout is native-endian
// (artifacts are a cache, not an interchange format).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace qavat {

/// Format version written into every serialized artifact; bump on any
/// layout change so stale files are rejected rather than misread.
inline constexpr std::uint32_t kSerializeVersion = 1;

/// FNV-1a 64-bit hash of a byte string — the envelope checksum, also
/// reused by the artifact store for stable key-to-filename mapping.
std::uint64_t fnv1a64(const std::string& bytes);

/// Snapshot of the process-wide envelope read counters: every envelope
/// read verifies the trailing checksum, and these counters make that
/// observable — `verified` counts envelopes that passed the full header
/// + checksum validation, `failed` counts rejected ones (bad magic,
/// future version, oversize, truncation, or checksum mismatch). The
/// artifact store surfaces them in the `[qavat-store]` session summary
/// so silent corruption shows up in bench logs.
struct SerializeReadStats {
  long long envelopes_verified = 0;  ///< envelopes read and checksum-OK
  long long envelopes_failed = 0;    ///< envelopes rejected on read
};

/// Current values of the process-wide envelope read counters (relaxed
/// atomics; cheap to call).
SerializeReadStats serialize_read_stats();

/// Ordered collection of named tensors and named scalars — the
/// serializable snapshot of a model (parameters, quantizer scales,
/// metadata). Order is preserved on round-trip; names are unique by
/// convention (lookup returns the first match).
struct StateDict {
  std::vector<std::pair<std::string, Tensor>> tensors;  ///< name -> tensor
  std::vector<std::pair<std::string, double>> scalars;  ///< name -> scalar

  /// Append a (copied) tensor entry.
  void add_tensor(std::string name, const Tensor& t) {
    tensors.emplace_back(std::move(name), t);
  }
  /// Append a scalar entry.
  void add_scalar(std::string name, double v) {
    scalars.emplace_back(std::move(name), v);
  }
  /// First tensor with this name, or nullptr.
  const Tensor* find_tensor(const std::string& name) const;
  /// First scalar with this name, or nullptr.
  const double* find_scalar(const std::string& name) const;
};

/// Write one tensor (magic "QVTN" + version + payload + checksum).
void save_tensor(std::ostream& os, const Tensor& t);

/// Read a tensor written by save_tensor. Returns false — leaving *out
/// untouched — on any malformed, truncated or version-mismatched input.
bool load_tensor(std::istream& is, Tensor* out);

/// Write a state dict (magic "QVSD" + version + payload + checksum).
void save_state_dict(std::ostream& os, const StateDict& sd);

/// Read a state dict written by save_state_dict. Returns false — leaving
/// *out untouched — on any malformed, truncated or version-mismatched
/// input (including a checksum mismatch anywhere in the payload).
bool load_state_dict(std::istream& is, StateDict* out);

}  // namespace qavat
