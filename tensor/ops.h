// Numeric kernels over Tensor: GEMM variants, random fills, reductions,
// and the softmax/cross-entropy pair the trainer uses. All single-threaded
// scalar code for now — the ROADMAP backlog tracks SIMD/threading.
#pragma once

#include "tensor/tensor.h"

namespace qavat {

/// C = A(m,k) * B(k,n). Cache-friendly ikj ordering.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(m,k) * B(n,k)^T -> (m,n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(k,m)^T * B(k,n) -> (m,n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Fill with iid standard normal draws.
void fill_normal(Tensor& t, Rng& rng);
/// Fill with iid N(mean, stddev) draws.
void fill_normal(Tensor& t, Rng& rng, double mean, double stddev);
/// Fill with iid uniform draws in [lo, hi).
void fill_uniform(Tensor& t, Rng& rng, double lo, double hi);

/// In-place ReLU; optionally records the pass-through mask (1 where x > 0).
void relu_inplace(Tensor& x, Tensor* mask = nullptr);

/// Softmax cross-entropy over logits {N, C} with integer labels.
/// Writes dL/dlogits (averaged over the batch) into `grad` when non-null.
/// Returns the mean loss; `correct` (if non-null) gets the argmax hit count.
double softmax_xent(const Tensor& logits, const std::vector<index_t>& labels,
                    Tensor* grad, index_t* correct = nullptr);

}  // namespace qavat
