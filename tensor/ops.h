// Numeric kernels over Tensor: GEMM variants, random fills, reductions,
// and the softmax/cross-entropy pair the trainer uses.
//
// GEMM kernels are blocked (register-tiled rows, cache-tiled columns) with
// SIMD-friendly inner loops, and split output rows across std::threads via
// tensor/parallel_for.h (QAVAT_THREADS, default hardware_concurrency).
//
// Determinism contract (relied on by tests and the Monte-Carlo evaluator):
//  * Shape checks are ALWAYS on — a dimension mismatch throws
//    std::invalid_argument in every build type; Release (NDEBUG) builds
//    fail loudly instead of reading out of bounds.
//  * Results are a pure function of the operand values and shapes. There
//    are no value-dependent branches (in particular no zero-skip), so the
//    accumulation order — ascending over the contraction dimension per
//    output element — never depends on weight sparsity.
//  * Each output element is produced by exactly one thread with a fixed
//    per-element operation order, so results are bit-identical for any
//    thread count, and matmul_nt_batched(a, b, g) is bit-identical to g
//    independent matmul_nt calls on the corresponding blocks.
#pragma once

#include "tensor/tensor.h"

namespace qavat {

/// C = A(m,k) * B(k,n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(m,k) * B(n,k)^T -> (m,n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(k,m)^T * B(k,n) -> (m,n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Allocation-free variants: write into a caller-provided (typically
/// workspace) tensor, resized without zero-fill — every element is
/// produced by the kernel. Results are bit-identical to the returning
/// forms; `c` must not alias an operand.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c);

/// Accumulating NT GEMM: C(m,n) (+)= A(m,k) * B(n,k)^T. `c` must already
/// be {m,n} (throws otherwise; it is never resized). Each output
/// element's accumulation chain CONTINUES from c's current value with the
/// same ascending-k order as matmul_nt_into, so splitting the contraction
/// dimension into segments and chaining acc calls — zero-initialized c,
/// one call per k-segment in ascending order — is bit-identical to a
/// single full-width matmul_nt_into. This exact-reassociation guarantee
/// is the partial-sum determinism contract of the crossbar column tiling
/// (DESIGN.md §10). Thread-count independent like every GEMM here.
void matmul_nt_acc_into(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_nt_batched_into(const Tensor& a, const Tensor& b, index_t groups,
                            Tensor& c);
void matmul_nt_shared_into(const Tensor& a, const Tensor& b, index_t groups,
                           Tensor& c);

/// Grouped NT GEMM over `groups` stacked blocks: A {g*rows, k} (row-major
/// groups), B {g*n, k} (one stacked weight block per group), C {g*rows, n}
/// where C block i = A block i * (B block i)^T. Groups run in parallel;
/// each block is bit-identical to matmul_nt on that block. This is the
/// noise-batched effective-weight path of the Monte-Carlo evaluator.
Tensor matmul_nt_batched(const Tensor& a, const Tensor& b, index_t groups);

/// Grouped NT GEMM with one shared A block: A {rows, k}, B {g*n, k},
/// C {g*rows, n} with C block i = A * (B block i)^T. Bit-identical to
/// matmul_nt_batched with A tiled `groups` times, without materializing
/// the tiling — used when every simulated chip sees the same input (e.g.
/// the first layer of a batched Monte-Carlo forward).
Tensor matmul_nt_shared(const Tensor& a, const Tensor& b, index_t groups);

/// Fill with iid standard normal draws.
void fill_normal(Tensor& t, Rng& rng);
/// Fill with iid N(mean, stddev) draws.
void fill_normal(Tensor& t, Rng& rng, double mean, double stddev);
/// Fill with iid uniform draws in [lo, hi).
void fill_uniform(Tensor& t, Rng& rng, double lo, double hi);

/// In-place ReLU; optionally records the pass-through mask (1 where x > 0).
void relu_inplace(Tensor& x, Tensor* mask = nullptr);

/// p[i] *= s over [0, n) — the vectorized/threaded scalar-scale kernel
/// shared by the trainer's gradient averaging, the optimizer update and
/// the self-tuning gain correction.
void scale(float* p, index_t n, float s);
/// t *= s elementwise.
void scale(Tensor& t, float s);

/// Softmax cross-entropy over logits {N, C} with integer labels.
/// Writes dL/dlogits (averaged over the batch) into `grad` when non-null.
/// Returns the mean loss; `correct` (if non-null) gets the argmax hit count.
double softmax_xent(const Tensor& logits, const std::vector<index_t>& labels,
                    Tensor* grad, index_t* correct = nullptr);

}  // namespace qavat
