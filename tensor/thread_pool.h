// Persistent work-stealing thread pool behind parallel_for (DESIGN.md
// §13). One process-wide pool replaces the per-call std::thread fork-join
// dispatcher: workers start lazily on the first parallel dispatch, park
// on a condition variable (after a short spin — QAVAT_POOL_SPIN_US)
// between jobs, and stay alive until set_num_threads() or process exit.
//
// Scheduling model: a dispatch ("job") is split into at most
// num_threads() contiguous, grain-aligned index spans — the exact
// partition the old fork-join dispatcher computed, so chunk boundaries
// depend only on (range, grain, thread count) and results stay
// bit-identical for any schedule. The dispatching thread executes the
// first span itself, queues the rest on its own deque (workers own one
// each; external threads share one), and then helps until the job
// completes — executing only spans of the job it waits on (running an
// unrelated task there would interleave a second kernel over the
// suspended dispatch's live per-thread scratch, e.g. the GEMM pack
// panel). Idle workers pop their own deque LIFO (deepest nested job
// first) and steal from other deques FIFO (oldest job's spans, the
// coarsest work). Nested
// dispatches from inside a task enqueue sub-jobs on the same pool instead
// of running inline serially, so chip-batch x GEMM-row x tile parallelism
// composes while the total worker count never exceeds num_threads().
//
// Exceptions: the first exception thrown by a span is captured, the
// job's remaining spans are cancelled (their bodies are skipped), and
// the exception rethrows from the dispatching caller.
#pragma once

#include <memory>

#include "tensor/tensor.h"

namespace qavat {

/// The process-wide persistent worker pool. parallel_for is the intended
/// entry point; the class is public for tests and benches that probe
/// pool lifecycle (restart after set_num_threads, worker counts).
class ThreadPool {
 public:
  /// Type-erased span body: fn(ctx, lo, hi) processes indices [lo, hi).
  using SpanFn = void (*)(void* ctx, index_t lo, index_t hi);

  /// The singleton pool: constructed on first use, workers joined at
  /// process exit.
  static ThreadPool& instance();

  /// Execute one dispatch: split chunks [0, nchunks) of [begin, end)
  /// (grain-aligned, measured from `begin`) into `nspans` contiguous
  /// spans — span s owns chunks [s*nchunks/nspans, (s+1)*nchunks/nspans)
  /// — run them across the pool and the calling thread, and return when
  /// all spans finished. Starts the workers on first use. Re-entrant:
  /// may be called from inside a span (nested dispatch). Rethrows the
  /// first span exception after the job drains.
  void run(index_t begin, index_t end, index_t grain, index_t nchunks,
           index_t nspans, SpanFn fn, void* ctx);

  /// Join and discard the workers (no-op when not running). Must not be
  /// called while a job is in flight. The next run() restarts the pool,
  /// re-resolving QAVAT_THREADS unless a set_num_threads(n > 0) override
  /// is pinned (the documented thread-budget rule in parallel_for.h).
  void stop();

  /// Pool worker threads currently alive (num_threads() - 1 while
  /// running, 0 after stop()); the dispatching caller is the extra hand.
  index_t live_workers() const;

  /// Microseconds a worker spins polling for new work before parking on
  /// the condition variable: QAVAT_POOL_SPIN_US (>= 0, full-string
  /// integer parse), default 50. Re-read on every pool (re)start.
  static index_t spin_us_from_env();

 private:
  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qavat
