// Dense float tensor + deterministic RNG — the bottom layer of the qavat
// stack. Everything above (data/, core/, eval/, pim/) depends only
// downwards; nothing here may include a header from a higher layer.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace qavat {

using index_t = long long;

/// Splitmix64-seeded xoshiro256** generator. Deterministic across
/// platforms (unlike std::normal_distribution), cheap to fork into
/// independent streams: Rng(seed, stream) gives a decorrelated stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  std::uint64_t next_u64();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  /// Uniform integer in [0, n).
  index_t below(index_t n);

 private:
  std::uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

/// Contiguous row-major float tensor. Shapes are small vectors of
/// index_t; {N, C, H, W} for images, {rows, cols} for matrices.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<index_t> shape);
  Tensor(std::vector<index_t> shape, float fill);

  const std::vector<index_t>& shape() const { return shape_; }
  index_t dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  index_t size() const { return static_cast<index_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](index_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](index_t i) const { return data_[static_cast<std::size_t>(i)]; }

  void reshape(std::vector<index_t> shape);
  void resize(std::vector<index_t> shape);
  /// Resize WITHOUT the zero-fill of resize(): existing elements keep
  /// their (stale) values and new elements are unspecified. For scratch
  /// buffers that are fully overwritten by the next kernel — at steady
  /// shape this is a no-op, which is what makes workspace reuse
  /// allocation- and traversal-free.
  void resize_for_overwrite(std::vector<index_t> shape);
  void zero();
  void fill(float v);

  /// Max |x| over all elements (0 for an empty tensor).
  float abs_max() const;

 private:
  std::vector<index_t> shape_;
  std::vector<float> data_;
};

inline index_t numel(const std::vector<index_t>& shape) {
  index_t n = 1;
  for (index_t d : shape) n *= d;
  return n;
}

}  // namespace qavat
