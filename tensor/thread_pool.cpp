#include "tensor/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/parallel_for.h"

namespace qavat {

namespace {

// One parallel dispatch. Lives on the dispatching thread's stack for the
// duration of ThreadPool::run() — run() returns only after `remaining`
// hits zero, so queued Tasks can hold a raw pointer.
struct Job {
  ThreadPool::SpanFn fn = nullptr;
  void* ctx = nullptr;
  index_t begin = 0;
  index_t end = 0;
  index_t grain = 1;
  index_t nchunks = 0;
  index_t nspans = 0;
  index_t remaining = 0;               // spans not yet finished (pool mutex)
  std::exception_ptr error;            // first span failure (pool mutex)
  std::atomic<bool> cancelled{false};  // set with `error`: skip later spans
};

// A claimable unit of work: one span of one job.
struct Task {
  Job* job = nullptr;
  index_t span = 0;
};

// Index of the deque this thread owns: workers get their own, every
// other thread (main, the Session executor) shares the external deque
// at the back of the deque array (signalled by -1 here).
thread_local int tl_deque = -1;
// Nesting depth of span execution on this thread; drives
// detail::in_parallel_region().
thread_local int tl_span_depth = 0;

}  // namespace

struct ThreadPool::Impl {
  // One mutex guards every deque plus the job/lifecycle fields. Spans
  // are coarse by construction (the grain math in the kernels targets
  // >= 2^19 MACs per chunk), so a single lock is nowhere near
  // contended and keeps the sleep/wake logic provably race-free.
  std::mutex mu;
  std::condition_variable cv;
  // deques[i] belongs to worker i; deques.back() is the shared external
  // deque. Owners push and pop the back (LIFO: the deepest nested job
  // first, which keeps nested dispatches cache-hot and bounds in-flight
  // jobs); everyone else steals from the front (FIFO: the oldest job's
  // spans, the coarsest outstanding work).
  std::vector<std::deque<Task>> deques;
  std::vector<std::thread> threads;
  bool running = false;
  bool shutdown = false;
  index_t spin_us = 0;
  // Bumped (under mu) on every push and every job completion; sleepers
  // wait for it to move. Atomic so spinning workers can poll it
  // without taking the lock.
  std::atomic<std::uint64_t> epoch{0};

  bool try_pop(int self, Task* out);
  bool try_pop_job(int self, Job* j, Task* out);
  void run_span(Job* job, index_t span);
  void worker_main(int idx);
  void start_locked();
};

// Pop from the caller's own deque back (LIFO), else steal from the
// fronts of the others (FIFO), scanning from the neighbour onward so
// thieves spread out. Caller holds `mu`.
bool ThreadPool::Impl::try_pop(int self, Task* out) {
  const int n = static_cast<int>(deques.size());
  if (n == 0) return false;
  const int own = self >= 0 ? self : n - 1;
  if (!deques[own].empty()) {
    *out = deques[own].back();
    deques[own].pop_back();
    return true;
  }
  for (int k = 1; k < n; ++k) {
    const int victim = (own + k) % n;
    if (!deques[victim].empty()) {
      *out = deques[victim].front();
      deques[victim].pop_front();
      return true;
    }
  }
  return false;
}

// Pop the newest queued span OF JOB `j` from the caller's own deque.
// Used by the dispatcher's help loop in run(): a waiting dispatcher may
// execute only spans of the job it is waiting on. Running an arbitrary
// task there would interleave a second kernel onto a call stack whose
// suspended dispatch still has per-thread scratch live (e.g. the GEMM's
// thread_local pack panel, which in-flight spans of the suspended job
// read from other threads) — a silent data race. All still-queued spans
// of `j` sit in the dispatcher's own deque (spans are pushed there at
// dispatch and a stolen span runs to completion, never re-queues), so a
// job-filtered scan of one deque finds every runnable span; the scan
// skips other threads' entries in the shared external deque. Caller
// holds `mu`.
bool ThreadPool::Impl::try_pop_job(int self, Job* j, Task* out) {
  const int n = static_cast<int>(deques.size());
  if (n == 0) return false;
  auto& dq = deques[self >= 0 ? self : n - 1];
  for (auto it = dq.rbegin(); it != dq.rend(); ++it) {
    if (it->job == j) {
      *out = *it;
      dq.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

// Execute one span: the old fork-join span math, verbatim — span s owns
// chunks [s*nchunks/nspans, (s+1)*nchunks/nspans), clamped to `end` —
// so the partition depends only on (range, grain, span count), never on
// which thread runs it. Called without `mu`.
void ThreadPool::Impl::run_span(Job* job, index_t span) {
  const index_t c0 = span * job->nchunks / job->nspans;
  const index_t c1 = (span + 1) * job->nchunks / job->nspans;
  const index_t lo = job->begin + c0 * job->grain;
  const index_t hi = std::min(job->end, job->begin + c1 * job->grain);
  if (lo < hi && !job->cancelled.load(std::memory_order_acquire)) {
    ++tl_span_depth;
    detail::set_in_parallel_region(true);
    try {
      job->fn(job->ctx, lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu);
      if (!job->error) {
        job->error = std::current_exception();
        job->cancelled.store(true, std::memory_order_release);
      }
    }
    if (--tl_span_depth == 0) detail::set_in_parallel_region(false);
  }
  std::lock_guard<std::mutex> lk(mu);
  if (--job->remaining == 0) {
    // The dispatcher may be asleep in run(): wake everyone so it can
    // observe completion and rethrow/return.
    epoch.fetch_add(1, std::memory_order_relaxed);
    cv.notify_all();
  }
}

void ThreadPool::Impl::worker_main(int idx) {
  tl_deque = idx;
  std::unique_lock<std::mutex> lk(mu);
  for (;;) {
    Task t;
    if (try_pop(idx, &t)) {
      lk.unlock();
      run_span(t.job, t.span);
      lk.lock();
      continue;
    }
    if (shutdown) break;  // honored only once every queue is drained
    const std::uint64_t seen = epoch.load(std::memory_order_relaxed);
    if (spin_us > 0) {
      // Spin briefly before parking: the gap between consecutive
      // dispatches inside a kernel loop is microseconds, and a futex
      // sleep/wake round trip costs more than the whole gap.
      lk.unlock();
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(spin_us);
      while (epoch.load(std::memory_order_relaxed) == seen &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      lk.lock();
      if (epoch.load(std::memory_order_relaxed) != seen || shutdown) continue;
    }
    cv.wait(lk, [&] {
      return shutdown || epoch.load(std::memory_order_relaxed) != seen;
    });
  }
}

// (Re)spawn the workers. Caller holds `mu`. This is the moment the
// thread budget is re-resolved from QAVAT_THREADS (unless pinned by
// set_num_threads(n > 0)) — the documented rule in parallel_for.h.
void ThreadPool::Impl::start_locked() {
  if (running) return;
  detail::refresh_thread_budget_from_env();
  const index_t nworkers = std::max<index_t>(index_t{0}, num_threads() - 1);
  spin_us = spin_us_from_env();
  shutdown = false;
  deques.assign(static_cast<std::size_t>(nworkers) + 1,
                std::deque<Task>());
  threads.clear();
  threads.reserve(static_cast<std::size_t>(nworkers));
  for (index_t i = 0; i < nworkers; ++i) {
    threads.emplace_back([this, i] { worker_main(static_cast<int>(i)); });
  }
  running = true;
}

ThreadPool& ThreadPool::instance() {
  // Function-local static: constructed on first dispatch; the destructor
  // joins the workers at process exit (magic statics make this
  // thread-safe).
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::run(index_t begin, index_t end, index_t grain,
                     index_t nchunks, index_t nspans, SpanFn fn, void* ctx) {
  Impl& im = *impl_;
  if (nspans <= 1) {
    fn(ctx, begin, end);
    return;
  }
  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.nchunks = nchunks;
  job.nspans = nspans;
  job.remaining = nspans;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    im.start_locked();
    auto& dq = im.deques[tl_deque >= 0 ? static_cast<std::size_t>(tl_deque)
                                       : im.deques.size() - 1];
    for (index_t s = 1; s < nspans; ++s) dq.push_back(Task{&job, s});
    im.epoch.fetch_add(1, std::memory_order_relaxed);
    im.cv.notify_all();
  }
  // The dispatcher always takes the first span itself — work starts
  // immediately even if every worker is busy elsewhere.
  im.run_span(&job, 0);
  // Help until the job drains — but only with spans of THIS job (see
  // try_pop_job for why unrelated tasks must not run here). This cannot
  // deadlock: every remaining span is either still in our deque
  // (runnable right now) or already executing on another thread, whose
  // completion bumps the epoch and wakes us.
  std::unique_lock<std::mutex> lk(im.mu);
  while (job.remaining > 0) {
    Task t;
    if (im.try_pop_job(tl_deque, &job, &t)) {
      lk.unlock();
      im.run_span(t.job, t.span);
      lk.lock();
      continue;
    }
    const std::uint64_t seen = im.epoch.load(std::memory_order_relaxed);
    im.cv.wait(lk, [&] {
      return job.remaining == 0 ||
             im.epoch.load(std::memory_order_relaxed) != seen;
    });
  }
  lk.unlock();
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::stop() {
  Impl& im = *impl_;
  std::vector<std::thread> join_me;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    if (!im.running) return;
    im.shutdown = true;
    im.running = false;
    im.epoch.fetch_add(1, std::memory_order_relaxed);
    im.cv.notify_all();
    join_me.swap(im.threads);
  }
  for (std::thread& t : join_me) t.join();
}

index_t ThreadPool::live_workers() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return static_cast<index_t>(impl_->threads.size());
}

index_t ThreadPool::spin_us_from_env() {
  const char* v = std::getenv("QAVAT_POOL_SPIN_US");
  if (v != nullptr && v[0] != '\0') {
    char* endp = nullptr;
    const long n = std::strtol(v, &endp, 10);
    if (endp != v && *endp == '\0' && n >= 0) {
      return std::min<index_t>(static_cast<index_t>(n), index_t{1000000});
    }
  }
  return 50;
}

}  // namespace qavat
