#include "tensor/int_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/parallel_for.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512VNNI__)
#include <immintrin.h>
#define QAVAT_INT8_VNNI 1
#endif

// Same SIMD-hint convention as tensor/ops.cpp: vectorization directives
// under -fopenmp-simd, plain loops otherwise.
#if defined(QAVAT_OMP_SIMD)
#define QAVAT_PRAGMA(x) _Pragma(#x)
#define QAVAT_SIMD_RED QAVAT_PRAGMA(omp simd reduction(+ : s))
#else
#define QAVAT_SIMD_RED
#endif

namespace qavat {

namespace {

// Register-blocked output rows (grain alignment for the row partition) and
// fork thresholds. The integer kernel moves ~4x the MACs/cycle of the
// float path, so the cutoffs sit higher than ops.cpp's: forking earlier
// would spend more on thread spawns than the saved arithmetic.
constexpr index_t kRowBlock = 4;
constexpr index_t kMinMacsPerChunk = index_t{1} << 21;
constexpr index_t kSerialMacs = index_t{1} << 22;

bool g_force_portable = false;

bool use_vnni() {
#if defined(QAVAT_INT8_VNNI)
  return !g_force_portable;
#else
  return false;
#endif
}

// Always-on (independent of NDEBUG), mirroring tensor/ops.cpp: a bad GEMM
// extent must fail loudly in Release builds instead of reading out of
// bounds.
void check_dims(const char* name, index_t m, index_t k, index_t n) {
  if (m < 0 || k < 0 || n < 0) {
    throw std::invalid_argument(std::string(name) + ": negative extent {" +
                                std::to_string(m) + "," + std::to_string(k) +
                                "," + std::to_string(n) + "}");
  }
}

// Row-partition dispatch, ops.cpp launch_rows with the integer cutoffs:
// grain carries at least kMinMacsPerChunk of work, rounded up to kRowBlock.
// (For integers any partition is exact anyway — the alignment only keeps
// rows on the cheaper 4-row code path.)
template <typename Core>
void launch_int_rows(index_t m, index_t macs_per_row, Core&& core) {
  if (m <= 0) return;
  if (m * macs_per_row < kSerialMacs) {
    core(index_t{0}, m);
    return;
  }
  index_t grain =
      (kMinMacsPerChunk + macs_per_row - 1) / std::max<index_t>(1, macs_per_row);
  grain = ((std::max<index_t>(grain, 1) + kRowBlock - 1) / kRowBlock) * kRowBlock;
  parallel_for(index_t{0}, m, grain, core);
}

// ------------------------------------------------------------- portable
//
// The portable "packed" B image is simply the row-major s8 matrix. Dot
// products accumulate s32 in ascending p; omp simd reduction lets the
// compiler widen to whatever the target offers (pmaddwd on SSE/AVX).

void gemm_rows_portable(const std::int8_t* a, const std::int8_t* b,
                        std::int32_t* c, index_t i0, index_t i1, index_t k,
                        index_t n) {
  for (index_t i = i0; i < i1; ++i) {
    const std::int8_t* ar = a + i * k;
    for (index_t j = 0; j < n; ++j) {
      const std::int8_t* br = b + j * k;
      std::int32_t s = 0;
      QAVAT_SIMD_RED
      for (index_t p = 0; p < k; ++p) {
        s += static_cast<std::int32_t>(ar[p]) * static_cast<std::int32_t>(br[p]);
      }
      c[i * n + j] = s;
    }
  }
}

#if defined(QAVAT_INT8_VNNI)

// ------------------------------------------------------------ AVX-512 VNNI
//
// vpdpbusd multiplies u8 by s8, so activations are biased to u8 by +128
// (x ^ 0x80) at pack time and the bias removed exactly in the epilogue:
// sum((a+128) * b) - 128 * sum(b), with sum(b) precomputed per B row by
// pack_b_s8. A rows are padded with 0x00 pre-bias = 0x80 biased... no:
// padding stores literal 0, which as a u8 operand contributes 0 * b_pad
// and b_pad bytes are 0 too, so k padding adds exactly nothing.
//
// Packed-B layout (per 16-column tile): kg = ceil(k/4) groups of 64 bytes,
// byte (p, j_lane) at [ (p/4)*64 + j_lane*4 + (p%4) ] — one zmm load per
// group feeds 16 lanes of vpdpbusd.

index_t vnni_kg(index_t k) { return (k + 3) / 4; }

void pack_a_u8(const std::int8_t* a, index_t m, index_t k,
               std::vector<std::uint8_t>& apack) {
  const index_t ku4 = vnni_kg(k) * 4;
  apack.resize(static_cast<std::size_t>(m * ku4));
  for (index_t i = 0; i < m; ++i) {
    const std::int8_t* ar = a + i * k;
    std::uint8_t* dst = apack.data() + i * ku4;
    index_t p = 0;
    for (; p < k; ++p) dst[p] = static_cast<std::uint8_t>(ar[p] ^ 0x80);
    for (; p < ku4; ++p) dst[p] = 0;
  }
}

// C rows [i0, i1): 4-row x 2-tile (32-column) register tiles over the
// packed operands; row_sums has exactly n entries, so tail tiles load it
// masked. Bit-exact regardless of the row partition or tile path — the
// accumulation is integer.
void gemm_rows_vnni(const std::uint8_t* apack, const std::int8_t* bpack,
                    const std::int32_t* row_sums, std::int32_t* c, index_t i0,
                    index_t i1, index_t kg, index_t n, index_t ntiles) {
  const index_t ku4 = kg * 4;
  index_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const std::uint32_t* a0 =
        reinterpret_cast<const std::uint32_t*>(apack + (i + 0) * ku4);
    const std::uint32_t* a1 =
        reinterpret_cast<const std::uint32_t*>(apack + (i + 1) * ku4);
    const std::uint32_t* a2 =
        reinterpret_cast<const std::uint32_t*>(apack + (i + 2) * ku4);
    const std::uint32_t* a3 =
        reinterpret_cast<const std::uint32_t*>(apack + (i + 3) * ku4);
    index_t jt = 0;
    for (; jt + 2 <= ntiles; jt += 2) {
      const __m512i* bp0 = reinterpret_cast<const __m512i*>(bpack + jt * kg * 64);
      const __m512i* bp1 =
          reinterpret_cast<const __m512i*>(bpack + (jt + 1) * kg * 64);
      __m512i v00 = _mm512_setzero_si512(), v01 = v00, v10 = v00, v11 = v00,
              v20 = v00, v21 = v00, v30 = v00, v31 = v00;
      for (index_t p = 0; p < kg; ++p) {
        const __m512i b0 = _mm512_loadu_si512(bp0 + p);
        const __m512i b1 = _mm512_loadu_si512(bp1 + p);
        const __m512i w0 = _mm512_set1_epi32(static_cast<int>(a0[p]));
        const __m512i w1 = _mm512_set1_epi32(static_cast<int>(a1[p]));
        const __m512i w2 = _mm512_set1_epi32(static_cast<int>(a2[p]));
        const __m512i w3 = _mm512_set1_epi32(static_cast<int>(a3[p]));
        v00 = _mm512_dpbusd_epi32(v00, w0, b0);
        v01 = _mm512_dpbusd_epi32(v01, w0, b1);
        v10 = _mm512_dpbusd_epi32(v10, w1, b0);
        v11 = _mm512_dpbusd_epi32(v11, w1, b1);
        v20 = _mm512_dpbusd_epi32(v20, w2, b0);
        v21 = _mm512_dpbusd_epi32(v21, w2, b1);
        v30 = _mm512_dpbusd_epi32(v30, w3, b0);
        v31 = _mm512_dpbusd_epi32(v31, w3, b1);
      }
      const index_t j0 = jt * 16, j1 = j0 + 16;
      // Tile 0 of a pair is always full (j1 <= n here), tile 1 may be the
      // ragged tail; 128 * sum(b) leaves via one shift-and-subtract.
      const __mmask16 m1 = static_cast<__mmask16>(
          (n - j1 >= 16) ? 0xFFFF : ((1u << (n - j1)) - 1));
      const __m512i s0 = _mm512_slli_epi32(
          _mm512_loadu_si512(reinterpret_cast<const __m512i*>(row_sums + j0)), 7);
      const __m512i s1 =
          _mm512_slli_epi32(_mm512_maskz_loadu_epi32(m1, row_sums + j1), 7);
      _mm512_storeu_si512(reinterpret_cast<__m512i*>(c + (i + 0) * n + j0),
                          _mm512_sub_epi32(v00, s0));
      _mm512_mask_storeu_epi32(c + (i + 0) * n + j1, m1, _mm512_sub_epi32(v01, s1));
      _mm512_storeu_si512(reinterpret_cast<__m512i*>(c + (i + 1) * n + j0),
                          _mm512_sub_epi32(v10, s0));
      _mm512_mask_storeu_epi32(c + (i + 1) * n + j1, m1, _mm512_sub_epi32(v11, s1));
      _mm512_storeu_si512(reinterpret_cast<__m512i*>(c + (i + 2) * n + j0),
                          _mm512_sub_epi32(v20, s0));
      _mm512_mask_storeu_epi32(c + (i + 2) * n + j1, m1, _mm512_sub_epi32(v21, s1));
      _mm512_storeu_si512(reinterpret_cast<__m512i*>(c + (i + 3) * n + j0),
                          _mm512_sub_epi32(v30, s0));
      _mm512_mask_storeu_epi32(c + (i + 3) * n + j1, m1, _mm512_sub_epi32(v31, s1));
    }
    for (; jt < ntiles; ++jt) {
      const __m512i* bp = reinterpret_cast<const __m512i*>(bpack + jt * kg * 64);
      __m512i v0 = _mm512_setzero_si512(), v1 = v0, v2 = v0, v3 = v0;
      for (index_t p = 0; p < kg; ++p) {
        const __m512i bv = _mm512_loadu_si512(bp + p);
        v0 = _mm512_dpbusd_epi32(v0, _mm512_set1_epi32(static_cast<int>(a0[p])), bv);
        v1 = _mm512_dpbusd_epi32(v1, _mm512_set1_epi32(static_cast<int>(a1[p])), bv);
        v2 = _mm512_dpbusd_epi32(v2, _mm512_set1_epi32(static_cast<int>(a2[p])), bv);
        v3 = _mm512_dpbusd_epi32(v3, _mm512_set1_epi32(static_cast<int>(a3[p])), bv);
      }
      const index_t j0 = jt * 16;
      const __mmask16 mk = static_cast<__mmask16>(
          (n - j0 >= 16) ? 0xFFFF : ((1u << (n - j0)) - 1));
      const __m512i sv =
          _mm512_slli_epi32(_mm512_maskz_loadu_epi32(mk, row_sums + j0), 7);
      _mm512_mask_storeu_epi32(c + (i + 0) * n + j0, mk, _mm512_sub_epi32(v0, sv));
      _mm512_mask_storeu_epi32(c + (i + 1) * n + j0, mk, _mm512_sub_epi32(v1, sv));
      _mm512_mask_storeu_epi32(c + (i + 2) * n + j0, mk, _mm512_sub_epi32(v2, sv));
      _mm512_mask_storeu_epi32(c + (i + 3) * n + j0, mk, _mm512_sub_epi32(v3, sv));
    }
  }
  for (; i < i1; ++i) {
    const std::uint32_t* a0 =
        reinterpret_cast<const std::uint32_t*>(apack + i * ku4);
    for (index_t jt = 0; jt < ntiles; ++jt) {
      const __m512i* bp = reinterpret_cast<const __m512i*>(bpack + jt * kg * 64);
      __m512i v0 = _mm512_setzero_si512();
      for (index_t p = 0; p < kg; ++p) {
        v0 = _mm512_dpbusd_epi32(v0, _mm512_set1_epi32(static_cast<int>(a0[p])),
                                 _mm512_loadu_si512(bp + p));
      }
      const index_t j0 = jt * 16;
      const __mmask16 mk = static_cast<__mmask16>(
          (n - j0 >= 16) ? 0xFFFF : ((1u << (n - j0)) - 1));
      const __m512i sv =
          _mm512_slli_epi32(_mm512_maskz_loadu_epi32(mk, row_sums + j0), 7);
      _mm512_mask_storeu_epi32(c + i * n + j0, mk, _mm512_sub_epi32(v0, sv));
    }
  }
}

#endif  // QAVAT_INT8_VNNI

}  // namespace

index_t packed_b_s8_bytes(index_t n, index_t k) {
  check_dims("packed_b_s8_bytes", 0, k, n);
#if defined(QAVAT_INT8_VNNI)
  if (use_vnni()) {
    const index_t ntiles = (n + 15) / 16;
    return std::max<index_t>(1, ntiles * vnni_kg(k) * 64);
  }
#endif
  return std::max<index_t>(1, n * k);
}

void pack_b_s8(const std::int8_t* b, index_t n, index_t k, void* packed,
               std::int32_t* row_sums) {
  check_dims("pack_b_s8", 0, k, n);
  if (n <= 0) return;
#if defined(QAVAT_INT8_VNNI)
  if (use_vnni()) {
    const index_t kg = vnni_kg(k);
    std::int8_t* dst_all = static_cast<std::int8_t*>(packed);
    const index_t ntiles = (n + 15) / 16;
    std::memset(dst_all, 0, static_cast<std::size_t>(ntiles * kg * 64));
    for (index_t j = 0; j < n; ++j) {
      const std::int8_t* br = b + j * k;
      const index_t jt = j / 16, jl = j % 16;
      std::int8_t* dst = dst_all + jt * kg * 64;
      std::int32_t s = 0;
      for (index_t p = 0; p < k; ++p) {
        dst[(p / 4) * 64 + jl * 4 + (p % 4)] = br[p];
        s += br[p];
      }
      row_sums[j] = s;
    }
    return;
  }
#endif
  if (k > 0) {
    std::memcpy(packed, b, static_cast<std::size_t>(n * k));
  }
  for (index_t j = 0; j < n; ++j) {
    const std::int8_t* br = b + j * k;
    std::int32_t s = 0;
    for (index_t p = 0; p < k; ++p) s += br[p];
    row_sums[j] = s;
  }
}

void gemm_s8s8_s32_prepacked(const std::int8_t* a, const void* packed,
                             const std::int32_t* row_sums, std::int32_t* c,
                             index_t m, index_t k, index_t n) {
  check_dims("gemm_s8s8_s32_prepacked", m, k, n);
  if (m <= 0 || n <= 0) return;
#if defined(QAVAT_INT8_VNNI)
  if (use_vnni()) {
    const index_t kg = vnni_kg(k);
    const index_t ntiles = (n + 15) / 16;
    // thread_local: reused across the many same-shape GEMMs of an eval
    // loop without per-call heap traffic; packed before the fork so row
    // workers share it read-only.
    thread_local std::vector<std::uint8_t> apack;
    pack_a_u8(a, m, k, apack);
    const std::uint8_t* ap = apack.data();
    const std::int8_t* bp = static_cast<const std::int8_t*>(packed);
    launch_int_rows(m, k * n, [=](index_t i0, index_t i1) {
      gemm_rows_vnni(ap, bp, row_sums, c, i0, i1, kg, n, ntiles);
    });
    return;
  }
#endif
  (void)row_sums;  // only the VNNI epilogue needs the u8 bias correction
  const std::int8_t* bp = static_cast<const std::int8_t*>(packed);
  launch_int_rows(m, k * n, [=](index_t i0, index_t i1) {
    gemm_rows_portable(a, bp, c, i0, i1, k, n);
  });
}

void gemm_s8s8_s32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                   index_t m, index_t k, index_t n) {
  check_dims("gemm_s8s8_s32", m, k, n);
  if (m <= 0 || n <= 0) return;
#if defined(QAVAT_INT8_VNNI)
  if (use_vnni()) {
    thread_local std::vector<std::int8_t> bpack;
    thread_local std::vector<std::int32_t> bsum;
    bpack.resize(static_cast<std::size_t>(packed_b_s8_bytes(n, k)));
    bsum.resize(static_cast<std::size_t>(n));
    pack_b_s8(b, n, k, bpack.data(), bsum.data());
    gemm_s8s8_s32_prepacked(a, bpack.data(), bsum.data(), c, m, k, n);
    return;
  }
#endif
  // Portable mode: the row-major matrix IS the packed image — no copy.
  launch_int_rows(m, k * n, [=](index_t i0, index_t i1) {
    gemm_rows_portable(a, b, c, i0, i1, k, n);
  });
}

void quantize_to_s8(const float* x, index_t count, float inv_scale,
                    std::int32_t bias, std::int32_t lo, std::int32_t hi,
                    std::int8_t* out) {
  if (count < 0) {
    throw std::invalid_argument("quantize_to_s8: negative count");
  }
  if (lo < -128 || hi > 127 || lo > hi) {
    throw std::invalid_argument("quantize_to_s8: clamp range outside s8");
  }
  parallel_for_elems(count, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      std::int32_t v =
          static_cast<std::int32_t>(std::nearbyintf(x[i] * inv_scale)) + bias;
      v = std::min(std::max(v, lo), hi);
      out[i] = static_cast<std::int8_t>(v);
    }
  });
}

RequantScale requant_scale(double scale) {
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    throw std::invalid_argument("requant_scale: scale must be positive/finite");
  }
  int exp = 0;
  const double frac = std::frexp(scale, &exp);  // frac in [0.5, 1)
  std::int64_t q = std::llround(frac * static_cast<double>(std::int64_t{1} << 31));
  if (q == (std::int64_t{1} << 31)) {  // frac rounded up to exactly 1.0
    q >>= 1;
    ++exp;
  }
  RequantScale rs;
  rs.multiplier = static_cast<std::int32_t>(q);
  rs.shift = 31 - exp;
  // shift < 0 would need a left shift (scale >= 2^31); shift > 55 risks
  // int64 overflow in the rounding add (scale < 2^-24). Both are far
  // outside any sane activation-grid ratio.
  if (rs.shift < 0 || rs.shift > 55) {
    throw std::invalid_argument("requant_scale: scale out of [2^-24, 2^31)");
  }
  return rs;
}

std::int32_t requantize_one(std::int32_t acc, const RequantScale& rs) {
  const std::int64_t prod = static_cast<std::int64_t>(acc) * rs.multiplier;
  std::int64_t v;
  if (rs.shift > 0) {
    const std::int64_t half = std::int64_t{1} << (rs.shift - 1);
    v = prod >= 0 ? (prod + half) >> rs.shift : -((-prod + half) >> rs.shift);
  } else {
    v = prod;
  }
  if (v > std::int64_t{2147483647}) return 2147483647;
  if (v < std::int64_t{-2147483647} - 1) return -2147483648;
  return static_cast<std::int32_t>(v);
}

void requantize_s32_s8(const std::int32_t* acc, index_t count,
                       const RequantScale& rs, std::int32_t zero_point,
                       std::int8_t* out) {
  if (count < 0) {
    throw std::invalid_argument("requantize_s32_s8: negative count");
  }
  parallel_for_elems(count, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const std::int64_t v =
          static_cast<std::int64_t>(requantize_one(acc[i], rs)) + zero_point;
      out[i] = static_cast<std::int8_t>(
          std::min<std::int64_t>(std::max<std::int64_t>(v, -128), 127));
    }
  });
}

namespace detail {

bool int8_kernel_is_vnni() { return use_vnni(); }

void set_int8_force_portable(bool on) { g_force_portable = on; }

const char* int8_kernel_name() {
  return use_vnni() ? "avx512-vnni" : "portable";
}

}  // namespace detail

}  // namespace qavat
