#include "tensor/serialize.h"

#include <atomic>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

namespace qavat {

namespace {

// Envelope limits: a load must never allocate unbounded memory on a
// garbage size field read from a damaged file.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;
constexpr std::uint64_t kMaxEntries = 1ull << 20;
constexpr std::uint64_t kMaxNameLen = 1ull << 12;
constexpr std::uint32_t kMaxNdim = 16;

constexpr char kTensorMagic[4] = {'Q', 'V', 'T', 'N'};
constexpr char kDictMagic[4] = {'Q', 'V', 'S', 'D'};

// Process-wide envelope read counters (serialize_read_stats()). Relaxed:
// they are monotonic telemetry, never synchronization.
std::atomic<long long>& verified_counter() {
  static std::atomic<long long> n{0};
  return n;
}
std::atomic<long long>& failed_counter() {
  static std::atomic<long long> n{0};
  return n;
}

// -- payload writer: append native-endian PODs to a byte buffer ----------

template <typename T>
void put(std::string& buf, const T& v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_string(std::string& buf, const std::string& s) {
  put<std::uint64_t>(buf, s.size());
  buf.append(s);
}

void put_tensor(std::string& buf, const Tensor& t) {
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(t.ndim()));
  for (index_t d : t.shape()) put<std::int64_t>(buf, d);
  buf.append(reinterpret_cast<const char*>(t.data()),
             static_cast<std::size_t>(t.size()) * sizeof(float));
}

// -- payload reader: bounds-checked cursor over the loaded buffer --------

struct Cursor {
  const char* p;
  const char* end;

  bool get_raw(void* out, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) return false;
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
  template <typename T>
  bool get(T* out) {
    return get_raw(out, sizeof(T));
  }
  bool get_string(std::string* out) {
    std::uint64_t n = 0;
    if (!get(&n) || n > kMaxNameLen) return false;
    if (static_cast<std::uint64_t>(end - p) < n) return false;
    out->assign(p, static_cast<std::size_t>(n));
    p += n;
    return true;
  }
  bool get_tensor(Tensor* out) {
    std::uint32_t ndim = 0;
    if (!get(&ndim) || ndim > kMaxNdim) return false;
    if (ndim == 0) {
      // A default-constructed (empty) tensor: Tensor({}) would be a
      // one-element scalar, not the size-0 state that was saved.
      *out = Tensor{};
      return true;
    }
    std::vector<index_t> shape(ndim);
    std::uint64_t n = 1;
    for (std::uint32_t i = 0; i < ndim; ++i) {
      std::int64_t d = 0;
      if (!get(&d) || d < 0) return false;
      shape[i] = d;
      n *= static_cast<std::uint64_t>(d);
      if (n * sizeof(float) > kMaxPayloadBytes) return false;
    }
    Tensor t(std::move(shape));
    if (!get_raw(t.data(), static_cast<std::size_t>(t.size()) * sizeof(float))) {
      return false;
    }
    *out = std::move(t);
    return true;
  }
};

// Envelope: magic, version, payload size, payload bytes, FNV-1a of the
// payload. One writer/reader pair shared by both artifact kinds.
void write_envelope(std::ostream& os, const char magic[4],
                    const std::string& payload) {
  os.write(magic, 4);
  const std::uint32_t version = kSerializeVersion;
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t size = payload.size();
  os.write(reinterpret_cast<const char*>(&size), sizeof(size));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint64_t hash = fnv1a64(payload);
  os.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
}

bool read_envelope_impl(std::istream& is, const char magic[4],
                        std::string* payload) {
  char m[4];
  std::uint32_t version = 0;
  std::uint64_t size = 0;
  if (!is.read(m, 4) || std::memcmp(m, magic, 4) != 0) return false;
  if (!is.read(reinterpret_cast<char*>(&version), sizeof(version)) ||
      version != kSerializeVersion) {
    return false;
  }
  if (!is.read(reinterpret_cast<char*>(&size), sizeof(size)) ||
      size > kMaxPayloadBytes) {
    return false;
  }
  payload->resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !is.read(&(*payload)[0], static_cast<std::streamsize>(size))) {
    return false;
  }
  std::uint64_t hash = 0;
  if (!is.read(reinterpret_cast<char*>(&hash), sizeof(hash))) return false;
  return hash == fnv1a64(*payload);
}

// Counting wrapper: every envelope read lands in serialize_read_stats().
bool read_envelope(std::istream& is, const char magic[4],
                   std::string* payload) {
  const bool ok = read_envelope_impl(is, magic, payload);
  (ok ? verified_counter() : failed_counter())
      .fetch_add(1, std::memory_order_relaxed);
  return ok;
}

}  // namespace

SerializeReadStats serialize_read_stats() {
  SerializeReadStats s;
  s.envelopes_verified = verified_counter().load(std::memory_order_relaxed);
  s.envelopes_failed = failed_counter().load(std::memory_order_relaxed);
  return s;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

const Tensor* StateDict::find_tensor(const std::string& name) const {
  for (const auto& kv : tensors) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

const double* StateDict::find_scalar(const std::string& name) const {
  for (const auto& kv : scalars) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

void save_tensor(std::ostream& os, const Tensor& t) {
  std::string payload;
  put_tensor(payload, t);
  write_envelope(os, kTensorMagic, payload);
}

bool load_tensor(std::istream& is, Tensor* out) {
  std::string payload;
  if (!read_envelope(is, kTensorMagic, &payload)) return false;
  Cursor c{payload.data(), payload.data() + payload.size()};
  Tensor t;
  if (!c.get_tensor(&t) || c.p != c.end) return false;
  *out = std::move(t);
  return true;
}

void save_state_dict(std::ostream& os, const StateDict& sd) {
  std::string payload;
  put<std::uint64_t>(payload, sd.tensors.size());
  for (const auto& kv : sd.tensors) {
    put_string(payload, kv.first);
    put_tensor(payload, kv.second);
  }
  put<std::uint64_t>(payload, sd.scalars.size());
  for (const auto& kv : sd.scalars) {
    put_string(payload, kv.first);
    put<double>(payload, kv.second);
  }
  write_envelope(os, kDictMagic, payload);
}

bool load_state_dict(std::istream& is, StateDict* out) {
  std::string payload;
  if (!read_envelope(is, kDictMagic, &payload)) return false;
  Cursor c{payload.data(), payload.data() + payload.size()};
  StateDict sd;
  std::uint64_t n_tensors = 0;
  if (!c.get(&n_tensors) || n_tensors > kMaxEntries) return false;
  sd.tensors.reserve(static_cast<std::size_t>(n_tensors));
  for (std::uint64_t i = 0; i < n_tensors; ++i) {
    std::string name;
    Tensor t;
    if (!c.get_string(&name) || !c.get_tensor(&t)) return false;
    sd.tensors.emplace_back(std::move(name), std::move(t));
  }
  std::uint64_t n_scalars = 0;
  if (!c.get(&n_scalars) || n_scalars > kMaxEntries) return false;
  sd.scalars.reserve(static_cast<std::size_t>(n_scalars));
  for (std::uint64_t i = 0; i < n_scalars; ++i) {
    std::string name;
    double v = 0.0;
    if (!c.get_string(&name) || !c.get(&v)) return false;
    sd.scalars.emplace_back(std::move(name), v);
  }
  if (c.p != c.end) return false;
  *out = std::move(sd);
  return true;
}

}  // namespace qavat
