#include "tensor/parallel_for.h"

#include <cstdlib>

namespace qavat {

namespace detail {

namespace {
thread_local bool tl_in_parallel_region = false;
}  // namespace

bool in_parallel_region() { return tl_in_parallel_region; }
void set_in_parallel_region(bool on) { tl_in_parallel_region = on; }

}  // namespace detail

namespace {

index_t resolve_threads_from_env() {
  const char* v = std::getenv("QAVAT_THREADS");
  if (v != nullptr && v[0] != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return std::min<index_t>(static_cast<index_t>(n), 512);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<index_t>(hc) : 1;
}

index_t g_num_threads = 0;  // 0 = not yet resolved

}  // namespace

index_t num_threads() {
  if (g_num_threads <= 0) g_num_threads = resolve_threads_from_env();
  return g_num_threads;
}

void set_num_threads(index_t n) { g_num_threads = n > 0 ? n : 0; }

}  // namespace qavat
