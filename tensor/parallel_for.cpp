#include "tensor/parallel_for.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "tensor/thread_pool.h"

namespace qavat {

namespace detail {

namespace {
thread_local bool tl_in_parallel_region = false;
}  // namespace

bool in_parallel_region() { return tl_in_parallel_region; }
void set_in_parallel_region(bool on) { tl_in_parallel_region = on; }

}  // namespace detail

namespace {

index_t resolve_threads_from_env() {
  const char* v = std::getenv("QAVAT_THREADS");
  if (v != nullptr && v[0] != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return std::min<index_t>(static_cast<index_t>(n), 512);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<index_t>(hc) : 1;
}

// Cached budget; 0 = unresolved (next num_threads() reads the env).
// Atomic because pool workers read it while the dispatching thread may
// be lazily resolving it; the value is stable while workers are alive
// (writes happen only with the pool stopped or at its start).
std::atomic<index_t> g_num_threads{0};
// True after set_num_threads(n > 0): the programmatic override wins
// over QAVAT_THREADS at pool restarts until set_num_threads(0) unpins.
std::atomic<bool> g_pinned{false};

}  // namespace

index_t num_threads() {
  index_t n = g_num_threads.load(std::memory_order_relaxed);
  if (n <= 0) {
    n = resolve_threads_from_env();
    g_num_threads.store(n, std::memory_order_relaxed);
  }
  return n;
}

void set_num_threads(index_t n) {
  // Restart boundary: join the workers now; the pool respawns lazily at
  // the new budget on the next dispatch.
  ThreadPool::instance().stop();
  g_num_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
  g_pinned.store(n > 0, std::memory_order_relaxed);
}

namespace detail {

void refresh_thread_budget_from_env() {
  if (!g_pinned.load(std::memory_order_relaxed)) {
    g_num_threads.store(resolve_threads_from_env(), std::memory_order_relaxed);
  }
}

}  // namespace detail

}  // namespace qavat
