// Synthetic datasets. The container image has no dataset downloads, so the
// reproduction swaps MNIST/CIFAR for procedurally generated stand-ins with
// the same interface; DESIGN.md documents the substitution and what it
// preserves (task difficulty ordering, variability sensitivity).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace qavat {

/// A labelled image set. Images are {N, C, H, W} in [0, 1].
struct Dataset {
  Tensor images;
  std::vector<index_t> labels;
  index_t num_classes = 0;

  index_t size() const { return images.ndim() > 0 ? images.dim(0) : 0; }
  /// Batch of images at the given indices -> {B, C, H, W}.
  Tensor gather_images(const std::vector<index_t>& indices) const;
  /// Labels at the given indices.
  std::vector<index_t> gather_labels(const std::vector<index_t>& indices) const;
};

struct SplitDataset {
  Dataset train;
  Dataset test;
};

/// MNIST stand-in: 1x12x12 images of a 3x5 digit font, upscaled and
/// placed with random jitter, amplitude scaling and pixel noise.
struct SynthDigitsConfig {
  index_t n_train = 3000;
  index_t n_test = 500;
  index_t image_size = 12;
  double noise = 0.15;     // additive pixel noise stddev
  index_t jitter = 2;      // max |shift| in pixels
  std::uint64_t seed = 9001;
};

SplitDataset make_synth_digits(const SynthDigitsConfig& cfg);

/// CIFAR stand-in: CxHxW low-frequency class prototypes (random sinusoid
/// mixtures per class/channel) with cyclic shifts, contrast scaling and
/// pixel noise.
struct SynthImagesConfig {
  index_t n_train = 2500;
  index_t n_test = 500;
  index_t image_size = 16;
  index_t channels = 3;
  index_t num_classes = 10;
  double noise = 0.2;
  std::uint64_t seed = 9002;
};

SplitDataset make_synth_images(const SynthImagesConfig& cfg);

}  // namespace qavat
