#include "data/synth.h"

#include <algorithm>
#include <cmath>

namespace qavat {

Tensor Dataset::gather_images(const std::vector<index_t>& indices) const {
  const index_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  const index_t stride = c * h * w;
  Tensor out({static_cast<index_t>(indices.size()), c, h, w});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float* src = images.data() + indices[i] * stride;
    std::copy(src, src + stride, out.data() + static_cast<index_t>(i) * stride);
  }
  return out;
}

std::vector<index_t> Dataset::gather_labels(
    const std::vector<index_t>& indices) const {
  std::vector<index_t> out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = labels[static_cast<std::size_t>(indices[i])];
  }
  return out;
}

namespace {

// 3x5 digit font, row-major, one string per digit.
const char* kDigitFont[10] = {
    "111101101101111",  // 0
    "010110010010111",  // 1
    "111001111100111",  // 2
    "111001111001111",  // 3
    "101101111001001",  // 4
    "111100111001111",  // 5
    "111100111101111",  // 6
    "111001010010010",  // 7
    "111101111101111",  // 8
    "111101111001111",  // 9
};

void render_digit(float* img, index_t s, index_t digit, Rng& rng, double noise,
                  index_t jitter) {
  // Upscale each 3x5 font cell to 2x2 -> 6x10 glyph, centered + jitter.
  const index_t gw = 6, gh = 10;
  const index_t dx = (s - gw) / 2 + rng.below(2 * jitter + 1) - jitter;
  const index_t dy = (s - gh) / 2 + rng.below(2 * jitter + 1) - jitter;
  const float amp = static_cast<float>(rng.uniform(0.7, 1.0));
  const char* font = kDigitFont[digit];
  for (index_t y = 0; y < gh; ++y) {
    for (index_t x = 0; x < gw; ++x) {
      if (font[(y / 2) * 3 + x / 2] != '1') continue;
      const index_t py = dy + y, px = dx + x;
      if (py < 0 || py >= s || px < 0 || px >= s) continue;
      img[py * s + px] = amp;
    }
  }
  for (index_t i = 0; i < s * s; ++i) {
    img[i] = std::min(1.0f, std::max(0.0f, img[i] + static_cast<float>(
                                                        rng.normal(0.0, noise))));
  }
}

Dataset make_digit_split(const SynthDigitsConfig& cfg, index_t n, Rng& rng) {
  Dataset d;
  d.num_classes = 10;
  d.images.resize({n, 1, cfg.image_size, cfg.image_size});
  d.labels.resize(static_cast<std::size_t>(n));
  const index_t stride = cfg.image_size * cfg.image_size;
  for (index_t i = 0; i < n; ++i) {
    const index_t digit = i % 10;  // balanced classes
    d.labels[static_cast<std::size_t>(i)] = digit;
    render_digit(d.images.data() + i * stride, cfg.image_size, digit, rng,
                 cfg.noise, cfg.jitter);
  }
  return d;
}

}  // namespace

SplitDataset make_synth_digits(const SynthDigitsConfig& cfg) {
  SplitDataset s;
  Rng train_rng(cfg.seed, 0), test_rng(cfg.seed, 1);
  s.train = make_digit_split(cfg, cfg.n_train, train_rng);
  s.test = make_digit_split(cfg, cfg.n_test, test_rng);
  return s;
}

namespace {

// Per-(class, channel) low-frequency prototype: mixture of 3 2-D sinusoids
// whose frequencies/phases are drawn deterministically from the class seed.
struct Proto {
  double fx[3], fy[3], ph[3], w[3];
};

Proto make_proto(Rng& rng) {
  Proto p;
  for (int k = 0; k < 3; ++k) {
    p.fx[k] = rng.uniform(0.5, 2.5);
    p.fy[k] = rng.uniform(0.5, 2.5);
    p.ph[k] = rng.uniform(0.0, 6.2831853);
    p.w[k] = rng.uniform(0.5, 1.0);
  }
  return p;
}

float proto_at(const Proto& p, double u, double v) {
  double acc = 0.0;
  for (int k = 0; k < 3; ++k) {
    acc += p.w[k] * std::sin(6.2831853 * (p.fx[k] * u + p.fy[k] * v) + p.ph[k]);
  }
  return static_cast<float>(0.5 + acc / 6.0);  // roughly [0, 1]
}

Dataset make_image_split(const SynthImagesConfig& cfg,
                         const std::vector<Proto>& protos, index_t n, Rng& rng) {
  Dataset d;
  d.num_classes = cfg.num_classes;
  d.images.resize({n, cfg.channels, cfg.image_size, cfg.image_size});
  d.labels.resize(static_cast<std::size_t>(n));
  const index_t s = cfg.image_size;
  for (index_t i = 0; i < n; ++i) {
    const index_t cls = i % cfg.num_classes;
    d.labels[static_cast<std::size_t>(i)] = cls;
    const index_t sx = rng.below(s), sy = rng.below(s);  // cyclic shift
    const float contrast = static_cast<float>(rng.uniform(0.7, 1.0));
    for (index_t c = 0; c < cfg.channels; ++c) {
      const Proto& p = protos[static_cast<std::size_t>(cls * cfg.channels + c)];
      float* img = d.images.data() + (i * cfg.channels + c) * s * s;
      for (index_t y = 0; y < s; ++y) {
        for (index_t x = 0; x < s; ++x) {
          const double u = static_cast<double>((x + sx) % s) / static_cast<double>(s);
          const double v = static_cast<double>((y + sy) % s) / static_cast<double>(s);
          float val = contrast * proto_at(p, u, v) +
                      static_cast<float>(rng.normal(0.0, cfg.noise));
          img[y * s + x] = std::min(1.0f, std::max(0.0f, val));
        }
      }
    }
  }
  return d;
}

}  // namespace

SplitDataset make_synth_images(const SynthImagesConfig& cfg) {
  Rng proto_rng(cfg.seed, 7);
  std::vector<Proto> protos;
  protos.reserve(static_cast<std::size_t>(cfg.num_classes * cfg.channels));
  for (index_t i = 0; i < cfg.num_classes * cfg.channels; ++i) {
    protos.push_back(make_proto(proto_rng));
  }
  SplitDataset s;
  Rng train_rng(cfg.seed, 0), test_rng(cfg.seed, 1);
  s.train = make_image_split(cfg, protos, cfg.n_train, train_rng);
  s.test = make_image_split(cfg, protos, cfg.n_test, test_rng);
  return s;
}

}  // namespace qavat
