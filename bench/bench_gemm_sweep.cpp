// Int8-vs-float GEMM sweep. Times the float NT GEMM (tensor/ops.h)
// against the s8 x s8 -> s32 integer kernels (tensor/int_ops.h) — both
// the self-contained form (packs B per call, what a cold MVM pays) and
// the prepacked form (what the int8 eval backend pays per forward once
// its weight planes are cached) — across GoogLeNet-shaped problem sizes,
// from the tall-skinny first-stage im2col through the square classifier
// GEMM. Results merge into BENCH_micro.json (bench/bench_json.h) next to
// the bench_micro_smoke kernels; ci/check_bench_regression.py gates the
// int8 rows against ci/bench_baseline.json.
//
// This is a plain chrono-timed binary (no google-benchmark dependency)
// so it always builds; run with QAVAT_BENCH_JSON=/path to redirect or
// QAVAT_BENCH_JSON= (empty) to skip the file.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "tensor/int_ops.h"
#include "tensor/ops.h"
#include "tensor/parallel_for.h"
#include "tensor/tensor.h"

namespace {

using qavat::index_t;

// {m, k, n} = {im2col rows, fan-in, fan-out} of a GoogLeNet-ish layer at
// 224x224: stem 7x7, early 3x3s, mid/late inception 3x3 branches, and
// the 1024 -> 1000 classifier (batch 64).
struct SweepShape {
  index_t m, k, n;
};
const SweepShape kShapes[] = {
    {12544, 147, 64},  // stem conv 7x7/2
    {3136, 64, 64},    // conv2 reduce 1x1
    {3136, 576, 192},  // conv2 3x3
    {784, 192, 96},    // inception 3a reduce
    {784, 864, 128},   // inception 3a 3x3
    {196, 480, 192},   // inception 4a reduce
    {49, 832, 256},    // inception 5a reduce
    {64, 1024, 1000},  // classifier FC, batch 64
};

// Average wall-ms of fn(): one untimed warmup, then repeat until at
// least `min_ms` total and 3 iterations.
template <typename Fn>
double bench_ms(Fn&& fn, double min_ms = 100.0) {
  fn();
  int iters = 0;
  double total_ms = 0.0;
  while (total_ms < min_ms || iters < 3) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++iters;
  }
  return total_ms / iters;
}

}  // namespace

int main() {
  using namespace qavat;
  std::printf("gemm sweep: int8 kernel = %s, threads = %lld\n",
              detail::int8_kernel_name(),
              static_cast<long long>(num_threads()));

  std::vector<bench::BenchEntry> entries;
  for (const SweepShape& s : kShapes) {
    const double gmac = static_cast<double>(s.m) * s.k * s.n / 1e9;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "%lldx%lldx%lld",
                  static_cast<long long>(s.m), static_cast<long long>(s.k),
                  static_cast<long long>(s.n));

    Rng rng(41);
    Tensor a({s.m, s.k}), b({s.n, s.k});
    fill_normal(a, rng);
    fill_normal(b, rng);
    Tensor c;
    const double f32_ms =
        bench_ms([&] { c = matmul_nt(a, b); });

    // Integer operands: activation codes in [0, 255] stored biased
    // (s8 = code - 128, the a8 mapping) and weight codes in [-127, 127].
    std::vector<std::int8_t> ai(static_cast<std::size_t>(s.m * s.k));
    std::vector<std::int8_t> bi(static_cast<std::size_t>(s.n * s.k));
    Rng qrng(42);
    for (auto& v : ai) v = static_cast<std::int8_t>(qrng.below(256) - 128);
    for (auto& v : bi) v = static_cast<std::int8_t>(qrng.below(255) - 127);
    std::vector<std::int32_t> ci(static_cast<std::size_t>(s.m * s.n));
    const double s8_ms = bench_ms([&] {
      gemm_s8s8_s32(ai.data(), bi.data(), ci.data(), s.m, s.k,
                                 s.n);
    });

    std::vector<std::uint8_t> packed(static_cast<std::size_t>(
        packed_b_s8_bytes(s.n, s.k)));
    std::vector<std::int32_t> bsum(static_cast<std::size_t>(s.n));
    pack_b_s8(bi.data(), s.n, s.k, packed.data(), bsum.data());
    const double s8p_ms = bench_ms([&] {
      gemm_s8s8_s32_prepacked(ai.data(), packed.data(),
                                           bsum.data(), ci.data(), s.m, s.k,
                                           s.n);
    });

    const char* kinds[] = {"gemm_f32", "gemm_s8", "gemm_s8_prepacked"};
    const double times[] = {f32_ms, s8_ms, s8p_ms};
    for (int v = 0; v < 3; ++v) {
      bench::BenchEntry e;
      e.name = std::string(kinds[v]) + "/" + tag;
      e.wall_ms = times[v];
      e.gmacs = times[v] > 0.0 ? gmac / (times[v] / 1e3) : 0.0;
      entries.push_back(std::move(e));
    }
    std::printf(
        "%-16s f32 %7.2f ms (%6.1f GMAC/s)  s8 %7.2f ms (%6.1f GMAC/s)  "
        "s8-prepacked %7.2f ms (%6.1f GMAC/s)  speedup %.2fx\n",
        tag, f32_ms, gmac / (f32_ms / 1e3), s8_ms, gmac / (s8_ms / 1e3),
        s8p_ms, gmac / (s8p_ms / 1e3), f32_ms / s8p_ms);
  }

  return bench::write_bench_json_merged(bench::bench_json_path(), entries)
             ? 0
             : 1;
}
