// Fig. 7b reproduction: design-space exploration of self-tuning size.
// ResNet-18s A4W2, mixed-type layer-fixed variation, sigma_tot in
// {0.1, 0.3, 0.5}; sweep GTM cells over 10^1..10^5 with LTM in {1, 16}.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const ModelKind kind = ModelKind::kResNet18s;
  const VarianceModel vm = VarianceModel::kLayerFixed;
  SplitDataset data = make_dataset_for(kind);
  EvalConfig ecfg = default_eval_config(kind);
  ModelConfig mcfg = default_model_config(kind, 4, 2);

  std::printf("Fig. 7b: impact of self-tuning size (ResNet-18s, mixed-type,\n");
  std::printf("layer-fixed variance; mean accuracy %% over chips)\n\n");

  const index_t gtm_sizes[] = {10, 100, 1000, 100000};

  for (index_t ltm : {index_t{1}, index_t{16}}) {
    std::printf("LTM = %lld columns\n", static_cast<long long>(ltm));
    TextTable table({"GTM cells", "sigma=0.1", "sigma=0.3", "sigma=0.5"});
    for (index_t gtm : gtm_sizes) {
      std::vector<std::string> row = {std::to_string(gtm)};
      for (double sigma : {0.1, 0.3, 0.5}) {
        const VariabilityConfig env = VariabilityConfig::mixed(vm, sigma);
        TrainConfig tcfg = mixed_deploy_train_config(kind, vm, sigma);
        auto trained = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
        SelfTuneConfig st;
        st.mode = proper_mode(vm);
        st.gtm_cells = gtm;
        st.ltm_columns = ltm;
        const double acc = eval_mean(
            std::string("resnet18s_A4W2_f7b_g") + std::to_string(gtm) + "_l" +
                std::to_string(ltm) + "_" + env_key(env),
            *trained.model, data.test, env, ecfg, &st);
        row.push_back(pct(acc));
        std::fflush(stdout);
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: accuracy improves with GTM size with diminishing\n"
      "returns (larger sigma needs more cells before the gains flatten);\n"
      "LTM = 16 helps mainly at the highest variance level.\n");
  return 0;
}
