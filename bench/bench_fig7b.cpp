// Fig. 7b reproduction: design-space exploration of self-tuning size.
// ResNet-18s A4W2, mixed-type layer-fixed variation, sigma_tot in
// {0.1, 0.3, 0.5}; sweep GTM cells over 10^1..10^5 with LTM in {1, 16}.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_fig7b");
  const ModelKind kind = ModelKind::kResNet18s;
  const VarianceModel vm = VarianceModel::kLayerFixed;

  std::printf("Fig. 7b: impact of self-tuning size (ResNet-18s, mixed-type,\n");
  std::printf("layer-fixed variance; mean accuracy %% over chips)\n\n");

  const index_t gtm_sizes[] = {10, 100, 1000, 100000};

  for (index_t ltm : {index_t{1}, index_t{16}}) {
    std::printf("LTM = %lld columns\n", static_cast<long long>(ltm));
    TextTable table({"GTM cells", "sigma=0.1", "sigma=0.3", "sigma=0.5"});
    for (index_t gtm : gtm_sizes) {
      std::vector<std::string> row = {std::to_string(gtm)};
      for (double sigma : {0.1, 0.3, 0.5}) {
        ScenarioSpec spec =
            ScenarioSpec::mixed(kind, 4, 2, ScenarioAlgo::kQAVAT, vm, sigma);
        spec.with_selftune(proper_mode(vm), gtm, ltm);
        row.push_back(pct(bench.session.run(spec).mean_acc));
        std::fflush(stdout);
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: accuracy improves with GTM size with diminishing\n"
      "returns (larger sigma needs more cells before the gains flatten);\n"
      "LTM = 16 helps mainly at the highest variance level.\n");
  return 0;
}
