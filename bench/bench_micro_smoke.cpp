// Kernel microbenchmarks (google-benchmark): GEMM, quantized-layer forward,
// quantizer throughput, and crossbar MVM. These are engineering benches
// (not a paper table); they document the substrate's raw speed, which is
// what bounds the Monte-Carlo evaluation throughput.
#include <benchmark/benchmark.h>

#include "core/quant/qlayers.h"
#include "core/quant/quantizer.h"
#include "eval/evaluator.h"
#include "pim/chip.h"
#include "tensor/ops.h"
#include "tensor/parallel_for.h"

namespace qavat {
namespace {

void BM_Matmul(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

void BM_MatmulNT(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(256);

void BM_MatmulTN(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul_tn(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulTN)->Arg(64)->Arg(256);

// GEMM with an explicit thread count (results are bit-identical across
// counts; only throughput changes). Arg = threads.
void BM_MatmulThreads(benchmark::State& state) {
  const index_t n = 384;
  const index_t saved = num_threads();
  set_num_threads(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  set_num_threads(saved);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4);

// Monte-Carlo deployment evaluation of a LeNet-5s under mixed variability.
// Arg = chip_batch (1 = sequential chip loop, 8 = noise-batched forward);
// per-chip accuracies are identical, only throughput differs.
void BM_MonteCarloEval(benchmark::State& state) {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 16;
  dcfg.n_test = 128;
  SplitDataset data = make_synth_digits(dcfg);
  ModelConfig mcfg;
  mcfg.a_bits = 4;
  mcfg.w_bits = 2;
  mcfg.in_channels = 1;
  mcfg.image_size = 12;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.25f);
  }
  model->set_training(false);
  const VariabilityConfig vcfg =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.4);
  EvalConfig ecfg;
  ecfg.n_chips = 8;
  ecfg.max_test_samples = 128;
  ecfg.batch_size = 64;
  ecfg.chip_batch = state.range(0);
  for (auto _ : state) {
    EvalStats stats = evaluate_under_variability(*model, data.test, vcfg, ecfg);
    benchmark::DoNotOptimize(stats.accuracy.mean);
  }
  state.SetItemsProcessed(state.iterations() * ecfg.n_chips * 128);
}
BENCHMARK(BM_MonteCarloEval)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_QuantizeDequantize(benchmark::State& state) {
  Rng rng(2);
  Tensor x({state.range(0)});
  fill_normal(x, rng);
  Tensor out(x.shape());
  Tensor mask(x.shape());
  for (auto _ : state) {
    quantize_dequantize(x, 0.1f, 4, out, &mask);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeDequantize)->Arg(1 << 12)->Arg(1 << 16);

void BM_MmseScaleSearch(benchmark::State& state) {
  Rng rng(3);
  Tensor x({state.range(0)});
  fill_normal(x, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmse_scale(x, 2));
  }
}
BENCHMARK(BM_MmseScaleSearch)->Arg(1 << 10)->Arg(1 << 14);

void BM_QuantConvForward(benchmark::State& state) {
  Rng rng(4);
  QuantConv2d conv(16, 16, 3, 1, 1, 4, 2, rng);
  conv.act_quantizer().set_scale(0.1f);
  conv.set_training(false);
  Tensor x({8, 16, 16, 16});
  fill_normal(x, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  // MACs per iteration: N * Cout * Cin * K^2 * OH * OW
  state.SetItemsProcessed(state.iterations() * 8 * 16 * 16 * 9 * 16 * 16);
}
BENCHMARK(BM_QuantConvForward);

void BM_CrossbarMvm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(5);
  Tensor w({n, n});
  fill_normal(w, rng);
  CrossbarConfig cfg;
  cfg.variability =
      VariabilityConfig::within_only(VarianceModel::kWeightProportional, 0.3);
  PimChip chip(cfg, 1, 0);
  auto arr = chip.program_array(w);
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    auto y = arr.mvm(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CrossbarMvm)->Arg(128)->Arg(512);

void BM_VariabilitySampling(benchmark::State& state) {
  Rng rng(6);
  QuantLinear layer(512, 512, 4, 2, rng);
  auto cfg = VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.5);
  Rng noise_rng(7);
  for (auto _ : state) {
    sample_variability(layer, cfg, noise_rng);
    benchmark::DoNotOptimize(layer.noise_state().eps.data());
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_VariabilitySampling);

}  // namespace
}  // namespace qavat

BENCHMARK_MAIN();
