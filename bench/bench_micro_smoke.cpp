// Kernel microbenchmarks (google-benchmark): GEMM, conv-pipeline kernels
// (im2col/col2im/pooling), quantized-layer forward/backward, train-mode
// fwd+bwd, quantizer throughput, and crossbar MVM. These are engineering benches
// (not a paper table); they document the substrate's raw speed, which is
// what bounds the Monte-Carlo evaluation throughput.
//
// The custom main() below additionally emits a machine-readable
// BENCH_micro.json (per-kernel wall-ms and GMAC/s — for elementwise/copy
// kernels the rate field is Gelem/s) so the perf trajectory is recorded
// per commit and ci/check_bench_regression.py can compare against the
// committed baseline in ci/bench_baseline.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "core/models/models.h"
#include "core/quant/qlayers.h"
#include "core/quant/quantizer.h"
#include "core/train/trainer.h"
#include "eval/evaluator.h"
#include "pim/chip.h"
#include "tensor/conv_ops.h"
#include "tensor/ops.h"
#include "tensor/parallel_for.h"

namespace qavat {
namespace {

void BM_Matmul(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

void BM_MatmulNT(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(256);

void BM_MatmulTN(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul_tn(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulTN)->Arg(64)->Arg(256);

// GEMM with an explicit thread count (results are bit-identical across
// counts; only throughput changes). Arg = threads.
void BM_MatmulThreads(benchmark::State& state) {
  const index_t n = 384;
  const index_t saved = num_threads();
  set_num_threads(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  set_num_threads(saved);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4);

// Dispatch overhead of an empty parallel_for with one chunk per worker:
// the fixed cost every threaded kernel pays per call, now a persistent-
// pool wakeup instead of per-call thread creation. Arg = thread count;
// items are dispatches (the JSON rate field reads Gdispatch/s — higher
// is better). The acceptance bar: strictly faster than the fork-join
// replica below at equal thread count.
void BM_PoolDispatch(benchmark::State& state) {
  const index_t nt = state.range(0);
  const index_t saved = num_threads();
  set_num_threads(nt);
  for (auto _ : state) {
    parallel_for(index_t{0}, nt, index_t{1}, [](index_t, index_t) {});
  }
  state.SetItemsProcessed(state.iterations());
  set_num_threads(saved);
}
BENCHMARK(BM_PoolDispatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The dispatcher the pool replaced: spawn and join fresh std::threads
// for the same empty spans (one per extra worker), exactly as the old
// fork-join parallel_for did per call.
void BM_ForkJoinDispatch(benchmark::State& state) {
  const index_t nt = state.range(0);
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nt - 1));
    for (index_t t = 1; t < nt; ++t) {
      workers.emplace_back([](index_t, index_t) {}, t, t + 1);
    }
    for (auto& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForkJoinDispatch)->Arg(2)->Arg(4)->UseRealTime();

// Monte-Carlo deployment evaluation of a LeNet-5s under mixed variability.
// Arg = chip_batch (1 = sequential chip loop, 8 = noise-batched forward);
// per-chip accuracies are identical, only throughput differs.
void BM_MonteCarloEval(benchmark::State& state) {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 16;
  dcfg.n_test = 128;
  SplitDataset data = make_synth_digits(dcfg);
  ModelConfig mcfg;
  mcfg.a_bits = 4;
  mcfg.w_bits = 2;
  mcfg.in_channels = 1;
  mcfg.image_size = 12;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.25f);
  }
  model->set_training(false);
  const VariabilityConfig vcfg =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.4);
  EvalConfig ecfg;
  ecfg.n_chips = 8;
  ecfg.max_test_samples = 128;
  ecfg.batch_size = 64;
  ecfg.chip_batch = state.range(0);
  for (auto _ : state) {
    EvalStats stats = evaluate_under_variability(*model, data.test, vcfg, ecfg);
    benchmark::DoNotOptimize(stats.accuracy.mean);
  }
  state.SetItemsProcessed(state.iterations() * ecfg.n_chips * 128);
}
BENCHMARK(BM_MonteCarloEval)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// Inference-only helper layers for the MLP acceptance pair below. The
// model zoo is conv-first, where im2col bounds the eval wall clock; the
// int8-vs-float acceptance wants a GEMM-bound network so the integer
// kernel, not data movement, sets the ratio.
class FlattenLayer : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    Tensor y = x;
    const index_t n = x.dim(0);
    y.reshape({n, x.size() / n});
    return y;
  }
  Tensor backward(const Tensor&) override {
    throw std::logic_error("FlattenLayer: inference-only");
  }
};

class ReluLayer : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    Tensor y = x;
    float* p = y.data();
    const index_t n = y.size();
    for (index_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
    return y;
  }
  Tensor backward(const Tensor&) override {
    throw std::logic_error("ReluLayer: inference-only");
  }
};

// 144 -> 1024 -> 1024 -> 10 a8/w8 MLP on the synth-digit images.
std::unique_ptr<Module> make_int8_bench_mlp(Rng& rng) {
  ModelConfig mcfg;
  mcfg.a_bits = 8;
  mcfg.w_bits = 8;
  auto m = std::make_unique<Module>(ModelKind::kLeNet5s, mcfg);
  m->add_layer(std::make_unique<FlattenLayer>());
  m->add_layer(std::make_unique<QuantLinear>(144, 1024, 8, 8, rng));
  m->add_layer(std::make_unique<ReluLayer>());
  m->add_layer(std::make_unique<QuantLinear>(1024, 1024, 8, 8, rng));
  m->add_layer(std::make_unique<ReluLayer>());
  m->add_layer(std::make_unique<QuantLinear>(1024, 10, 8, 8, rng));
  return m;
}

// Acceptance pair for the integer inference fast path (DESIGN.md §12):
// the same GEMM-bound Monte-Carlo evaluation through the float
// weight-domain backend (Arg 0) and the int8 backend (Arg 1). The int8
// row must stay >= 2x faster than the float row on this config;
// ci/bench_baseline.json records both.
void BM_MlpMonteCarloEval(benchmark::State& state) {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 16;
  dcfg.n_test = 4096;
  SplitDataset data = make_synth_digits(dcfg);
  Rng rng(21);
  auto model = make_int8_bench_mlp(rng);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.05f);
  }
  model->set_training(false);
  const VariabilityConfig vcfg =
      VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.3);
  EvalConfig ecfg;
  ecfg.n_chips = 2;
  ecfg.max_test_samples = 4096;
  ecfg.batch_size = 256;
  ecfg.chip_batch = 2;
  ecfg.backend =
      state.range(0) == 1 ? EvalBackend::kInt8 : EvalBackend::kWeightDomain;
  for (auto _ : state) {
    EvalStats stats = evaluate_under_variability(*model, data.test, vcfg, ecfg);
    benchmark::DoNotOptimize(stats.accuracy.mean);
  }
  state.SetItemsProcessed(state.iterations() * ecfg.n_chips * 4096);
}
BENCHMARK(BM_MlpMonteCarloEval)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_QuantizeDequantize(benchmark::State& state) {
  Rng rng(2);
  Tensor x({state.range(0)});
  fill_normal(x, rng);
  Tensor out(x.shape());
  Tensor mask(x.shape());
  for (auto _ : state) {
    quantize_dequantize(x, 0.1f, 4, out, &mask);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeDequantize)->Arg(1 << 12)->Arg(1 << 16);

void BM_MmseScaleSearch(benchmark::State& state) {
  Rng rng(3);
  Tensor x({state.range(0)});
  fill_normal(x, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmse_scale(x, 2));
  }
}
BENCHMARK(BM_MmseScaleSearch)->Arg(1 << 10)->Arg(1 << 14);

void BM_QuantConvForward(benchmark::State& state) {
  Rng rng(4);
  QuantConv2d conv(16, 16, 3, 1, 1, 4, 2, rng);
  conv.refresh_weight_scale();
  conv.act_quantizer().set_scale(0.1f);
  conv.set_training(false);
  Tensor x({8, 16, 16, 16});
  fill_normal(x, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  // MACs per iteration: N * Cout * Cin * K^2 * OH * OW
  state.SetItemsProcessed(state.iterations() * 8 * 16 * 16 * 9 * 16 * 16);
}
BENCHMARK(BM_QuantConvForward);

// The conv-pipeline kernels in isolation (the wall clock the tentpole
// moves): im2col / col2im / pooling on the VGG-11s first-stage shape.
// Items are elements moved, so the JSON rate field reads Gelem/s.
void BM_Im2col(benchmark::State& state) {
  Rng rng(11);
  Tensor x({8, 16, 16, 16});
  fill_normal(x, rng);
  const ConvGeom g{8, 16, 16, 16, 3, 1, 1, 16, 16};
  Tensor cols;
  for (auto _ : state) {
    im2col(x, g, cols);
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetItemsProcessed(state.iterations() * g.rows() * g.ckk());
}
BENCHMARK(BM_Im2col);

void BM_Col2im(benchmark::State& state) {
  Rng rng(12);
  const ConvGeom g{8, 16, 16, 16, 3, 1, 1, 16, 16};
  Tensor dcols({g.rows(), g.ckk()});
  fill_normal(dcols, rng);
  Tensor gx;
  for (auto _ : state) {
    col2im(dcols, g, gx);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * g.rows() * g.ckk());
}
BENCHMARK(BM_Col2im);

void BM_MaxPool(benchmark::State& state) {
  Rng rng(13);
  Tensor x({8, 32, 16, 16});
  fill_normal(x, rng);
  Tensor y;
  std::vector<index_t> arg;
  for (auto _ : state) {
    maxpool2d(x, 2, y, arg);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_MaxPool);

// Training-mode conv forward + backward — the acceptance micro-bench for
// the threaded conv pipeline. MACs count the three GEMMs (forward, dW,
// dX). Arg = thread count; UseRealTime so multi-thread numbers report
// wall clock, not summed CPU time.
void BM_QuantConvFwdBwd(benchmark::State& state) {
  const index_t saved = num_threads();
  set_num_threads(state.range(0));
  Rng rng(14);
  QuantConv2d conv(16, 16, 3, 1, 1, 4, 2, rng);
  conv.refresh_weight_scale();
  conv.act_quantizer().set_scale(0.1f);
  conv.set_training(true);
  conv.weight().ensure_grad();
  conv.bias().ensure_grad();
  Tensor x({8, 16, 16, 16});
  fill_normal(x, rng);
  Tensor gy({8, 16, 16, 16});
  fill_normal(gy, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    Tensor gx = conv.backward(gy);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 * 8 * 16 * 16 * 9 * 16 * 16);
  set_num_threads(saved);
}
BENCHMARK(BM_QuantConvFwdBwd)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Training-mode forward + loss + backward of LeNet-5s on a 32-image
// synthetic batch — the per-step cost train() pays before the optimizer
// update (Adam lives inside core/train/trainer.cpp and is not separately
// benchable here). Items = images, so the rate is images/s.
void BM_TrainFwdBwd(benchmark::State& state) {
  SynthDigitsConfig dcfg;
  dcfg.n_train = 32;
  dcfg.n_test = 8;
  SplitDataset data = make_synth_digits(dcfg);
  ModelConfig mcfg;
  auto model = make_model(ModelKind::kLeNet5s, mcfg);
  for (QuantLayerBase* q : model->quant_layers()) {
    q->refresh_weight_scale();
    q->act_quantizer().set_scale(0.25f);
  }
  model->set_training(true);
  std::vector<index_t> idx(32);
  for (index_t i = 0; i < 32; ++i) idx[static_cast<std::size_t>(i)] = i;
  Tensor x = data.train.gather_images(idx);
  std::vector<index_t> y = data.train.gather_labels(idx);
  for (auto _ : state) {
    model->zero_grad();
    Tensor logits = model->forward(x);
    Tensor grad;
    softmax_xent(logits, y, &grad, nullptr);
    model->backward(grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_TrainFwdBwd)->Unit(benchmark::kMillisecond);

void BM_CrossbarMvm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(5);
  Tensor w({n, n});
  fill_normal(w, rng);
  CrossbarConfig cfg;
  cfg.variability =
      VariabilityConfig::within_only(VarianceModel::kWeightProportional, 0.3);
  PimChip chip(cfg, 1, 0);
  auto arr = chip.program_array(w);
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    auto y = arr.mvm(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CrossbarMvm)->Arg(128)->Arg(512);

void BM_VariabilitySampling(benchmark::State& state) {
  Rng rng(6);
  QuantLinear layer(512, 512, 4, 2, rng);
  auto cfg = VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.5);
  Rng noise_rng(7);
  for (auto _ : state) {
    sample_variability(layer, cfg, noise_rng);
    benchmark::DoNotOptimize(layer.noise_state().eps.data());
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_VariabilitySampling);

// Console reporter that also collects per-kernel wall time and the
// items_per_second rate so main() can emit the compact BENCH_micro.json.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double wall_ms = 0.0;
    double grate = 0.0;  // items_per_second / 1e9: GMAC/s or Gelem/s
  };
  std::vector<Entry> entries;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      Entry e;
      e.name = run.benchmark_name();
      if (run.iterations > 0) {
        e.wall_ms = 1e3 * run.real_accumulated_time /
                    static_cast<double>(run.iterations);
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) e.grate = it->second.value / 1e9;
      entries.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace
}  // namespace qavat

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  qavat::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Machine-readable perf record, merged so bench_gemm_sweep's kernels
  // in the same file survive a re-run of this binary (bench/bench_json.h
  // resolves QAVAT_BENCH_JSON and does the replace-by-name merge).
  std::vector<qavat::bench::BenchEntry> entries;
  entries.reserve(reporter.entries.size());
  for (const auto& e : reporter.entries) {
    qavat::bench::BenchEntry be;
    be.name = e.name;
    be.wall_ms = e.wall_ms;
    be.gmacs = e.grate;
    entries.push_back(std::move(be));
  }
  return qavat::bench::write_bench_json_merged(qavat::bench::bench_json_path(),
                                               entries)
             ? 0
             : 1;
}
