// Table I reproduction: within-chip variability, layer-fixed variance, at
// the lowest (sigma = 0.1) and highest (sigma = 0.5) variation levels.
// Columns: PTQ-VAT (the paper's "VAT" column), QAT, QAVAT; rows: ResNet-18s
// A4W2 / A8W4, VGG-11s A4W2 / A8W4, LeNet-5s A2W2 — each on its synthetic
// stand-in dataset (DESIGN.md §2). Declared as a ScenarioSpec grid; a warm
// run against a populated store retrains nothing and reproduces this
// table byte-identically (stdout carries only the deterministic numbers).
//
// The grid itself is the built-in "table1" manifest (eval/manifest.h) —
// the same 30 specs `qavat-sweep emit table1` writes out, so a fleet
// running that manifest against a shared store pre-warms exactly the
// artifacts this bench consumes.
#include "bench_common.h"

#include "eval/manifest.h"

using namespace qavat;
using namespace qavat::bench;

namespace {

struct Row {
  ModelKind kind;
  index_t a_bits, w_bits;
};

}  // namespace

int main() {
  BenchHarness bench("bench_table1");
  // Display-layout mirror of the manifest's nested order (rows, sigma,
  // algorithm) — the grid itself lives in make_table1().
  const Row rows[] = {
      {ModelKind::kResNet18s, 4, 2}, {ModelKind::kResNet18s, 8, 4},
      {ModelKind::kVGG11s, 4, 2},    {ModelKind::kVGG11s, 8, 4},
      {ModelKind::kLeNet5s, 2, 2},
  };
  const ScenarioAlgo algos[] = {ScenarioAlgo::kPTQVAT, ScenarioAlgo::kQAT,
                                ScenarioAlgo::kQAVAT};

  std::printf("Table I: QAVAT vs baselines at the lowest/highest variability\n");
  std::printf("(within-chip only, layer-fixed variance; mean accuracy %% over chips)\n\n");

  // The grid is the built-in "table1" manifest, declared up front and
  // run pipelined: scenario N+1 trains on the executor thread while
  // scenario N evaluates here. run_all returns results in manifest
  // order with sequential-run numbers, so the printed table is
  // byte-identical to a run() loop (and to a qavat-sweep run of the
  // same manifest).
  SweepManifest manifest;
  if (!builtin_manifest("table1", &manifest) ||
      manifest.specs.size() != sizeof(rows) / sizeof(rows[0]) * 2 *
                                   sizeof(algos) / sizeof(algos[0])) {
    std::fprintf(stderr, "bench_table1: built-in table1 manifest mismatch\n");
    return 1;
  }
  const std::vector<ScenarioResult> results =
      bench.session.run_all(manifest.specs);

  TextTable table({"Model", "A/W", "sigma", "PTQ-VAT", "QAT", "QAVAT"});
  std::size_t next = 0;
  for (const Row& row : rows) {
    for (double sigma : {0.1, 0.5}) {
      std::vector<std::string> cells = {
          to_string(row.kind),
          std::to_string(row.a_bits) + "/" + std::to_string(row.w_bits),
          TextTable::fmt(sigma, 1)};
      for (ScenarioAlgo algo : algos) {
        (void)algo;
        cells.push_back(pct(results[next++].mean_acc));
      }
      table.add_row(std::move(cells));
    }
  }
  table.print();
  std::printf(
      "\nPaper (Table I, paper-scale models/datasets): QAVAT wins at every\n"
      "cell; PTQ-VAT collapses at W2; QAT collapses at high sigma, more so\n"
      "for A8W4 than A4W2.\n");
  return 0;
}
