// Table I reproduction: within-chip variability, layer-fixed variance, at
// the lowest (sigma = 0.1) and highest (sigma = 0.5) variation levels.
// Columns: PTQ-VAT (the paper's "VAT" column), QAT, QAVAT; rows: ResNet-18s
// A4W2 / A8W4, VGG-11s A4W2 / A8W4, LeNet-5s A2W2 — each on its synthetic
// stand-in dataset (DESIGN.md §2). Declared as a ScenarioSpec grid; a warm
// run against a populated store retrains nothing and reproduces this
// table byte-identically (stdout carries only the deterministic numbers).
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

namespace {

struct Row {
  ModelKind kind;
  index_t a_bits, w_bits;
};

}  // namespace

int main() {
  BenchHarness bench("bench_table1");
  const VarianceModel vm = VarianceModel::kLayerFixed;
  const Row rows[] = {
      {ModelKind::kResNet18s, 4, 2}, {ModelKind::kResNet18s, 8, 4},
      {ModelKind::kVGG11s, 4, 2},    {ModelKind::kVGG11s, 8, 4},
      {ModelKind::kLeNet5s, 2, 2},
  };
  const ScenarioAlgo algos[] = {ScenarioAlgo::kPTQVAT, ScenarioAlgo::kQAT,
                                ScenarioAlgo::kQAVAT};

  std::printf("Table I: QAVAT vs baselines at the lowest/highest variability\n");
  std::printf("(within-chip only, layer-fixed variance; mean accuracy %% over chips)\n\n");

  // Declare the whole grid up front and run it pipelined: scenario N+1
  // trains on the executor thread while scenario N evaluates here.
  // run_all returns results in declaration order with sequential-run
  // numbers, so the printed table is byte-identical to a run() loop.
  std::vector<ScenarioSpec> specs;
  for (const Row& row : rows) {
    for (double sigma : {0.1, 0.5}) {
      for (ScenarioAlgo algo : algos) {
        specs.push_back(ScenarioSpec::within(row.kind, row.a_bits, row.w_bits,
                                             algo, vm, sigma));
      }
    }
  }
  const std::vector<ScenarioResult> results = bench.session.run_all(specs);

  TextTable table({"Model", "A/W", "sigma", "PTQ-VAT", "QAT", "QAVAT"});
  std::size_t next = 0;
  for (const Row& row : rows) {
    for (double sigma : {0.1, 0.5}) {
      std::vector<std::string> cells = {
          to_string(row.kind),
          std::to_string(row.a_bits) + "/" + std::to_string(row.w_bits),
          TextTable::fmt(sigma, 1)};
      for (ScenarioAlgo algo : algos) {
        (void)algo;
        cells.push_back(pct(results[next++].mean_acc));
      }
      table.add_row(std::move(cells));
    }
  }
  table.print();
  std::printf(
      "\nPaper (Table I, paper-scale models/datasets): QAVAT wins at every\n"
      "cell; PTQ-VAT collapses at W2; QAT collapses at high sigma, more so\n"
      "for A8W4 than A4W2.\n");
  return 0;
}
