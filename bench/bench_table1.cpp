// Table I reproduction: within-chip variability, layer-fixed variance, at
// the lowest (sigma = 0.1) and highest (sigma = 0.5) variation levels.
// Columns: PTQ-VAT (the paper's "VAT" column), QAT, QAVAT; rows: ResNet-18s
// A4W2 / A8W4, VGG-11s A4W2 / A8W4, LeNet-5s A2W2 — each on its synthetic
// stand-in dataset (DESIGN.md §2).
#include <chrono>

#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

namespace {

struct Row {
  ModelKind kind;
  index_t a_bits, w_bits;
};

// Wall time of the Monte-Carlo evaluations alone (training excluded), so
// the batched-vs-sequential eval speedup is directly observable: compare
// a default run against QAVAT_CHIP_BATCH=1 (identical accuracies, only
// the wall time changes).
double g_eval_seconds = 0.0;

double timed_eval_mean(const std::string& key, Module& model, const Dataset& test,
                       const VariabilityConfig& vcfg, const EvalConfig& ecfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const double acc = eval_mean(key, model, test, vcfg, ecfg);
  g_eval_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return acc;
}

}  // namespace

int main() {
  const VarianceModel vm = VarianceModel::kLayerFixed;
  const Row rows[] = {
      {ModelKind::kResNet18s, 4, 2}, {ModelKind::kResNet18s, 8, 4},
      {ModelKind::kVGG11s, 4, 2},    {ModelKind::kVGG11s, 8, 4},
      {ModelKind::kLeNet5s, 2, 2},
  };

  std::printf("Table I: QAVAT vs baselines at the lowest/highest variability\n");
  std::printf("(within-chip only, layer-fixed variance; mean accuracy %% over chips)\n\n");

  TextTable table({"Model", "A/W", "sigma", "PTQ-VAT", "QAT", "QAVAT"});
  for (const Row& row : rows) {
    SplitDataset data = make_dataset_for(row.kind);
    ModelConfig mcfg = default_model_config(row.kind, row.a_bits, row.w_bits);
    EvalConfig ecfg = default_eval_config(row.kind);

    for (double sigma : {0.1, 0.5}) {
      const VariabilityConfig env = VariabilityConfig::within_only(vm, sigma);
      TrainConfig tcfg = within_train_config(row.kind, vm, sigma);

      auto key_base = std::string(to_string(row.kind)) + "_A" +
                      std::to_string(row.a_bits) + "W" + std::to_string(row.w_bits) +
                      "_t1_" + env_key(env);

      auto ptq = train_ptq_vat_cached(row.kind, mcfg, data, tcfg);
      const double acc_ptq =
          timed_eval_mean(key_base + "_PTQVAT", *ptq.model, data.test, env, ecfg);
      ptq.model.reset();

      auto qat = train_cached(row.kind, mcfg, TrainAlgo::kQAT, data, tcfg);
      const double acc_qat =
          timed_eval_mean(key_base + "_QAT", *qat.model, data.test, env, ecfg);
      qat.model.reset();

      auto qavat = train_cached(row.kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
      const double acc_qavat =
          timed_eval_mean(key_base + "_QAVAT", *qavat.model, data.test, env, ecfg);

      table.add_row({to_string(row.kind),
                     std::to_string(row.a_bits) + "/" + std::to_string(row.w_bits),
                     TextTable::fmt(sigma, 1), pct(acc_ptq), pct(acc_qat),
                     pct(acc_qavat)});
      std::fflush(stdout);
    }
  }
  table.print();
  std::printf(
      "\nPaper (Table I, paper-scale models/datasets): QAVAT wins at every\n"
      "cell; PTQ-VAT collapses at W2; QAT collapses at high sigma, more so\n"
      "for A8W4 than A4W2.\n");
  std::printf("\nMonte-Carlo evaluation wall time: %.2f s (chip batch %lld; "
              "set QAVAT_CHIP_BATCH=1 for the sequential path)\n",
              g_eval_seconds,
              static_cast<long long>(default_eval_config(rows[0].kind).chip_batch));
  return 0;
}
