// Table I reproduction: within-chip variability, layer-fixed variance, at
// the lowest (sigma = 0.1) and highest (sigma = 0.5) variation levels.
// Columns: PTQ-VAT (the paper's "VAT" column), QAT, QAVAT; rows: ResNet-18s
// A4W2 / A8W4, VGG-11s A4W2 / A8W4, LeNet-5s A2W2 — each on its synthetic
// stand-in dataset (DESIGN.md §2). Declared as a ScenarioSpec grid; a warm
// run against a populated store retrains nothing and reproduces this
// table byte-identically (stdout carries only the deterministic numbers).
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

namespace {

struct Row {
  ModelKind kind;
  index_t a_bits, w_bits;
};

}  // namespace

int main() {
  BenchHarness bench("bench_table1");
  const VarianceModel vm = VarianceModel::kLayerFixed;
  const Row rows[] = {
      {ModelKind::kResNet18s, 4, 2}, {ModelKind::kResNet18s, 8, 4},
      {ModelKind::kVGG11s, 4, 2},    {ModelKind::kVGG11s, 8, 4},
      {ModelKind::kLeNet5s, 2, 2},
  };
  const ScenarioAlgo algos[] = {ScenarioAlgo::kPTQVAT, ScenarioAlgo::kQAT,
                                ScenarioAlgo::kQAVAT};

  std::printf("Table I: QAVAT vs baselines at the lowest/highest variability\n");
  std::printf("(within-chip only, layer-fixed variance; mean accuracy %% over chips)\n\n");

  TextTable table({"Model", "A/W", "sigma", "PTQ-VAT", "QAT", "QAVAT"});
  for (const Row& row : rows) {
    for (double sigma : {0.1, 0.5}) {
      std::vector<std::string> cells = {
          to_string(row.kind),
          std::to_string(row.a_bits) + "/" + std::to_string(row.w_bits),
          TextTable::fmt(sigma, 1)};
      for (ScenarioAlgo algo : algos) {
        const ScenarioSpec spec = ScenarioSpec::within(
            row.kind, row.a_bits, row.w_bits, algo, vm, sigma);
        cells.push_back(pct(bench.session.run(spec).mean_acc));
        std::fflush(stdout);
      }
      table.add_row(std::move(cells));
    }
  }
  table.print();
  std::printf(
      "\nPaper (Table I, paper-scale models/datasets): QAVAT wins at every\n"
      "cell; PTQ-VAT collapses at W2; QAT collapses at high sigma, more so\n"
      "for A8W4 than A4W2.\n");
  return 0;
}
