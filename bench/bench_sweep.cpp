// Multi-process sweep orchestration check: fork K worker processes over
// ONE manifest sharing ONE cold artifact store, and assert the
// work-claim protocol (eval/store.h, DESIGN.md §14) plus the
// claim-aware scheduler (Session::run_manifest, DESIGN.md §15)
// coordinated them —
//
//   1. exactly one training per claim unit: the sum of the workers'
//      train() phase counts equals what a single process needs for the
//      grid (no duplicated work, no lost work);
//   2. byte-identical results: every worker's result vector — which
//      run_manifest returns in manifest order whatever dynamic order
//      the scheduler executed — is bitwise equal to a single-process
//      run_all reference on a second fresh store.
//
// Workers all start at manifest position 0; the scheduler itself
// provides the contention schedule (a worker finding a unit's claim
// busy defers that spec and moves to the next unclaimed one), which is
// exactly the mechanism under test. Workers are forked before any
// compute so no thread pool threads exist yet.
//
//   bench_sweep [--workers K]     (or QAVAT_SWEEP_WORKERS; default 2)
//
// Exits 0 with "bench_sweep: PASS" on stdout, nonzero with a diagnostic
// otherwise. QAVAT_FAST=1 is respected like every bench.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/manifest.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "eval/store.h"

namespace fs = std::filesystem;
using namespace qavat;

namespace {

SweepManifest sweep_manifest() {
  SweepManifest m;
  if (!builtin_manifest("sweep_sigma", &m)) {
    std::fprintf(stderr, "bench_sweep: missing built-in sweep_sigma grid\n");
    std::exit(1);
  }
  return m;
}

// What each process reports for comparison: the per-scenario numbers
// that must be bitwise identical across workers and reference.
struct SweepReport {
  long long train_runs = 0;
  long long deferrals = 0;     // scheduler skip count (workers only)
  std::vector<double> values;  // [clean_acc, mean_acc, mc.accuracy.stddev] * n
};

SweepReport report_from(const std::vector<ScenarioResult>& results,
                        long long runs_before) {
  SweepReport rep;
  rep.train_runs = static_cast<long long>(training_runs()) - runs_before;
  rep.values.resize(3 * results.size(), 0.0);
  for (size_t i = 0; i < results.size(); ++i) {
    rep.values[3 * i + 0] = results[i].clean_acc;
    rep.values[3 * i + 1] = results[i].mean_acc;
    rep.values[3 * i + 2] = results[i].mc.accuracy.stddev;
  }
  return rep;
}

// Worker body: one claim-aware run_manifest pass over the shared store.
SweepReport run_worker() {
  const SweepManifest m = sweep_manifest();
  const long long runs_before = static_cast<long long>(training_runs());
  Session session;
  SweepSchedule schedule;
  const std::vector<ScenarioResult> results =
      session.run_manifest(m, &schedule);
  session.print_summary("bench_sweep.worker");
  SweepReport rep = report_from(results, runs_before);
  rep.deferrals = static_cast<long long>(schedule.deferrals);
  return rep;
}

// Reference body: plain sequential-semantics run_all on a private store.
SweepReport run_reference() {
  const SweepManifest m = sweep_manifest();
  const long long runs_before = static_cast<long long>(training_runs());
  Session session;
  const std::vector<ScenarioResult> results = session.run_all(m.specs);
  session.print_summary("bench_sweep.ref");
  return report_from(results, runs_before);
}

bool write_all(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 2;
  if (const char* env = std::getenv("QAVAT_SWEEP_WORKERS")) {
    if (*env) workers = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--workers K]\n", argv[0]);
      return 2;
    }
  }
  if (workers < 1) workers = 1;

  // Fresh private stores: one shared by all workers (cold, contended),
  // one for the single-process reference. Unique per invocation so a
  // rerun is cold again and the exactly-once assertion is meaningful.
  const fs::path base = fs::temp_directory_path() /
                        ("qavat-sweep-" + std::to_string(::getpid()));
  const fs::path shared_store = base / "shared";
  const fs::path ref_store = base / "ref";
  std::error_code ec;
  fs::remove_all(base, ec);
  fs::create_directories(shared_store);
  fs::create_directories(ref_store);

  const size_t n_values = 3 * sweep_manifest().specs.size();
  std::vector<pid_t> pids;
  std::vector<int> pipes;
  // Fork BEFORE any training/eval: compute thread pools and dataset
  // caches start lazily, so pre-compute children carry no stray threads.
  std::fflush(stdout);
  std::fflush(stderr);
  for (int w = 0; w < workers; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::close(fds[0]);
      ::setenv("QAVAT_STORE_DIR", shared_store.c_str(), 1);
      const SweepReport rep = run_worker();
      const bool ok = write_all(fds[1], &rep.train_runs,
                                sizeof rep.train_runs) &&
                      write_all(fds[1], &rep.deferrals,
                                sizeof rep.deferrals) &&
                      write_all(fds[1], rep.values.data(),
                                rep.values.size() * sizeof(double));
      ::close(fds[1]);
      std::fflush(nullptr);
      ::_exit(ok ? 0 : 1);
    }
    ::close(fds[1]);
    pids.push_back(pid);
    pipes.push_back(fds[0]);
  }

  bool failed = false;
  long long worker_runs_sum = 0;
  long long deferrals_sum = 0;
  std::vector<std::vector<double>> worker_values(workers);
  for (int w = 0; w < workers; ++w) {
    long long runs = 0;
    long long defers = 0;
    worker_values[w].resize(n_values, 0.0);
    if (!read_all(pipes[w], &runs, sizeof runs) ||
        !read_all(pipes[w], &defers, sizeof defers) ||
        !read_all(pipes[w], worker_values[w].data(),
                  n_values * sizeof(double))) {
      std::fprintf(stderr, "bench_sweep: worker %d report truncated\n", w);
      failed = true;
    }
    ::close(pipes[w]);
    worker_runs_sum += runs;
    deferrals_sum += defers;
  }
  for (int w = 0; w < workers; ++w) {
    int status = 0;
    if (::waitpid(pids[w], &status, 0) != pids[w] ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "bench_sweep: worker %d exited abnormally\n", w);
      failed = true;
    }
  }
  // The deferral sum is reported, not asserted: whether workers ever
  // collide on a live claim is a timing property of the host.
  std::fprintf(stderr, "bench_sweep: scheduler deferrals=%lld across %d "
               "workers\n", deferrals_sum, workers);

  // Single-process run_all reference on its own fresh store (the parent
  // has run no compute yet, so this is a true cold run of the grid) —
  // run_manifest's ordering contract is checked against it bitwise.
  ::setenv("QAVAT_STORE_DIR", ref_store.c_str(), 1);
  const SweepReport ref = run_reference();

  if (worker_runs_sum != ref.train_runs) {
    std::fprintf(stderr,
                 "bench_sweep: FAIL train-run sum %lld across %d workers, "
                 "expected %lld (single-process cold run) — work was "
                 "duplicated or lost\n",
                 worker_runs_sum, workers, ref.train_runs);
    failed = true;
  }
  for (int w = 0; w < workers; ++w) {
    if (worker_values[w].size() == n_values &&
        std::memcmp(worker_values[w].data(), ref.values.data(),
                    n_values * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "bench_sweep: FAIL worker %d results differ from "
                   "single-process reference\n",
                   w);
      for (size_t i = 0; i < n_values; ++i) {
        if (worker_values[w][i] != ref.values[i]) {
          std::fprintf(stderr, "  value[%zu]: worker %.17g vs ref %.17g\n", i,
                       worker_values[w][i], ref.values[i]);
        }
      }
      failed = true;
    }
  }

  fs::remove_all(base, ec);
  if (failed) {
    std::printf("bench_sweep: FAIL (workers=%d)\n", workers);
    return 1;
  }
  std::printf("bench_sweep: PASS workers=%d scenarios=%zu train_runs=%lld "
              "(sum across workers == single-process reference; results "
              "byte-identical)\n",
              workers, sweep_manifest().specs.size(), ref.train_runs);
  return 0;
}
