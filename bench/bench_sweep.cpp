// Multi-process sweep orchestration check: fork K worker processes over
// ONE spec grid sharing ONE cold artifact store, and assert the
// work-claim protocol (eval/store.h, DESIGN.md §14) coordinated them —
//
//   1. exactly one training per claim unit: the sum of the workers'
//      train() phase counts equals what a single process needs for the
//      grid (no duplicated work, no lost work);
//   2. byte-identical results: every worker's result vector, reordered
//      to the canonical grid order, is bitwise equal to a single-process
//      reference run on a second fresh store.
//
// Workers start the grid at rotated offsets so they collide on different
// keys at different times — the interesting contention schedule — and
// are forked before any compute so no thread pool threads exist yet.
//
//   bench_sweep [--workers K]     (or QAVAT_SWEEP_WORKERS; default 2)
//
// Exits 0 with "bench_sweep: PASS" on stdout, nonzero with a diagnostic
// otherwise. QAVAT_FAST=1 is respected like every bench.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "eval/scenario.h"
#include "eval/store.h"

namespace fs = std::filesystem;
using namespace qavat;

namespace {

std::vector<ScenarioSpec> sweep_grid() {
  std::vector<ScenarioSpec> specs;
  for (double sigma : {0.1, 0.2, 0.3, 0.4}) {
    specs.push_back(ScenarioSpec::within(ModelKind::kLeNet5s, 4, 4,
                                         ScenarioAlgo::kQAVAT,
                                         VarianceModel::kWeightProportional,
                                         sigma));
  }
  return specs;
}

// What each process reports for comparison: the per-scenario numbers
// that must be bitwise identical across workers and reference.
struct SweepReport {
  long long train_runs = 0;
  std::vector<double> values;  // [clean_acc, mean_acc, mc.accuracy.stddev] * n
};

// Run the grid through one Session (starting at spec offset `rotate`),
// and report values in canonical grid order regardless of rotation.
SweepReport run_grid(int rotate) {
  const std::vector<ScenarioSpec> grid = sweep_grid();
  std::vector<ScenarioSpec> order;
  for (size_t i = 0; i < grid.size(); ++i) {
    order.push_back(grid[(i + static_cast<size_t>(rotate)) % grid.size()]);
  }
  const long long runs_before = training_runs();
  Session session;
  const std::vector<ScenarioResult> results = session.run_all(order);
  session.print_summary("bench_sweep.worker");

  SweepReport rep;
  rep.train_runs = training_runs() - runs_before;
  rep.values.resize(3 * grid.size(), 0.0);
  for (size_t i = 0; i < results.size(); ++i) {
    const size_t canon = (i + static_cast<size_t>(rotate)) % grid.size();
    rep.values[3 * canon + 0] = results[i].clean_acc;
    rep.values[3 * canon + 1] = results[i].mean_acc;
    rep.values[3 * canon + 2] = results[i].mc.accuracy.stddev;
  }
  return rep;
}

bool write_all(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 2;
  if (const char* env = std::getenv("QAVAT_SWEEP_WORKERS")) {
    if (*env) workers = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--workers K]\n", argv[0]);
      return 2;
    }
  }
  if (workers < 1) workers = 1;

  // Fresh private stores: one shared by all workers (cold, contended),
  // one for the single-process reference. Unique per invocation so a
  // rerun is cold again and the exactly-once assertion is meaningful.
  const fs::path base = fs::temp_directory_path() /
                        ("qavat-sweep-" + std::to_string(::getpid()));
  const fs::path shared_store = base / "shared";
  const fs::path ref_store = base / "ref";
  std::error_code ec;
  fs::remove_all(base, ec);
  fs::create_directories(shared_store);
  fs::create_directories(ref_store);

  const size_t n_values = 3 * sweep_grid().size();
  std::vector<pid_t> pids;
  std::vector<int> pipes;
  // Fork BEFORE any training/eval: compute thread pools and dataset
  // caches start lazily, so pre-compute children carry no stray threads.
  std::fflush(stdout);
  std::fflush(stderr);
  for (int w = 0; w < workers; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::close(fds[0]);
      ::setenv("QAVAT_STORE_DIR", shared_store.c_str(), 1);
      const SweepReport rep = run_grid(w);
      const bool ok = write_all(fds[1], &rep.train_runs,
                                sizeof rep.train_runs) &&
                      write_all(fds[1], rep.values.data(),
                                rep.values.size() * sizeof(double));
      ::close(fds[1]);
      std::fflush(nullptr);
      ::_exit(ok ? 0 : 1);
    }
    ::close(fds[1]);
    pids.push_back(pid);
    pipes.push_back(fds[0]);
  }

  bool failed = false;
  long long worker_runs_sum = 0;
  std::vector<std::vector<double>> worker_values(workers);
  for (int w = 0; w < workers; ++w) {
    long long runs = 0;
    worker_values[w].resize(n_values, 0.0);
    if (!read_all(pipes[w], &runs, sizeof runs) ||
        !read_all(pipes[w], worker_values[w].data(),
                  n_values * sizeof(double))) {
      std::fprintf(stderr, "bench_sweep: worker %d report truncated\n", w);
      failed = true;
    }
    ::close(pipes[w]);
    worker_runs_sum += runs;
  }
  for (int w = 0; w < workers; ++w) {
    int status = 0;
    if (::waitpid(pids[w], &status, 0) != pids[w] ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "bench_sweep: worker %d exited abnormally\n", w);
      failed = true;
    }
  }

  // Single-process reference on its own fresh store (the parent has run
  // no compute yet, so this is a true cold run of the same grid).
  ::setenv("QAVAT_STORE_DIR", ref_store.c_str(), 1);
  const SweepReport ref = run_grid(0);

  if (worker_runs_sum != ref.train_runs) {
    std::fprintf(stderr,
                 "bench_sweep: FAIL train-run sum %lld across %d workers, "
                 "expected %lld (single-process cold run) — work was "
                 "duplicated or lost\n",
                 worker_runs_sum, workers, ref.train_runs);
    failed = true;
  }
  for (int w = 0; w < workers; ++w) {
    if (worker_values[w].size() == n_values &&
        std::memcmp(worker_values[w].data(), ref.values.data(),
                    n_values * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "bench_sweep: FAIL worker %d results differ from "
                   "single-process reference\n",
                   w);
      for (size_t i = 0; i < n_values; ++i) {
        if (worker_values[w][i] != ref.values[i]) {
          std::fprintf(stderr, "  value[%zu]: worker %.17g vs ref %.17g\n", i,
                       worker_values[w][i], ref.values[i]);
        }
      }
      failed = true;
    }
  }

  fs::remove_all(base, ec);
  if (failed) {
    std::printf("bench_sweep: FAIL (workers=%d)\n", workers);
    return 1;
  }
  std::printf("bench_sweep: PASS workers=%d scenarios=%zu train_runs=%lld "
              "(sum across workers == single-process reference; results "
              "byte-identical)\n",
              workers, sweep_grid().size(), ref.train_runs);
  return 0;
}
