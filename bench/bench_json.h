// Shared writer for the machine-readable perf record BENCH_micro.json
// (schema "qavat-bench-micro-v1"). More than one bench binary contributes
// kernels to the same file (bench_micro_smoke owns the google-benchmark
// suite, bench_gemm_sweep the int8-vs-float GEMM sweep), so the writer
// merges: existing kernels with the same name are replaced, all others
// are preserved in their original order, new names append. A file that
// does not parse as the schema below is treated as absent and the record
// starts fresh.
//
// The path comes from QAVAT_BENCH_JSON (empty value disables the file;
// unset means "BENCH_micro.json" in the working directory), matching
// ci/check_bench_regression.py which consumes the record.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/parallel_for.h"

namespace qavat {
namespace bench {

struct BenchEntry {
  std::string name;
  double wall_ms = 0.0;
  double gmacs = 0.0;  // GMAC/s, or Gelem/s for elementwise/copy kernels
};

/// Resolved output path: QAVAT_BENCH_JSON override, default
/// "BENCH_micro.json"; an empty string means "do not write".
inline std::string bench_json_path() {
  const char* env = std::getenv("QAVAT_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string("BENCH_micro.json");
}

/// Best-effort parse of an existing record written by this header (one
/// kernel object per line). Anything that does not match is ignored; a
/// missing or corrupt file yields an empty list.
inline std::vector<BenchEntry> read_bench_json(const std::string& path) {
  std::vector<BenchEntry> out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  char line[512];
  bool schema_ok = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strstr(line, "\"qavat-bench-micro-v1\"") != nullptr) {
      schema_ok = true;
      continue;
    }
    char name[256];
    double wall_ms = 0.0;
    double gmacs = 0.0;
    if (std::sscanf(line,
                    " {\"name\": \"%255[^\"]\", \"wall_ms\": %lf, "
                    "\"gmacs\": %lf",
                    name, &wall_ms, &gmacs) == 3) {
      BenchEntry e;
      e.name = name;
      e.wall_ms = wall_ms;
      e.gmacs = gmacs;
      out.push_back(std::move(e));
    }
  }
  std::fclose(f);
  if (!schema_ok) out.clear();  // unknown file: start the record fresh
  return out;
}

/// Merge `entries` into the record at `path` (replace-by-name, preserve
/// order, append new) and rewrite it. Returns false if the file cannot
/// be written; an empty path is a silent no-op success.
inline bool write_bench_json_merged(const std::string& path,
                                    const std::vector<BenchEntry>& entries) {
  if (path.empty()) return true;
  std::vector<BenchEntry> merged = read_bench_json(path);
  for (const BenchEntry& e : entries) {
    bool replaced = false;
    for (BenchEntry& m : merged) {
      if (m.name == e.name) {
        m = e;
        replaced = true;
        break;
      }
    }
    if (!replaced) merged.push_back(e);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"qavat-bench-micro-v1\",\n");
  std::fprintf(f, "  \"threads_default\": %lld,\n",
               static_cast<long long>(num_threads()));
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const BenchEntry& e = merged[i];
    // %.6g, not fixed-point: dispatch-latency rows are ~1e-5 GMAC/s and
    // sub-microsecond wall times, which %.4f would flush to 0.0 and the
    // regression checker would read as a 100% drop.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_ms\": %.6g, \"gmacs\": "
                 "%.6g}%s\n",
                 e.name.c_str(), e.wall_ms, e.gmacs,
                 i + 1 < merged.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu kernels)\n", path.c_str(), merged.size());
  return true;
}

}  // namespace bench
}  // namespace qavat
