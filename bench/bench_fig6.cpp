// Fig. 6 reproduction: proper self-tuning prevents the mixed-type quality
// loss; the WRONG self-tuning makes it worse. ResNet-18s A4W2, mixed-type
// variation, sigma_tot in {0.1, 0.3, 0.5}, both variance models.
//
// Per the paper: QAVAT+ST uses 1e3 GTM cells and 1 LTM column by default;
// the layer-fixed model at sigma = 0.3, 0.5 uses 1e5 GTM cells and 16 LTM
// columns. "Wrong ST" applies the correction of the other variance model.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_fig6");
  const ModelKind kind = ModelKind::kResNet18s;

  std::printf("Fig. 6: self-tuning under mixed-type variation\n");
  std::printf("(ResNet-18s A4W2; mean accuracy %% over chips)\n\n");

  int panel = 0;
  for (VarianceModel vm :
       {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    std::printf("(%c) %s\n", 'a' + panel++, to_string(vm));
    TextTable table({"sigma_tot", "QAVAT+ST", "QAVAT", "QAVAT+WrongST"});
    for (double sigma : {0.1, 0.3, 0.5}) {
      const ScenarioSpec plain =
          ScenarioSpec::mixed(kind, 4, 2, ScenarioAlgo::kQAVAT, vm, sigma);
      const bool heavy = vm == VarianceModel::kLayerFixed && sigma >= 0.3;
      const index_t gtm = heavy ? 100000 : 1000;
      const index_t ltm = heavy ? 16 : 1;
      ScenarioSpec tuned = plain;
      tuned.with_selftune(proper_mode(vm), gtm, ltm);
      ScenarioSpec wrong = plain;
      wrong.with_selftune(wrong_mode(vm), gtm, ltm);

      table.add_row({TextTable::fmt(sigma, 1),
                     pct(bench.session.run(tuned).mean_acc),
                     pct(bench.session.run(plain).mean_acc),
                     pct(bench.session.run(wrong).mean_acc)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: QAVAT+ST recovers most of the mixed-type loss at every\n"
      "sigma; plain QAVAT collapses as sigma grows; the wrong ST is worse\n"
      "than no ST at all.\n");
  return 0;
}
