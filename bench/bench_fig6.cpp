// Fig. 6 reproduction: proper self-tuning prevents the mixed-type quality
// loss; the WRONG self-tuning makes it worse. ResNet-18s A4W2, mixed-type
// variation, sigma_tot in {0.1, 0.3, 0.5}, both variance models.
//
// Per the paper: QAVAT+ST uses 1e3 GTM cells and 1 LTM column by default;
// the layer-fixed model at sigma = 0.3, 0.5 uses 1e5 GTM cells and 16 LTM
// columns. "Wrong ST" applies the correction of the other variance model.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const ModelKind kind = ModelKind::kResNet18s;
  SplitDataset data = make_dataset_for(kind);
  EvalConfig ecfg = default_eval_config(kind);
  ModelConfig mcfg = default_model_config(kind, 4, 2);

  std::printf("Fig. 6: self-tuning under mixed-type variation\n");
  std::printf("(ResNet-18s A4W2; mean accuracy %% over chips)\n\n");

  int panel = 0;
  for (VarianceModel vm :
       {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    std::printf("(%c) %s\n", 'a' + panel++, to_string(vm));
    TextTable table({"sigma_tot", "QAVAT+ST", "QAVAT", "QAVAT+WrongST"});
    for (double sigma : {0.1, 0.3, 0.5}) {
      const VariabilityConfig env = VariabilityConfig::mixed(vm, sigma);
      TrainConfig tcfg = mixed_deploy_train_config(kind, vm, sigma);
      auto trained = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
      const std::string key_base =
          std::string("resnet18s_A4W2_f6_") + env_key(env);

      SelfTuneConfig st;
      st.mode = proper_mode(vm);
      const bool heavy = vm == VarianceModel::kLayerFixed && sigma >= 0.3;
      st.gtm_cells = heavy ? 100000 : 1000;
      st.ltm_columns = heavy ? 16 : 1;

      SelfTuneConfig wrong = st;
      wrong.mode = wrong_mode(vm);

      const double acc_st = eval_mean(key_base + "_ST", *trained.model, data.test,
                                      env, ecfg, &st);
      const double acc_plain =
          eval_mean(key_base + "_noST", *trained.model, data.test, env, ecfg);
      const double acc_wrong = eval_mean(key_base + "_wrongST", *trained.model,
                                         data.test, env, ecfg, &wrong);

      table.add_row({TextTable::fmt(sigma, 1), pct(acc_st), pct(acc_plain),
                     pct(acc_wrong)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: QAVAT+ST recovers most of the mixed-type loss at every\n"
      "sigma; plain QAVAT collapses as sigma grows; the wrong ST is worse\n"
      "than no ST at all.\n");
  return 0;
}
