// Self-tuning overhead accounting (paper §III.B and §IV.B): area overhead
// of LTM columns on a 512x512 array and of the per-chip GTM, plus the
// inference-time FLOPs ratio of all tuning modules relative to the base
// ResNet-18s with 1e5 GTM cells.
#include "core/selftune/overhead.h"

#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  std::printf("Self-tuning overhead (paper SIII.B / SIV.B)\n\n");

  // Area: independent of the model, a property of the array geometry.
  TextTable area({"LTM columns", "array", "area overhead %"});
  for (index_t ltm : {index_t{1}, index_t{8}, index_t{16}}) {
    area.add_row({std::to_string(ltm), "512x512",
                  TextTable::fmt(100.0 * ltm / 512.0, 2)});
  }
  area.print();
  std::printf("Paper: 0.2%% at LTM=1, 3.1%% at LTM=16.\n\n");

  // FLOPs ratio on ResNet-18s (1e5-cell GTM, per the paper).
  ModelConfig mcfg = default_model_config(ModelKind::kResNet18s, 4, 2);
  auto model = make_model(ModelKind::kResNet18s, mcfg);
  for (QuantLayerBase* q : quant_layers(*model)) {
    q->act_quantizer().set_scale(1.0f);  // enough for a tracing forward
  }
  Tensor sample({1, 3, 16, 16});
  Rng rng(7);
  fill_normal(sample, rng);

  TextTable flops({"LTM columns", "GTM cells", "tuning FLOPs / base %"});
  for (index_t ltm : {index_t{1}, index_t{8}, index_t{16}}) {
    auto report = selftune_overhead(*model, sample, 100000, ltm);
    flops.add_row({std::to_string(ltm), "100000",
                   TextTable::fmt(100.0 * report.tuning_flops_ratio(), 2)});
  }
  flops.print();
  std::printf(
      "Paper: ~0.3%% at LTM=1, ~2.2%% at LTM=8, ~4.4%% at LTM=16 (their\n"
      "ResNet-18 has larger fan-ins, which lowers the relative LTM cost;\n"
      "the scaling with LTM count is the comparable quantity).\n\n");

  auto report = selftune_overhead(*model, sample, 100000, 1);
  std::printf("GTM area fraction of a 64-array chip: %.4f%% (paper: < 0.1%%)\n",
              100.0 * report.area_gtm_fraction);
  std::printf("Base model MACs per sample: %.0f\n", report.base_macs);
  return 0;
}
