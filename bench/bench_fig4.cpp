// Fig. 4 reproduction: ResNet-18s on the CIFAR-100 stand-in, within-chip
// variability sweep sigma in {0.1..0.5}, for the four panels
// (a) A4W2 weight-proportional, (b) A8W4 weight-proportional,
// (c) A4W2 layer-fixed, (d) A8W4 layer-fixed; series: QAVAT, QAT, PTQ-VAT.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const ModelKind kind = ModelKind::kResNet18s;
  SplitDataset data = make_dataset_for(kind);
  EvalConfig ecfg = default_eval_config(kind);
  const double sigmas[] = {0.1, 0.3, 0.5};  // paper sweeps 5 points; 3 keep
                                            // the shape within CPU budget

  std::printf("Fig. 4: QAVAT vs QAT vs PTQ-VAT, ResNet-18s / SynthImages-100\n");
  std::printf("(within-chip variation; mean accuracy %% over chips)\n");

  int panel = 0;
  for (VarianceModel vm :
       {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    for (index_t a_bits : {index_t{4}, index_t{8}}) {
      const index_t w_bits = a_bits == 4 ? 2 : 4;
      std::printf("\n(%c) A%lldW%lld, %s\n", 'a' + panel++,
                  static_cast<long long>(a_bits), static_cast<long long>(w_bits),
                  to_string(vm));
      TextTable table({"sigma", "QAVAT", "QAT", "PTQ-VAT"});
      ModelConfig mcfg = default_model_config(kind, a_bits, w_bits);

      for (double sigma : sigmas) {
        const VariabilityConfig env = VariabilityConfig::within_only(vm, sigma);
        TrainConfig tcfg = within_train_config(kind, vm, sigma);
        const std::string key_base = std::string(to_string(kind)) + "_A" +
                                     std::to_string(a_bits) + "W" +
                                     std::to_string(w_bits) + "_f4_" + env_key(env);

        auto qavat = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
        const double acc_qavat =
            eval_mean(key_base + "_QAVAT", *qavat.model, data.test, env, ecfg);
        qavat.model.reset();

        auto qat = train_cached(kind, mcfg, TrainAlgo::kQAT, data, tcfg);
        const double acc_qat =
            eval_mean(key_base + "_QAT", *qat.model, data.test, env, ecfg);
        qat.model.reset();

        auto ptq = train_ptq_vat_cached(kind, mcfg, data, tcfg);
        const double acc_ptq =
            eval_mean(key_base + "_PTQVAT", *ptq.model, data.test, env, ecfg);

        table.add_row({TextTable::fmt(sigma, 1), pct(acc_qavat), pct(acc_qat),
                       pct(acc_ptq)});
        std::fflush(stdout);
      }
      table.print();
    }
  }
  std::printf(
      "\nPaper shape: QAVAT stays nearly flat; QAT degrades sharply with\n"
      "sigma (worse at A8W4 than A4W2); PTQ-VAT is far below at A4W2 and\n"
      "competitive only at A8W4 / low sigma.\n");
  return 0;
}
