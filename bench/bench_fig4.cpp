// Fig. 4 reproduction: ResNet-18s on the CIFAR-100 stand-in, within-chip
// variability sweep sigma in {0.1..0.5}, for the four panels
// (a) A4W2 weight-proportional, (b) A8W4 weight-proportional,
// (c) A4W2 layer-fixed, (d) A8W4 layer-fixed; series: QAVAT, QAT, PTQ-VAT.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_fig4");
  const ModelKind kind = ModelKind::kResNet18s;
  const double sigmas[] = {0.1, 0.3, 0.5};  // paper sweeps 5 points; 3 keep
                                            // the shape within CPU budget
  const ScenarioAlgo algos[] = {ScenarioAlgo::kQAVAT, ScenarioAlgo::kQAT,
                                ScenarioAlgo::kPTQVAT};

  std::printf("Fig. 4: QAVAT vs QAT vs PTQ-VAT, ResNet-18s / SynthImages-100\n");
  std::printf("(within-chip variation; mean accuracy %% over chips)\n");

  int panel = 0;
  for (VarianceModel vm :
       {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    for (index_t a_bits : {index_t{4}, index_t{8}}) {
      const index_t w_bits = a_bits == 4 ? 2 : 4;
      std::printf("\n(%c) A%lldW%lld, %s\n", 'a' + panel++,
                  static_cast<long long>(a_bits), static_cast<long long>(w_bits),
                  to_string(vm));
      TextTable table({"sigma", "QAVAT", "QAT", "PTQ-VAT"});
      for (double sigma : sigmas) {
        std::vector<std::string> cells = {TextTable::fmt(sigma, 1)};
        for (ScenarioAlgo algo : algos) {
          const ScenarioSpec spec =
              ScenarioSpec::within(kind, a_bits, w_bits, algo, vm, sigma);
          cells.push_back(pct(bench.session.run(spec).mean_acc));
          std::fflush(stdout);
        }
        table.add_row(std::move(cells));
      }
      table.print();
    }
  }
  std::printf(
      "\nPaper shape: QAVAT stays nearly flat; QAT degrades sharply with\n"
      "sigma (worse at A8W4 than A4W2); PTQ-VAT is far below at A4W2 and\n"
      "competitive only at A8W4 / low sigma.\n");
  return 0;
}
