// Table II reproduction: self-tuning for A8W4 models under mixed-type
// variation with weight-proportional variance. VGG-11s and ResNet-18s,
// sigma_tot in {0.1, 0.3, 0.5}; rows QAVAT, QAVAT+ST, QAVAT+WrongST.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const VarianceModel vm = VarianceModel::kWeightProportional;
  const double sigmas[] = {0.1, 0.3, 0.5};

  std::printf("Table II: self-tuning prevents mixed-type quality loss\n");
  std::printf("(A8W4, weight-proportional variance; mean accuracy %% over chips)\n\n");

  for (ModelKind kind : {ModelKind::kVGG11s, ModelKind::kResNet18s}) {
    SplitDataset data = make_dataset_for(kind);
    EvalConfig ecfg = default_eval_config(kind);
    ModelConfig mcfg = default_model_config(kind, 8, 4);

    std::printf("%s\n", to_string(kind));
    TextTable table({"sigma_tot", "QAVAT", "QAVAT+ST", "QAVAT+WrongST"});
    for (double sigma : sigmas) {
      const VariabilityConfig env = VariabilityConfig::mixed(vm, sigma);
      TrainConfig tcfg = mixed_deploy_train_config(kind, vm, sigma);
      auto trained = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
      const std::string key_base =
          std::string(to_string(kind)) + "_A8W4_t2_" + env_key(env);

      SelfTuneConfig st;
      st.mode = proper_mode(vm);  // GTM-only for weight-proportional
      st.gtm_cells = 1000;
      SelfTuneConfig wrong = st;
      wrong.mode = wrong_mode(vm);
      wrong.ltm_columns = 1;

      const double acc_plain =
          eval_mean(key_base + "_noST", *trained.model, data.test, env, ecfg);
      const double acc_st = eval_mean(key_base + "_ST", *trained.model, data.test,
                                      env, ecfg, &st);
      const double acc_wrong = eval_mean(key_base + "_wrongST", *trained.model,
                                         data.test, env, ecfg, &wrong);

      table.add_row({TextTable::fmt(sigma, 1), pct(acc_plain), pct(acc_st),
                     pct(acc_wrong)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape (Table II): ST holds accuracy near the clean level while\n"
      "plain QAVAT falls off steeply; wrong ST is catastrophic everywhere.\n");
  return 0;
}
