// Table II reproduction: self-tuning for A8W4 models under mixed-type
// variation with weight-proportional variance. VGG-11s and ResNet-18s,
// sigma_tot in {0.1, 0.3, 0.5}; rows QAVAT, QAVAT+ST, QAVAT+WrongST.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_table2");
  const VarianceModel vm = VarianceModel::kWeightProportional;
  const double sigmas[] = {0.1, 0.3, 0.5};

  std::printf("Table II: self-tuning prevents mixed-type quality loss\n");
  std::printf("(A8W4, weight-proportional variance; mean accuracy %% over chips)\n\n");

  for (ModelKind kind : {ModelKind::kVGG11s, ModelKind::kResNet18s}) {
    std::printf("%s\n", to_string(kind));
    TextTable table({"sigma_tot", "QAVAT", "QAVAT+ST", "QAVAT+WrongST"});
    for (double sigma : sigmas) {
      const ScenarioSpec plain =
          ScenarioSpec::mixed(kind, 8, 4, ScenarioAlgo::kQAVAT, vm, sigma);
      ScenarioSpec tuned = plain;
      tuned.with_selftune(proper_mode(vm), 1000);  // GTM-only for wp variance
      ScenarioSpec wrong = plain;
      wrong.with_selftune(wrong_mode(vm), 1000, 1);

      table.add_row({TextTable::fmt(sigma, 1),
                     pct(bench.session.run(plain).mean_acc),
                     pct(bench.session.run(tuned).mean_acc),
                     pct(bench.session.run(wrong).mean_acc)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape (Table II): ST holds accuracy near the clean level while\n"
      "plain QAVAT falls off steeply; wrong ST is catastrophic everywhere.\n");
  return 0;
}
