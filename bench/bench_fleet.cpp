// Fleet lifetime frontier: retune policy x drift mix on a LeNet-family
// model. Each cell is one FleetStudySpec run through FleetEvaluator
// (eval/fleet.h): a chip population ages under a drift-event mix while a
// re-tuning policy decides when each chip re-measures its GTM. The bench
// prints the resulting retune-cost/accuracy frontier — how much accuracy
// each additional re-measurement buys under each mix — as byte-stable
// `frontier` lines (stable across cold/warm stores, resumes and thread
// counts; DESIGN.md §16).
//
// Perf record: a dedicated throughput study runs with the store disabled
// (pure compute, no snapshot I/O and no warm-trajectory shortcut) and
// contributes fleet steps/s and chip-steps/s rows to BENCH_micro.json
// via bench_json.h. Wall-clock-derived numbers go to the JSON record and
// stderr only, keeping stdout deterministic.
#include <chrono>
#include <cstdlib>

#include "bench_common.h"
#include "bench_json.h"
#include "eval/fleet.h"

using namespace qavat;
using namespace qavat::bench;

namespace {

struct Mix {
  const char* name;
  DriftEvents events;
};

struct Policy {
  const char* name;
  RetunePolicy policy;
};

double traj_mean(const FleetTrajectory& t) {
  double acc = 0.0;
  for (const FleetCheckpoint& row : t.checkpoints) acc += row.mean;
  return acc / static_cast<double>(t.checkpoints.size());
}

}  // namespace

int main() {
  BenchHarness bench("bench_fleet");
  FleetEvaluator fleet(bench.session);

  FleetStudySpec study;
  study.scenario =
      ScenarioSpec::within(ModelKind::kLeNet5s, 4, 2, ScenarioAlgo::kQAVAT,
                           VarianceModel::kWeightProportional, 0.25);
  study.lifetime.drift.model = VarianceModel::kWeightProportional;
  study.lifetime.drift.sigma_w = 0.25;
  study.lifetime.drift.sigma_b = 0.35;
  study.lifetime.drift.tau = 16.0;
  study.lifetime.n_chips = fast_mode() ? 8 : 16;
  study.lifetime.n_steps = fast_mode() ? 32 : 96;
  study.lifetime.checkpoint_every = fast_mode() ? 8 : 16;
  study.lifetime.batch_size = 50;

  const TrainedModel trained = bench.session.train_model(study.scenario);
  std::printf("Fleet lifetime frontier: retune policy x drift mix\n");
  std::printf(
      "(LeNet-5s A4W2 QAVAT; %lld chips x %lld steps; OU sigma_B = %.2f, "
      "tau = %.0f;\n clean accuracy %.1f%%)\n\n",
      static_cast<long long>(study.lifetime.n_chips),
      static_cast<long long>(study.lifetime.n_steps),
      study.lifetime.drift.sigma_b, study.lifetime.drift.tau,
      100.0 * trained.clean_test_acc);

  Mix mixes[2];
  mixes[0].name = "ou";  // pure OU drift, no discrete events
  mixes[1].name = "mixed";
  mixes[1].events.aging_rate = 0.001;
  mixes[1].events.thermal_amp = 0.1;
  mixes[1].events.thermal_period = 32.0;
  mixes[1].events.disturb_rate = 0.01;
  mixes[1].events.disturb_mag = 0.2;

  Policy policies[4];
  policies[0].name = "never";
  policies[1].name = "fix16";
  policies[1].policy.kind = RetunePolicyKind::kFixedInterval;
  policies[1].policy.interval = 16;
  policies[2].name = "fix4";
  policies[2].policy.kind = RetunePolicyKind::kFixedInterval;
  policies[2].policy.interval = 4;
  policies[3].name = "thr0.1";
  policies[3].policy.kind = RetunePolicyKind::kThreshold;
  policies[3].policy.budget = 0.1;
  policies[3].policy.probe_cells = 16;

  // The frontier: one byte-stable line per (mix, policy) cell. retunes
  // is the fleet-total re-measurement count (the policy's cost axis);
  // acc_mean averages the per-checkpoint fleet means over the whole
  // trajectory, acc_final / p5_final read the last checkpoint (end-of-
  // life state of the population and of its weakest chips).
  for (const Mix& mix : mixes) {
    study.lifetime.events = mix.events;
    for (const Policy& pol : policies) {
      study.lifetime.policy = pol.policy;
      const FleetRunResult res = fleet.run(study);
      const FleetCheckpoint& last = res.trajectory.checkpoints.back();
      std::printf(
          "frontier mix=%s policy=%s retunes=%lld acc_mean=%.17g "
          "acc_final=%.17g p5_final=%.17g stale_final=%.17g\n",
          mix.name, pol.name, static_cast<long long>(last.retunes),
          traj_mean(res.trajectory), last.mean, last.p5, last.stale);
      std::fflush(stdout);
    }
  }

  // Throughput row: a fresh study timed with the store disabled, so the
  // clock sees the fleet loop itself — chip advance + re-tune decisions
  // + the batched forward — never a warm-trajectory load or snapshot
  // I/O. The model is already in the in-process cache (trained above),
  // so training cost stays out of the measurement too.
  study.lifetime.events = mixes[1].events;
  study.lifetime.policy = policies[1].policy;
  study.lifetime.n_steps = fast_mode() ? 16 : 48;
  study.lifetime.checkpoint_every = fast_mode() ? 8 : 24;
  const char* old_store = std::getenv("QAVAT_STORE");
  setenv("QAVAT_STORE", "0", 1);
  const auto t0 = std::chrono::steady_clock::now();
  (void)fleet.run(study);
  const auto t1 = std::chrono::steady_clock::now();
  if (old_store != nullptr) {
    setenv("QAVAT_STORE", old_store, 1);
  } else {
    unsetenv("QAVAT_STORE");
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double steps_s =
      static_cast<double>(study.lifetime.n_steps) / (wall_ms * 1e-3);
  const double chip_steps_s =
      steps_s * static_cast<double>(study.lifetime.n_chips);
  std::fprintf(stderr,
               "[bench_fleet] throughput: %lld chips x %lld steps in "
               "%.1f ms -> %.1f steps/s, %.1f chip-steps/s\n",
               static_cast<long long>(study.lifetime.n_chips),
               static_cast<long long>(study.lifetime.n_steps), wall_ms,
               steps_s, chip_steps_s);
  // The "gmacs" column is the record's generic throughput axis (see
  // bench_json.h); for fleet rows it carries steps/s and chip-steps/s.
  std::vector<BenchEntry> entries(2);
  entries[0].name = "fleet_steps_per_s";
  entries[0].wall_ms = wall_ms;
  entries[0].gmacs = steps_s;
  entries[1].name = "fleet_chip_steps_per_s";
  entries[1].wall_ms = wall_ms;
  entries[1].gmacs = chip_steps_s;
  write_bench_json_merged(bench_json_path(), entries);
  return 0;
}
