// Ablation B: MMSE weight-scale update frequency. The paper computes the
// scaling factors once at the beginning of training and reports that more
// frequent updates "only improve results marginally". This bench compares
// init-only vs per-epoch recomputation on LeNet-5s A2W2 QAT/QAVAT.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const ModelKind kind = ModelKind::kLeNet5s;
  const VarianceModel vm = VarianceModel::kWeightProportional;
  SplitDataset data = make_dataset_for(kind);
  EvalConfig ecfg = default_eval_config(kind);
  ModelConfig mcfg = default_model_config(kind, 2, 2);

  std::printf("Ablation B: MMSE weight-scale update policy\n");
  std::printf("(LeNet-5s A2W2; accuracy %%)\n\n");

  TextTable table({"algo", "sigma", "init-only", "per-epoch"});
  for (double sigma : {0.0, 0.3}) {
    const TrainAlgo algo = sigma > 0.0 ? TrainAlgo::kQAVAT : TrainAlgo::kQAT;
    std::vector<std::string> row = {to_string(algo), TextTable::fmt(sigma, 1)};
    for (ScaleUpdatePolicy policy :
         {ScaleUpdatePolicy::kInitOnly, ScaleUpdatePolicy::kPerEpoch}) {
      TrainConfig tcfg = within_train_config(kind, vm, std::max(sigma, 0.0));
      if (algo == TrainAlgo::kQAT) tcfg.train_noise = VariabilityConfig{};
      tcfg.scale_update = policy;
      auto trained = train_cached(kind, mcfg, algo, data, tcfg);
      double acc;
      if (sigma > 0.0) {
        const VariabilityConfig env = VariabilityConfig::within_only(vm, sigma);
        acc = eval_mean(
            std::string("lenet5s_A2W2_ablB_su") +
                (policy == ScaleUpdatePolicy::kPerEpoch ? "1" : "0") + "_" +
                env_key(env),
            *trained.model, data.test, env, ecfg);
      } else {
        acc = trained.clean_test_acc;
      }
      row.push_back(pct(acc));
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nPaper: scale recomputation frequency changes results only\n"
      "marginally. (Our warm-started schedule recomputes per epoch by\n"
      "default; init-only freezes the scales of the pretraining phase.)\n");
  return 0;
}
