// Ablation B: MMSE weight-scale update frequency. The paper computes the
// scaling factors once at the beginning of training and reports that more
// frequent updates "only improve results marginally". This bench compares
// init-only vs per-epoch recomputation on LeNet-5s A2W2 QAT/QAVAT.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_ablation_scale");
  const ModelKind kind = ModelKind::kLeNet5s;
  const VarianceModel vm = VarianceModel::kWeightProportional;

  std::printf("Ablation B: MMSE weight-scale update policy\n");
  std::printf("(LeNet-5s A2W2; accuracy %%)\n\n");

  TextTable table({"algo", "sigma", "init-only", "per-epoch"});
  for (double sigma : {0.0, 0.3}) {
    const ScenarioAlgo algo =
        sigma > 0.0 ? ScenarioAlgo::kQAVAT : ScenarioAlgo::kQAT;
    std::vector<std::string> row = {to_string(algo), TextTable::fmt(sigma, 1)};
    for (ScaleUpdatePolicy policy :
         {ScaleUpdatePolicy::kInitOnly, ScaleUpdatePolicy::kPerEpoch}) {
      // sigma = 0 is a clean-accuracy scenario (no deployment noise, no
      // train noise); sigma > 0 the usual within-chip QAVAT row.
      ScenarioSpec spec = sigma > 0.0
                              ? ScenarioSpec::within(kind, 2, 2, algo, vm, sigma)
                              : ScenarioSpec::base(kind, 2, 2, algo);
      spec.train.scale_update = policy;
      row.push_back(pct(bench.session.run(spec).mean_acc));
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nPaper: scale recomputation frequency changes results only\n"
      "marginally. (Our warm-started schedule recomputes per epoch by\n"
      "default; init-only freezes the scales of the pretraining phase.)\n");
  return 0;
}
