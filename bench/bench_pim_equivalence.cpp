// Validation bench: the weight-domain variability injection used by the
// training/evaluation pipeline is equivalent to circuit-level conductance
// programming noise on the crossbar simulator, the GTM measurement on a
// real array column matches its analytic model, a layer larger than one
// physical array tiles across multiple 512x512 crossbars bit-identically
// (ideal config) and statistically equivalently (noisy), and a full
// Monte-Carlo evaluation routed through the tiled circuit simulator
// (EvalConfig::backend = kCircuit) matches the weight-domain one.
// Returns nonzero if any equivalence check fails its tolerance.
#include <cmath>
#include <cstring>

#include "bench_common.h"
#include "pim/chip.h"
#include "pim/tiling.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_pim_equivalence");
  std::printf("PIM equivalence checks (circuit vs weight-domain model)\n\n");
  int failures = 0;

  // 1. Crossbar MVM vs noisy weight-domain matmul, identical statistics.
  Rng rng(3);
  Tensor w({64, 128});
  fill_normal(w, rng);
  std::vector<float> x(128);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  TextTable table({"variance model", "rel. output RMS error (circuit vs ideal)",
                   "predicted"});
  for (auto vm : {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    CrossbarConfig cfg;
    cfg.variability = VariabilityConfig::within_only(vm, 0.3);
    double err2 = 0.0, ref2 = 0.0;
    const int chips = 40;
    for (int c = 0; c < chips; ++c) {
      PimChip chip(cfg, 11, c);
      auto arr = chip.program_array(w);
      auto noisy = arr.mvm(x);
      auto ideal = arr.ideal_mvm(x);
      for (std::size_t i = 0; i < noisy.size(); ++i) {
        err2 += std::pow(noisy[i] - ideal[i], 2);
        ref2 += std::pow(ideal[i], 2);
      }
    }
    // Weight-proportional: Var[err_i] = sigma^2 * sum_j w_ij^2 x_j^2;
    // relative RMS across many outputs ~ sigma * rms(x-weighted terms).
    const double rel_rms = std::sqrt(err2 / ref2);
    table.add_row({to_string(vm), TextTable::fmt(rel_rms, 4),
                   vm == VarianceModel::kWeightProportional ? "~sigma*c" : "~sigma*wmax*c"});
    // Gate the weight-proportional case, whose O(1) constant is tame:
    // the circuit-injected relative error must sit at sigma scale.
    if (vm == VarianceModel::kWeightProportional &&
        (rel_rms < 0.3 * cfg.variability.sigma_w ||
         rel_rms > 3.0 * cfg.variability.sigma_w)) {
      std::printf("  FAIL: rel RMS %.4f outside sigma scale [%.4f, %.4f]\n",
                  rel_rms, 0.3 * cfg.variability.sigma_w,
                  3.0 * cfg.variability.sigma_w);
      ++failures;
    }
  }
  table.print();

  // 2. GTM on a circuit column vs the analytic estimator.
  std::printf("\nGTM measurement RMSE vs analytic sigma_W/sqrt(n):\n");
  TextTable gtm_table({"GTM cells", "circuit RMSE", "analytic"});
  for (index_t cells : {index_t{16}, index_t{256}, index_t{4096}}) {
    CrossbarConfig cfg;
    cfg.variability =
        VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.5);
    double sq = 0.0;
    const int chips = 200;
    for (int c = 0; c < chips; ++c) {
      PimChip chip(cfg, 21, c);
      auto gtm = chip.program_gtm(cells, 1.0);
      sq += std::pow(chip.measure_eps_b(gtm) - chip.eps_b(), 2);
    }
    const double rmse = std::sqrt(sq / chips);
    const double analytic = cfg.variability.sigma_w / std::sqrt(double(cells));
    gtm_table.add_row({std::to_string(cells), TextTable::fmt(rmse, 4),
                       TextTable::fmt(analytic, 4)});
    if (rmse > 3.0 * analytic || rmse < analytic / 3.0) {
      std::printf("  FAIL: GTM RMSE %.4f vs analytic %.4f (>3x apart)\n", rmse,
                  analytic);
      ++failures;
    }
  }
  gtm_table.print();

  // 3. DAC/ADC periphery cost on a quantized layer: the error must
  // shrink monotonically as resolution grows.
  std::printf("\nDAC/ADC periphery error (64x128 array, noise-free):\n");
  TextTable conv_table({"DAC bits", "ADC bits", "max |err| vs ideal"});
  double prev_periph_err = 1e30;
  for (index_t bits : {index_t{4}, index_t{6}, index_t{8}}) {
    CrossbarConfig cfg;
    cfg.dac_bits = bits;
    cfg.adc_bits = bits + 2;
    Rng prng(1);
    CrossbarArray arr(cfg, w, 0.0, prng);
    CrossbarConfig ideal_cfg;
    Rng prng2(1);
    CrossbarArray ideal(ideal_cfg, w, 0.0, prng2);
    auto yq = arr.mvm(x);
    auto yf = ideal.mvm(x);
    double max_err = 0.0;
    for (std::size_t i = 0; i < yq.size(); ++i) {
      max_err = std::max(max_err, std::fabs(yq[i] - yf[i]));
    }
    conv_table.add_row({std::to_string(bits), std::to_string(bits + 2),
                        TextTable::fmt(max_err, 4)});
    if (max_err > prev_periph_err + 1e-9) {
      std::printf("  FAIL: periphery error grew with resolution\n");
      ++failures;
    }
    prev_periph_err = max_err;
  }
  conv_table.print();
  std::printf("\nHigher periphery resolution monotonically shrinks the error,\n"
              "supporting the A-bit activation abstraction used in training.\n");

  // 4. Crossbar tiling: a 600x1100 layer does not fit one 512x512 array;
  // TilePlan splits it across a 2x3 grid of arrays. On an ideal
  // (noise-free) config the tiled readout must be BIT-identical to an
  // unbounded array (the matmul_nt_acc_into partial-sum contract); with
  // programming noise its relative output RMS error must match the
  // weight-domain prediction, exactly like the single-array check above.
  std::printf("\nCrossbar tiling (600x1100 layer across 512x512 arrays):\n");
  {
    Tensor wbig({600, 1100});
    fill_normal(wbig, rng);
    Tensor xb({16, 1100});
    fill_normal(xb, rng);
    const TilePlan plan = TilePlan::make(600, 1100, 512);
    std::printf("  plan: %lld x %lld arrays (%lld total)\n",
                static_cast<long long>(plan.row_tiles()),
                static_cast<long long>(plan.col_tiles()),
                static_cast<long long>(plan.n_tiles()));
    if (plan.n_tiles() < 4) {
      std::printf("  FAIL: expected >= 4 arrays\n");
      ++failures;
    }

    CrossbarConfig ideal_cfg2;
    Rng prng(31);
    CrossbarArray untiled(ideal_cfg2, wbig, 0.0, prng);
    Tensor y_ref, scratch;
    untiled.mvm_into(xb, y_ref, scratch);
    PimChip ideal_chip(ideal_cfg2, 31, 0);
    TiledCrossbarLayer tiled_ideal(ideal_chip, wbig, plan);
    Tensor y_tiled;
    tiled_ideal.mvm_into(xb, y_tiled);
    const bool bitwise =
        y_ref.shape() == y_tiled.shape() &&
        std::memcmp(y_ref.data(), y_tiled.data(),
                    static_cast<std::size_t>(y_ref.size()) * sizeof(float)) == 0;
    std::printf("  noise-free tiled vs untiled MVM: %s\n",
                bitwise ? "bit-identical" : "MISMATCH");
    if (!bitwise) ++failures;

    TextTable tiled_table({"variance model", "rel. output RMS error (tiled)",
                           "predicted"});
    for (auto vm :
         {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
      CrossbarConfig cfg;
      cfg.variability = VariabilityConfig::within_only(vm, 0.3);
      double err2 = 0.0, ref2 = 0.0;
      const int chips = 12;
      for (int c = 0; c < chips; ++c) {
        PimChip chip(cfg, 37, c);
        TiledCrossbarLayer tiled(chip, wbig, plan);
        Tensor y;
        tiled.mvm_into(xb, y);
        for (index_t i = 0; i < y.size(); ++i) {
          err2 += std::pow(static_cast<double>(y[i]) - y_ref[i], 2);
          ref2 += std::pow(static_cast<double>(y_ref[i]), 2);
        }
      }
      const double rel_rms = std::sqrt(err2 / ref2);
      tiled_table.add_row({to_string(vm), TextTable::fmt(rel_rms, 4),
                           vm == VarianceModel::kWeightProportional
                               ? "~sigma*c"
                               : "~sigma*wmax*c"});
      // Same sigma-scale gate as the single-array check: a tiling-only
      // noise regression (e.g. per-tile w_unit) must fail the bench.
      if (vm == VarianceModel::kWeightProportional &&
          (rel_rms < 0.3 * cfg.variability.sigma_w ||
           rel_rms > 3.0 * cfg.variability.sigma_w)) {
        std::printf("  FAIL: tiled rel RMS %.4f outside sigma scale\n",
                    rel_rms);
        ++failures;
      }
    }
    tiled_table.print();
  }

  // 5. Monte-Carlo evaluation through the tiled circuit simulator vs the
  // weight-domain injection, on a trained LeNet-5s. Both backends realize
  // the same per-chip eps_B (shared Rng(seed, chip) identity); only the
  // within-chip realizations differ, so the mean accuracies must agree
  // within a few points — the bench's statistical equivalence tolerance.
  std::printf("\nMonte-Carlo eval: tiled-circuit backend vs weight-domain:\n");
  {
    const ModelKind kind = ModelKind::kLeNet5s;
    const ScenarioSpec spec = ScenarioSpec::mixed(
        kind, 4, 2, ScenarioAlgo::kQAVAT, VarianceModel::kWeightProportional,
        0.3);
    const VariabilityConfig vcfg = spec.deploy;
    TrainedModel tm = bench.session.train_model(spec);
    const SplitDataset& data = bench.session.dataset(kind);
    SelfTuneConfig st;
    EvalConfig ecfg = spec.eval;
    ecfg.n_chips = fast_mode() ? 8 : 16;
    ecfg.backend = EvalBackend::kWeightDomain;
    EvalStats wd_stats =
        evaluate_under_variability(*tm.model, data.test, vcfg, ecfg, &st);
    ecfg.backend = EvalBackend::kCircuit;
    // LeNet-5s layers all fit one 512x512 array; shrink the tile so the
    // equivalence run really exercises multi-tile accumulation, input
    // slicing, row-partial scatter and cross-array GTM pooling.
    ecfg.tile_size = 64;
    EvalStats circ_stats =
        evaluate_under_variability(*tm.model, data.test, vcfg, ecfg, &st);
    TextTable eq_table({"backend", "mean acc %", "std %", "min %"});
    eq_table.add_row({"weight-domain", pct(wd_stats.accuracy.mean),
                      pct(wd_stats.accuracy.stddev), pct(wd_stats.accuracy.min)});
    eq_table.add_row({"tiled circuit", pct(circ_stats.accuracy.mean),
                      pct(circ_stats.accuracy.stddev),
                      pct(circ_stats.accuracy.min)});
    eq_table.print();
    const double diff =
        std::fabs(circ_stats.accuracy.mean - wd_stats.accuracy.mean);
    const double tol = 0.08;  // same per-chip eps_B; only within-chip
                              // realizations differ between backends
    std::printf("  |mean diff| = %.3f (tolerance %.2f): %s\n", diff, tol,
                diff <= tol ? "OK" : "FAIL");
    if (diff > tol) ++failures;
  }

  // 6. Monte-Carlo eval through the int8 integer backend vs weight-domain,
  // same trained LeNet-5s. Both backends draw the same per-chip
  // realizations (shared Rng(seed, chip) identity); the integer path is
  // exact on the noise-free quantization grid — per-chip accuracies must
  // match bit-for-bit — and a per-chip max-scaled-grid approximation under
  // injected variability, where each chip's accuracy must stay within a
  // benched epsilon of the float weight-domain result.
  std::printf("\nMonte-Carlo eval: int8 integer backend vs weight-domain:\n");
  {
    const ModelKind kind = ModelKind::kLeNet5s;
    const ScenarioSpec spec = ScenarioSpec::mixed(
        kind, 4, 2, ScenarioAlgo::kQAVAT, VarianceModel::kWeightProportional,
        0.3);
    TrainedModel tm = bench.session.train_model(spec);
    const SplitDataset& data = bench.session.dataset(kind);
    SelfTuneConfig st;
    EvalConfig ecfg = spec.eval;
    ecfg.n_chips = fast_mode() ? 8 : 16;

    // Noise-free: the requant grid is the layer's own quantization grid,
    // so the integer MVM is the exact sum and every chip classifies
    // identically to the float weight-domain forward.
    const VariabilityConfig off;
    ecfg.backend = EvalBackend::kWeightDomain;
    const EvalStats wd_clean =
        evaluate_under_variability(*tm.model, data.test, off, ecfg, &st);
    ecfg.backend = EvalBackend::kInt8;
    const EvalStats i8_clean =
        evaluate_under_variability(*tm.model, data.test, off, ecfg, &st);
    const bool clean_match = wd_clean.per_chip_acc == i8_clean.per_chip_acc;
    std::printf("  noise-free per-chip accuracies: %s\n",
                clean_match ? "identical (exact requant grid)" : "MISMATCH");
    if (!clean_match) ++failures;

    // Under variability the effective weights move off the grid and the
    // int8 planes re-quantize them at |w|max/127 per chip.
    const VariabilityConfig vcfg = spec.deploy;
    ecfg.backend = EvalBackend::kWeightDomain;
    const EvalStats wd_stats =
        evaluate_under_variability(*tm.model, data.test, vcfg, ecfg, &st);
    ecfg.backend = EvalBackend::kInt8;
    const EvalStats i8_stats =
        evaluate_under_variability(*tm.model, data.test, vcfg, ecfg, &st);
    TextTable i8_table({"backend", "mean acc %", "std %", "min %"});
    i8_table.add_row({"weight-domain", pct(wd_stats.accuracy.mean),
                      pct(wd_stats.accuracy.stddev),
                      pct(wd_stats.accuracy.min)});
    i8_table.add_row({"int8 integer", pct(i8_stats.accuracy.mean),
                      pct(i8_stats.accuracy.stddev),
                      pct(i8_stats.accuracy.min)});
    i8_table.print();
    double max_chip_diff = 0.0;
    for (std::size_t c = 0; c < wd_stats.per_chip_acc.size(); ++c) {
      max_chip_diff = std::max(
          max_chip_diff,
          std::fabs(i8_stats.per_chip_acc[c] - wd_stats.per_chip_acc[c]));
    }
    const double mean_diff =
        std::fabs(i8_stats.accuracy.mean - wd_stats.accuracy.mean);
    const double chip_tol = 0.05, mean_tol = 0.02;
    std::printf("  max per-chip |diff| = %.3f (tolerance %.2f): %s\n",
                max_chip_diff, chip_tol,
                max_chip_diff <= chip_tol ? "OK" : "FAIL");
    if (max_chip_diff > chip_tol) ++failures;
    std::printf("  |mean diff| = %.3f (tolerance %.2f): %s\n", mean_diff,
                mean_tol, mean_diff <= mean_tol ? "OK" : "FAIL");
    if (mean_diff > mean_tol) ++failures;
  }

  if (failures == 0) {
    std::printf("\nbench_pim_equivalence: all equivalence checks passed\n");
  } else {
    std::printf("\nbench_pim_equivalence: %d equivalence check(s) FAILED\n",
                failures);
  }
  return failures == 0 ? 0 : 1;
}
