// Validation bench: the weight-domain variability injection used by the
// training/evaluation pipeline is equivalent to circuit-level conductance
// programming noise on the crossbar simulator, and the GTM measurement on
// a real array column matches its analytic model.
#include <cmath>

#include "bench_common.h"
#include "pim/chip.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  std::printf("PIM equivalence checks (circuit vs weight-domain model)\n\n");

  // 1. Crossbar MVM vs noisy weight-domain matmul, identical statistics.
  Rng rng(3);
  Tensor w({64, 128});
  fill_normal(w, rng);
  std::vector<float> x(128);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  TextTable table({"variance model", "rel. output RMS error (circuit vs ideal)",
                   "predicted"});
  for (auto vm : {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    CrossbarConfig cfg;
    cfg.variability = VariabilityConfig::within_only(vm, 0.3);
    double err2 = 0.0, ref2 = 0.0;
    const int chips = 40;
    for (int c = 0; c < chips; ++c) {
      PimChip chip(cfg, 11, c);
      auto arr = chip.program_array(w);
      auto noisy = arr.mvm(x);
      auto ideal = arr.ideal_mvm(x);
      for (std::size_t i = 0; i < noisy.size(); ++i) {
        err2 += std::pow(noisy[i] - ideal[i], 2);
        ref2 += std::pow(ideal[i], 2);
      }
    }
    // Weight-proportional: Var[err_i] = sigma^2 * sum_j w_ij^2 x_j^2;
    // relative RMS across many outputs ~ sigma * rms(x-weighted terms).
    table.add_row({to_string(vm), TextTable::fmt(std::sqrt(err2 / ref2), 4),
                   vm == VarianceModel::kWeightProportional ? "~sigma*c" : "~sigma*wmax*c"});
  }
  table.print();

  // 2. GTM on a circuit column vs the analytic estimator.
  std::printf("\nGTM measurement RMSE vs analytic sigma_W/sqrt(n):\n");
  TextTable gtm_table({"GTM cells", "circuit RMSE", "analytic"});
  for (index_t cells : {index_t{16}, index_t{256}, index_t{4096}}) {
    CrossbarConfig cfg;
    cfg.variability =
        VariabilityConfig::mixed(VarianceModel::kWeightProportional, 0.5);
    double sq = 0.0;
    const int chips = 200;
    for (int c = 0; c < chips; ++c) {
      PimChip chip(cfg, 21, c);
      auto gtm = chip.program_gtm(cells, 1.0);
      sq += std::pow(chip.measure_eps_b(gtm) - chip.eps_b(), 2);
    }
    gtm_table.add_row({std::to_string(cells), TextTable::fmt(std::sqrt(sq / chips), 4),
                       TextTable::fmt(cfg.variability.sigma_w / std::sqrt(double(cells)), 4)});
  }
  gtm_table.print();

  // 3. DAC/ADC periphery cost on a quantized layer.
  std::printf("\nDAC/ADC periphery error (64x128 array, noise-free):\n");
  TextTable conv_table({"DAC bits", "ADC bits", "max |err| vs ideal"});
  for (index_t bits : {index_t{4}, index_t{6}, index_t{8}}) {
    CrossbarConfig cfg;
    cfg.dac_bits = bits;
    cfg.adc_bits = bits + 2;
    Rng prng(1);
    CrossbarArray arr(cfg, w, 0.0, prng);
    CrossbarConfig ideal_cfg;
    Rng prng2(1);
    CrossbarArray ideal(ideal_cfg, w, 0.0, prng2);
    auto yq = arr.mvm(x);
    auto yf = ideal.mvm(x);
    double max_err = 0.0;
    for (std::size_t i = 0; i < yq.size(); ++i) {
      max_err = std::max(max_err, std::fabs(yq[i] - yf[i]));
    }
    conv_table.add_row({std::to_string(bits), std::to_string(bits + 2),
                        TextTable::fmt(max_err, 4)});
  }
  conv_table.print();
  std::printf("\nHigher periphery resolution monotonically shrinks the error,\n"
              "supporting the A-bit activation abstraction used in training.\n");
  return 0;
}
