// Shared helpers for the experiment reproduction binaries.
//
// Every bench binary follows the same pattern: resolve the workload
// defaults from eval/experiment.h, train (through the model cache),
// evaluate (through the result cache), and print a TextTable matching the
// paper's table/figure. The helpers here encode the two recurring
// protocols:
//
//  * eval_mean — mean accuracy over Monte-Carlo chips, result-cached under
//    a descriptive space-free key.
//  * within-training for mixed deployment — the paper's self-tuning recipe
//    trains QAVAT with *within-chip sampling only* and appends the tuning
//    modules afterwards (§III.B last paragraph); mixed-type deployments
//    therefore train at sigma_W = sigma_tot / sqrt(2).
#pragma once

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "eval/experiment.h"
#include "eval/table.h"

namespace qavat {
namespace bench {

inline std::string fmt_sigma(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

/// Percent formatting for table cells.
inline std::string pct(double frac) { return TextTable::fmt(100.0 * frac, 1); }

/// Mean Monte-Carlo accuracy with result caching. `key` must be unique per
/// (model, deployment, self-tuning) combination and contain no spaces.
inline double eval_mean(const std::string& key, Module& model, const Dataset& test,
                        const VariabilityConfig& vcfg, const EvalConfig& ecfg,
                        const SelfTuneConfig* st = nullptr) {
  const std::string full_key = key + "_c" + std::to_string(ecfg.n_chips) + "_t" +
                               std::to_string(ecfg.max_test_samples);
  return with_result_cache(full_key, [&] {
    return evaluate_under_variability(model, test, vcfg, ecfg, st).accuracy.mean;
  });
}

inline const char* vm_key(VarianceModel m) {
  return m == VarianceModel::kWeightProportional ? "wp" : "lf";
}

/// Key fragment describing a deployment environment.
inline std::string env_key(const VariabilityConfig& v) {
  std::ostringstream os;
  os << vm_key(v.model) << "_sw" << fmt_sigma(v.sigma_w) << "_sb"
     << fmt_sigma(v.sigma_b);
  return os.str();
}

/// Training config for a QAVAT model destined for a *within-chip only*
/// deployment at the given sigma.
inline TrainConfig within_train_config(ModelKind kind, VarianceModel vm,
                                       double sigma_w) {
  TrainConfig t = default_train_config(kind);
  t.train_noise = VariabilityConfig::within_only(vm, sigma_w);
  return t;
}

/// Training config following the paper's self-tuning deployment recipe:
/// for mixed-type deployment at sigma_tot, train with within-chip sampling
/// at the deployment's within component sigma_tot / sqrt(2).
inline TrainConfig mixed_deploy_train_config(ModelKind kind, VarianceModel vm,
                                             double sigma_tot) {
  return within_train_config(kind, vm, sigma_tot / std::sqrt(2.0));
}

}  // namespace bench
}  // namespace qavat
