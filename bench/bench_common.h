// Shared helpers for the experiment reproduction binaries.
//
// Every bench binary is a declarative scenario grid: build ScenarioSpecs
// (eval/scenario.h) for the table/figure being reproduced, run them
// through one Session (eval/runner.h) — which resolves datasets, trains
// through the store-backed model cache and evaluates through the
// store-backed result cache — and print a TextTable. Numbers go to
// stdout (byte-stable between cold and warm runs); provenance and timing
// go to stderr via the session summary the BenchHarness prints at exit.
#pragma once

#include <string>

#include "eval/runner.h"
#include "eval/table.h"

namespace qavat {
namespace bench {

/// Percent formatting for table cells.
inline std::string pct(double frac) { return TextTable::fmt(100.0 * frac, 1); }

/// The per-binary Session plus the machine-greppable provenance summary
/// on stderr at scope exit (the CI cold/warm store gate parses it).
struct BenchHarness {
  explicit BenchHarness(const char* name) : name(name) {}
  ~BenchHarness() { session.print_summary(name); }
  BenchHarness(const BenchHarness&) = delete;
  BenchHarness& operator=(const BenchHarness&) = delete;

  Session session;
  const char* name;
};

}  // namespace bench
}  // namespace qavat
