// Fig. 7a reproduction: impact of multi-variation sampling (Algorithm 1's
// n) on QAVAT quality. VGG-11s, within-chip weight-proportional variation,
// A8W4 and A4W2, sigma in {0.3, 0.5}, n in {1, 5, 10}.
//
// Training cost scales linearly with n, so this bench uses a reduced epoch
// budget per phase; the quantity of interest is the relative gain from
// multi-sampling at fixed budget per draw.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_fig7a");
  const ModelKind kind = ModelKind::kVGG11s;
  const VarianceModel vm = VarianceModel::kWeightProportional;

  std::printf("Fig. 7a: impact of multi-sampling (VGG-11s, within-chip)\n");
  std::printf("(mean accuracy %% over chips)\n\n");

  for (index_t a_bits : {index_t{8}, index_t{4}}) {
    const index_t w_bits = a_bits == 8 ? 4 : 2;
    std::printf("A%lldW%lld\n", static_cast<long long>(a_bits),
                static_cast<long long>(w_bits));
    TextTable table({"n", "sigma=0.3", "sigma=0.5"});
    for (index_t n : {index_t{1}, index_t{5}, index_t{10}}) {
      std::vector<std::string> row = {std::to_string(n)};
      for (double sigma : {0.3, 0.5}) {
        ScenarioSpec spec = ScenarioSpec::within(kind, a_bits, w_bits,
                                                 ScenarioAlgo::kQAVAT, vm, sigma);
        spec.train.epochs = fast_mode() ? 1 : 4;  // n multiplies the cost
        spec.train.n_variation_samples = n;
        row.push_back(pct(bench.session.run(spec).mean_acc));
        std::fflush(stdout);
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: multi-sampling improves mean accuracy by ~1%% and the\n"
      "gain saturates around n = 5.\n");
  return 0;
}
