// Extension bench (paper footnote 2): self-tuning against *temporal*
// correlated drift. eps_B(t) follows an Ornstein-Uhlenbeck process
// (temperature drift / aging); the GTM is re-measured every k inference
// steps. Sweeps the re-measurement interval against the drift correlation
// time: frequent re-measurement tracks the drift; a single factory
// calibration decays to the uncorrected level once t >> tau.
#include "bench_common.h"
#include "core/variability/drift.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_drift");
  const ModelKind kind = ModelKind::kLeNet5s;
  const VarianceModel vm = VarianceModel::kWeightProportional;

  DriftConfig dcfg;
  dcfg.model = vm;
  dcfg.sigma_b = 0.35;
  dcfg.sigma_w = 0.25;

  // Train per the ST recipe: within-chip sampling only, at the drift's
  // within component.
  const ScenarioSpec spec =
      ScenarioSpec::within(kind, 4, 2, ScenarioAlgo::kQAVAT, vm, dcfg.sigma_w);
  TrainedModel trained = bench.session.train_model(spec);
  const Dataset& test = bench.session.dataset(kind).test;
  // Drift results persist to the store, so their keys must carry the
  // full identity: the scenario key (model, bits, training recipe) plus
  // every drift knob — an under-specified key would return stale numbers
  // after a constant change.
  const auto drift_key = [&](const char* what, double tau, index_t interval,
                             index_t n_steps) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "_%s[sw%g_sb%g_tau%g_k%lld_n%lld]", what,
                  dcfg.sigma_w, dcfg.sigma_b, tau,
                  static_cast<long long>(interval),
                  static_cast<long long>(n_steps));
    return spec.key() + buf;
  };
  std::printf("Drift extension: self-tuning vs temperature/aging drift\n");
  std::printf("(LeNet-5s A4W2; OU drift with stationary sigma_B = %.2f;\n",
              dcfg.sigma_b);
  std::printf(" clean accuracy %.1f%%)\n\n", 100.0 * trained.clean_test_acc);

  for (double tau : {16.0, 64.0}) {
    dcfg.tau = tau;
    std::printf("correlation time tau = %.0f steps\n", tau);
    TextTable table({"remeasure every", "accuracy %", "mean |eps_hat - eps_B(t)|"});
    for (index_t interval : {index_t{0}, index_t{64}, index_t{16}, index_t{4}, index_t{1}}) {
      DriftEvalConfig ecfg;
      ecfg.n_steps = fast_mode() ? 32 : 192;
      ecfg.batch_size = 50;
      ecfg.remeasure_interval = interval;
      const double acc = with_result_cache(
          drift_key("drift", tau, interval, ecfg.n_steps), [&] {
            return evaluate_under_drift(*trained.model, test, dcfg, ecfg)
                .mean_acc;
          });
      DriftEvalConfig probe = ecfg;
      probe.n_steps = fast_mode() ? 16 : 64;
      const double staleness = with_result_cache(
          drift_key("driftstale", tau, interval, probe.n_steps), [&] {
            return evaluate_under_drift(*trained.model, test, dcfg, probe)
                .mean_abs_error;
          });
      table.add_row({interval == 0 ? "never (factory only)" : std::to_string(interval),
                     pct(acc), TextTable::fmt(staleness, 3)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: re-measurement intervals well below tau track the drift\n"
      "and hold accuracy; factory-only calibration decays toward the\n"
      "uncorrected level. This realizes the generalization the paper\n"
      "sketches in footnote 2.\n");
  return 0;
}
