// Extension bench (paper footnote 2): self-tuning against *temporal*
// correlated drift. eps_B(t) follows an Ornstein-Uhlenbeck process
// (temperature drift / aging); the GTM is re-measured every k inference
// steps. Sweeps the re-measurement interval against the drift correlation
// time: frequent re-measurement tracks the drift; a single factory
// calibration decays to the uncorrected level once t >> tau.
#include "bench_common.h"
#include "core/variability/drift.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const ModelKind kind = ModelKind::kLeNet5s;
  const VarianceModel vm = VarianceModel::kWeightProportional;
  SplitDataset data = make_dataset_for(kind);
  ModelConfig mcfg = default_model_config(kind, 4, 2);

  DriftConfig dcfg;
  dcfg.model = vm;
  dcfg.sigma_b = 0.35;
  dcfg.sigma_w = 0.25;

  // Train per the ST recipe: within-chip sampling only.
  TrainConfig tcfg = within_train_config(kind, vm, dcfg.sigma_w);
  auto trained = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
  std::printf("Drift extension: self-tuning vs temperature/aging drift\n");
  std::printf("(LeNet-5s A4W2; OU drift with stationary sigma_B = %.2f;\n",
              dcfg.sigma_b);
  std::printf(" clean accuracy %.1f%%)\n\n", 100.0 * trained.clean_test_acc);

  for (double tau : {16.0, 64.0}) {
    dcfg.tau = tau;
    std::printf("correlation time tau = %.0f steps\n", tau);
    TextTable table({"remeasure every", "accuracy %", "mean |eps_hat - eps_B(t)|"});
    for (index_t interval : {index_t{0}, index_t{64}, index_t{16}, index_t{4}, index_t{1}}) {
      DriftEvalConfig ecfg;
      ecfg.n_steps = fast_mode() ? 32 : 192;
      ecfg.batch_size = 50;
      ecfg.remeasure_interval = interval;
      const double acc = with_result_cache(
          "drift_tau" + std::to_string(static_cast<int>(tau)) + "_k" +
              std::to_string(interval) + "_n" + std::to_string(ecfg.n_steps),
          [&] {
            return evaluate_under_drift(*trained.model, data.test, dcfg, ecfg)
                .mean_acc;
          });
      DriftEvalConfig probe = ecfg;
      probe.n_steps = fast_mode() ? 16 : 64;
      const double staleness =
          evaluate_under_drift(*trained.model, data.test, dcfg, probe)
              .mean_abs_error;
      table.add_row({interval == 0 ? "never (factory only)" : std::to_string(interval),
                     pct(acc), TextTable::fmt(staleness, 3)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: re-measurement intervals well below tau track the drift\n"
      "and hold accuracy; factory-only calibration decays toward the\n"
      "uncorrected level. This realizes the generalization the paper\n"
      "sketches in footnote 2.\n");
  return 0;
}
