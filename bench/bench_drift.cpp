// Extension bench (paper footnote 2): self-tuning against *temporal*
// correlated drift. eps_B(t) follows an Ornstein-Uhlenbeck process
// (temperature drift / aging); the GTM is re-measured every k inference
// steps. Sweeps the re-measurement interval against the drift correlation
// time: frequent re-measurement tracks the drift; a single factory
// calibration decays to the uncorrected level once t >> tau.
//
// Runs on the fleet lifetime subsystem (eval/fleet.h): each cell is a
// FleetStudySpec — a small chip population under pure OU drift with a
// fixed-interval re-tuning policy — whose canonical key() carries the
// full study identity (the hand-built snprintf drift keys this bench
// used before were a standing stale-result hazard), and whose
// trajectory persists/resumes through the store's "fleet" bucket.
#include "bench_common.h"
#include "eval/fleet.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_drift");
  FleetEvaluator fleet(bench.session);

  FleetStudySpec study;
  study.scenario =
      ScenarioSpec::within(ModelKind::kLeNet5s, 4, 2, ScenarioAlgo::kQAVAT,
                           VarianceModel::kWeightProportional, 0.25);
  study.lifetime.drift.model = VarianceModel::kWeightProportional;
  study.lifetime.drift.sigma_w = 0.25;
  study.lifetime.drift.sigma_b = 0.35;
  study.lifetime.n_chips = fast_mode() ? 4 : 8;
  study.lifetime.n_steps = fast_mode() ? 32 : 192;
  study.lifetime.checkpoint_every = fast_mode() ? 8 : 48;
  study.lifetime.batch_size = 50;

  const TrainedModel trained = bench.session.train_model(study.scenario);
  std::printf("Drift extension: self-tuning vs temperature/aging drift\n");
  std::printf("(LeNet-5s A4W2; OU drift with stationary sigma_B = %.2f;\n",
              study.lifetime.drift.sigma_b);
  std::printf(" %lld chips x %lld steps; clean accuracy %.1f%%)\n\n",
              static_cast<long long>(study.lifetime.n_chips),
              static_cast<long long>(study.lifetime.n_steps),
              100.0 * trained.clean_test_acc);

  for (double tau : {16.0, 64.0}) {
    study.lifetime.drift.tau = tau;
    std::printf("correlation time tau = %.0f steps\n", tau);
    TextTable table(
        {"remeasure every", "accuracy %", "mean |eps_hat - eps_B(t)|"});
    for (index_t interval :
         {index_t{0}, index_t{64}, index_t{16}, index_t{4}, index_t{1}}) {
      study.lifetime.policy.kind = interval == 0
                                       ? RetunePolicyKind::kNever
                                       : RetunePolicyKind::kFixedInterval;
      study.lifetime.policy.interval = interval;
      const FleetRunResult res = fleet.run(study);
      // Study-level summary: accuracy and staleness averaged over the
      // whole trajectory (checkpoints weigh equally — windows are equal
      // length), across the chip population.
      double acc = 0.0, staleness = 0.0;
      for (const FleetCheckpoint& row : res.trajectory.checkpoints) {
        acc += row.mean;
        staleness += row.stale;
      }
      const double n = static_cast<double>(res.trajectory.checkpoints.size());
      acc /= n;
      staleness /= n;
      table.add_row(
          {interval == 0 ? "never (factory only)" : std::to_string(interval),
           pct(acc), TextTable::fmt(staleness, 3)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: re-measurement intervals well below tau track the drift\n"
      "and hold accuracy; factory-only calibration decays toward the\n"
      "uncorrected level. This realizes the generalization the paper\n"
      "sketches in footnote 2.\n");
  return 0;
}
