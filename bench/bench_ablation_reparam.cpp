// Ablation A: reparameterized vs biased gradient estimation (paper §II.A,
// Eq. 1 vs Eq. 2; footnote 1 claims no prior VAT work used
// reparameterization). LeNet-5s A2W2 under weight-proportional within-chip
// variation — the weight-proportional model is where the two estimators
// differ (the layer-fixed reparameterization has df/dw = 0 a.e.).
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const ModelKind kind = ModelKind::kLeNet5s;
  const VarianceModel vm = VarianceModel::kWeightProportional;
  SplitDataset data = make_dataset_for(kind);
  EvalConfig ecfg = default_eval_config(kind);
  ModelConfig mcfg = default_model_config(kind, 2, 2);

  std::printf("Ablation A: reparameterized vs biased variability gradients\n");
  std::printf("(LeNet-5s A2W2, within-chip weight-proportional; accuracy %%)\n\n");

  TextTable table({"sigma", "reparameterized", "biased (Eq. 1)"});
  for (double sigma : {0.3, 0.5}) {
    const VariabilityConfig env = VariabilityConfig::within_only(vm, sigma);
    std::vector<std::string> row = {TextTable::fmt(sigma, 1)};
    for (bool reparam : {true, false}) {
      TrainConfig tcfg = within_train_config(kind, vm, sigma);
      tcfg.reparam = reparam;
      auto trained = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, tcfg);
      const double acc = eval_mean(
          std::string("lenet5s_A2W2_ablA_rep") + (reparam ? "1" : "0") + "_" +
              env_key(env),
          *trained.model, data.test, env, ecfg);
      row.push_back(pct(acc));
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nThe paper argues the biased estimator (noise treated as an additive\n"
      "constant) ignores the dependence of the noise distribution on w; the\n"
      "reparameterized estimator is unbiased. At small scale the gap is\n"
      "modest but the unbiased estimator should not be worse.\n");
  return 0;
}
