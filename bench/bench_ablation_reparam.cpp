// Ablation A: reparameterized vs biased gradient estimation (paper §II.A,
// Eq. 1 vs Eq. 2; footnote 1 claims no prior VAT work used
// reparameterization). LeNet-5s A2W2 under weight-proportional within-chip
// variation — the weight-proportional model is where the two estimators
// differ (the layer-fixed reparameterization has df/dw = 0 a.e.).
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_ablation_reparam");
  const ModelKind kind = ModelKind::kLeNet5s;
  const VarianceModel vm = VarianceModel::kWeightProportional;

  std::printf("Ablation A: reparameterized vs biased variability gradients\n");
  std::printf("(LeNet-5s A2W2, within-chip weight-proportional; accuracy %%)\n\n");

  TextTable table({"sigma", "reparameterized", "biased (Eq. 1)"});
  for (double sigma : {0.3, 0.5}) {
    std::vector<std::string> row = {TextTable::fmt(sigma, 1)};
    for (bool reparam : {true, false}) {
      ScenarioSpec spec =
          ScenarioSpec::within(kind, 2, 2, ScenarioAlgo::kQAVAT, vm, sigma);
      spec.train.reparam = reparam;
      row.push_back(pct(bench.session.run(spec).mean_acc));
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nThe paper argues the biased estimator (noise treated as an additive\n"
      "constant) ignores the dependence of the noise distribution on w; the\n"
      "reparameterized estimator is unbiased. At small scale the gap is\n"
      "modest but the unbiased estimator should not be worse.\n");
  return 0;
}
