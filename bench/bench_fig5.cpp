// Fig. 5 reproduction: training alone cannot handle realistic variability
// structure. ResNet-18s A4W2, QAVAT models deployed under (1) within-chip
// only and (2) mixed-type (sigma_B = sigma_W) variation of the same total
// sigma, for both variance models.
//
// Following the paper's deployment recipe (§III.B), the models are trained
// with within-chip Monte-Carlo sampling; the mixed-type rows show the same
// kind of model failing once the correlated component appears.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  const ModelKind kind = ModelKind::kResNet18s;
  SplitDataset data = make_dataset_for(kind);
  EvalConfig ecfg = default_eval_config(kind);
  ModelConfig mcfg = default_model_config(kind, 4, 2);
  const double sigmas[] = {0.1, 0.3, 0.5};  // paper sweeps 5 points; 3 keep
                                            // the shape within CPU budget

  std::printf("Fig. 5: QAVAT under within-chip vs mixed-type variation\n");
  std::printf("(ResNet-18s A4W2; mean accuracy %% over chips)\n\n");

  for (VarianceModel vm :
       {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    std::printf("%s variance model\n", to_string(vm));
    TextTable table({"sigma_tot", "within-chip only", "mixed-type"});
    for (double sigma : sigmas) {
      // Within-chip deployment: model trained at matching sigma_W.
      const VariabilityConfig env_within = VariabilityConfig::within_only(vm, sigma);
      TrainConfig t_within = within_train_config(kind, vm, sigma);
      auto m_within = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, t_within);
      const double acc_within = eval_mean(
          std::string("resnet18s_A4W2_f5_") + env_key(env_within) + "_QAVAT",
          *m_within.model, data.test, env_within, ecfg);
      m_within.model.reset();

      // Mixed-type deployment of the same sigma_tot: trained per the ST
      // recipe with the within component only.
      const VariabilityConfig env_mixed = VariabilityConfig::mixed(vm, sigma);
      TrainConfig t_mixed = mixed_deploy_train_config(kind, vm, sigma);
      auto m_mixed = train_cached(kind, mcfg, TrainAlgo::kQAVAT, data, t_mixed);
      const double acc_mixed = eval_mean(
          std::string("resnet18s_A4W2_f5_") + env_key(env_mixed) + "_QAVAT",
          *m_mixed.model, data.test, env_mixed, ecfg);

      table.add_row({TextTable::fmt(sigma, 1), pct(acc_within), pct(acc_mixed)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: both variance models degrade much more destructively\n"
      "under mixed-type variation than under within-chip variation of the\n"
      "same total sigma.\n");
  return 0;
}
