// Fig. 5 reproduction: training alone cannot handle realistic variability
// structure. ResNet-18s A4W2, QAVAT models deployed under (1) within-chip
// only and (2) mixed-type (sigma_B = sigma_W) variation of the same total
// sigma, for both variance models.
//
// Following the paper's deployment recipe (§III.B), the models are trained
// with within-chip Monte-Carlo sampling; the mixed-type rows show the same
// kind of model failing once the correlated component appears. Both
// recipes are encoded by the ScenarioSpec builders.
#include "bench_common.h"

using namespace qavat;
using namespace qavat::bench;

int main() {
  BenchHarness bench("bench_fig5");
  const ModelKind kind = ModelKind::kResNet18s;
  const double sigmas[] = {0.1, 0.3, 0.5};  // paper sweeps 5 points; 3 keep
                                            // the shape within CPU budget

  std::printf("Fig. 5: QAVAT under within-chip vs mixed-type variation\n");
  std::printf("(ResNet-18s A4W2; mean accuracy %% over chips)\n\n");

  for (VarianceModel vm :
       {VarianceModel::kWeightProportional, VarianceModel::kLayerFixed}) {
    std::printf("%s variance model\n", to_string(vm));
    TextTable table({"sigma_tot", "within-chip only", "mixed-type"});
    for (double sigma : sigmas) {
      const ScenarioSpec within =
          ScenarioSpec::within(kind, 4, 2, ScenarioAlgo::kQAVAT, vm, sigma);
      const ScenarioSpec mixed =
          ScenarioSpec::mixed(kind, 4, 2, ScenarioAlgo::kQAVAT, vm, sigma);
      table.add_row({TextTable::fmt(sigma, 1),
                     pct(bench.session.run(within).mean_acc),
                     pct(bench.session.run(mixed).mean_acc)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: both variance models degrade much more destructively\n"
      "under mixed-type variation than under within-chip variation of the\n"
      "same total sigma.\n");
  return 0;
}
