// qavat-store: maintenance CLI for the on-disk artifact store — the
// operational counterpart of eval/store.h for a fleet sharing one store
// over a filesystem.
//
//   qavat-store inspect [--root DIR]
//       Summarize the store: per budget/bucket artifact counts and
//       bytes, in-flight/orphaned tmp files, live/stale claim leases,
//       quarantined artifacts.
//   qavat-store verify [--root DIR] [--quarantine]
//       Walk every artifact and validate it end-to-end (envelope magic,
//       version, size, trailing checksum for state dicts; header + full
//       value parse for double vectors). Nonzero exit if anything is
//       corrupt; --quarantine moves the corrupt files aside so the next
//       consumer retrains instead of tripping over them.
//   qavat-store gc [--root DIR] [--min-age S] [--evict-quarantine]
//       Remove orphaned .tmp files and stale .claim leases older than
//       --min-age seconds (default: the claim TTL, QAVAT_CLAIM_TTL_S),
//       and with --evict-quarantine the quarantined artifacts too.
//   qavat-store evict [--root DIR] --older-than S
//       Delete artifacts older than S seconds (cache eviction; claims
//       and tmp files are gc's business).
//
// --root overrides QAVAT_STORE_DIR; with neither, the default store
// root artifacts/store (relative to the working directory) is used.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "eval/store.h"

namespace fs = std::filesystem;
using namespace qavat;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <inspect|verify|gc|evict> [--root DIR]\n"
               "  inspect                      summarize artifacts, claims, "
               "tmp and quarantine\n"
               "  verify [--quarantine]        validate every artifact "
               "checksum; exit 1 on corruption\n"
               "  gc [--min-age S] [--evict-quarantine]\n"
               "                               remove orphaned tmp + stale "
               "claims (default age: claim TTL)\n"
               "  evict --older-than S         delete artifacts older than S "
               "seconds\n",
               argv0);
  return 2;
}

bool file_is_tmp(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

bool file_is_claim(const std::string& name) {
  return (name.size() >= 6 && name.rfind(".claim") == name.size() - 6) ||
         name.find(".claim.reclaim.") != std::string::npos;
}

struct BucketSummary {
  long long files = 0;
  long long bytes = 0;
};

int cmd_inspect() {
  const fs::path root = store_root();
  std::error_code ec;
  if (!fs::exists(root, ec)) {
    std::printf("store %s: empty (no such directory)\n", root.c_str());
    return 0;
  }
  // Keyed by "<budget>/<bucket>" relative to the schema directory.
  std::map<std::string, BucketSummary> buckets;
  long long tmp_files = 0, claim_files = 0, stale_claims = 0;
  const double ttl = store_claim_ttl_seconds();
  const fs::path schema =
      root / ("v" + std::to_string(kStoreSchemaVersion));
  if (fs::exists(schema, ec)) {
    for (auto it = fs::recursive_directory_iterator(
             schema, fs::directory_options::skip_permission_denied, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const fs::path& p = it->path();
      const std::string name = p.filename().string();
      if (file_is_tmp(name)) {
        ++tmp_files;
        continue;
      }
      if (file_is_claim(name)) {
        ++claim_files;
        const auto mtime = fs::last_write_time(p, ec);
        if (!ec) {
          const auto now = fs::file_time_type::clock::now();
          const double age =
              std::chrono::duration<double>(now - mtime).count();
          if (age >= ttl) ++stale_claims;
        }
        continue;
      }
      const std::string rel =
          fs::relative(p.parent_path(), schema, ec).string();
      BucketSummary& b = buckets[ec ? std::string("?") : rel];
      ++b.files;
      b.bytes += static_cast<long long>(it->file_size(ec));
    }
  }
  long long quarantined = 0;
  const fs::path qdir = store_quarantine_dir();
  if (fs::exists(qdir, ec)) {
    for (auto it = fs::directory_iterator(qdir, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      if (it->is_regular_file(ec)) ++quarantined;
    }
  }
  std::printf("store %s (schema v%d)\n", root.c_str(), kStoreSchemaVersion);
  long long total_files = 0, total_bytes = 0;
  for (const auto& kv : buckets) {
    std::printf("  %-28s %8lld artifacts %12lld bytes\n", kv.first.c_str(),
                kv.second.files, kv.second.bytes);
    total_files += kv.second.files;
    total_bytes += kv.second.bytes;
  }
  std::printf("  total: %lld artifacts, %lld bytes\n", total_files,
              total_bytes);
  std::printf("  tmp files: %lld, claims: %lld (%lld stale at TTL %.0fs), "
              "quarantined: %lld\n",
              tmp_files, claim_files, stale_claims, ttl, quarantined);
  return 0;
}

int cmd_verify(bool quarantine_bad) {
  const StoreVerifyResult r = store_verify_all(quarantine_bad);
  for (const std::string& p : r.corrupt_paths) {
    std::printf("CORRUPT %s%s\n", p.c_str(),
                quarantine_bad ? " (quarantined)" : "");
  }
  std::printf("verify %s: %lld ok, %lld corrupt\n", store_root().c_str(),
              r.ok, r.corrupt);
  return r.corrupt == 0 ? 0 : 1;
}

int cmd_gc(double min_age, bool evict_quarantine) {
  const StoreGcResult r = store_gc(min_age, evict_quarantine);
  std::printf("gc %s: removed %lld tmp, %lld stale claims, %lld quarantined "
              "(min age %.0fs)\n",
              store_root().c_str(), r.tmp_removed, r.claims_removed,
              r.quarantine_removed, min_age);
  return 0;
}

int cmd_evict(double older_than) {
  const long long n = store_evict_older_than(older_than);
  std::printf("evict %s: removed %lld artifacts older than %.0fs\n",
              store_root().c_str(), n, older_than);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  bool quarantine_flag = false, evict_quarantine = false;
  double min_age = -1.0, older_than = -1.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      ::setenv("QAVAT_STORE_DIR", argv[++i], 1);
    } else if (arg == "--quarantine") {
      quarantine_flag = true;
    } else if (arg == "--evict-quarantine") {
      evict_quarantine = true;
    } else if (arg == "--min-age" && i + 1 < argc) {
      min_age = std::strtod(argv[++i], nullptr);
    } else if (arg == "--older-than" && i + 1 < argc) {
      older_than = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (cmd == "inspect") return cmd_inspect();
  if (cmd == "verify") return cmd_verify(quarantine_flag);
  if (cmd == "gc") {
    return cmd_gc(min_age >= 0.0 ? min_age : store_claim_ttl_seconds(),
                  evict_quarantine);
  }
  if (cmd == "evict") {
    if (older_than < 0.0) {
      std::fprintf(stderr, "evict requires --older-than S\n");
      return usage(argv[0]);
    }
    return cmd_evict(older_than);
  }
  return usage(argv[0]);
}
