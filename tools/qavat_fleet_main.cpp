// qavat-fleet: fleet lifetime study front end — the operational driver
// of FleetEvaluator (eval/fleet.h).
//
//   qavat-fleet emit
//       List the built-in lifetime studies.
//   qavat-fleet emit <study> [-o FILE]
//       Materialize a built-in study as a spec JSON document, to stdout
//       or FILE. Budgets are frozen under the CURRENT QAVAT_FAST — run
//       the spec under the same setting.
//   qavat-fleet run <spec.json> [--resume] [--dry-run]
//       Execute (or resume, or load) a study. Snapshots stream to the
//       store's "fleet" bucket after every checkpoint, so an interrupted
//       run picks up from the last published checkpoint. --resume
//       additionally asserts that a persisted snapshot was actually
//       resumed from (exit 1 when the study started from factory state —
//       the CI resume gate's tripwire). --dry-run probes the study's
//       claim units (done/busy/ready) and runs nothing.
//
// Per-checkpoint stdout lines are byte-stable across runs, resumes and
// thread counts:
//   study key=<study key> chips=<n> steps=<n> checkpoint=<k>
//   traj <i> step=<t> mean=<g> min=<g> max=<g> p5=<g> p50=<g> p95=<g>
//        retunes=<n> stale=<g>
// Provenance goes to stderr:
//   [qavat-fleet] key=<key> resumed_from=<t> published=<n> loaded=<0|1>
//   trained=<0|1>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/fleet.h"
#include "eval/store.h"

using namespace qavat;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <emit|run> ...\n"
               "  emit                      list built-in lifetime studies\n"
               "  emit <study> [-o FILE]    write a built-in study spec\n"
               "  run <spec.json> [--resume] [--dry-run]\n"
               "                            execute/resume a study "
               "(--resume asserts a\n"
               "                            snapshot was resumed from)\n",
               argv0);
  return 2;
}

int cmd_emit(int argc, char** argv) {
  if (argc < 3) {
    for (const std::string& name : builtin_fleet_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  const std::string study = argv[2];
  const char* out_path = nullptr;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  FleetStudySpec spec;
  if (!builtin_fleet_study(study, &spec)) {
    std::fprintf(stderr, "qavat-fleet: unknown study '%s'\n", study.c_str());
    return 1;
  }
  const std::string json = spec.to_json();
  if (out_path == nullptr) {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
  os << json << '\n';
  if (!os.good()) {
    std::fprintf(stderr, "qavat-fleet: cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}

int dry_run(const FleetStudySpec& spec) {
  Session session;
  FleetEvaluator fleet(session);
  const std::vector<ClaimUnitRef> units = fleet.claim_units(spec);
  for (std::size_t i = 0; i < units.size(); ++i) {
    const ClaimUnitRef& u = units[i];
    const char* state = store_has(u.bucket, u.key)          ? "done"
                        : store_claim_busy(u.bucket, u.key) ? "busy"
                                                            : "ready";
    std::printf("unit %zu %s %s/%s\n", i, state, u.bucket, u.key.c_str());
  }
  return 0;
}

void print_trajectory(const FleetStudySpec& spec, const FleetRunResult& res) {
  std::printf("study key=%s chips=%lld steps=%lld checkpoint=%lld\n",
              spec.key().c_str(),
              static_cast<long long>(spec.lifetime.n_chips),
              static_cast<long long>(spec.lifetime.n_steps),
              static_cast<long long>(spec.lifetime.checkpoint_every));
  const std::vector<FleetCheckpoint>& rows = res.trajectory.checkpoints;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FleetCheckpoint& r = rows[i];
    std::printf(
        "traj %zu step=%lld mean=%.17g min=%.17g max=%.17g p5=%.17g "
        "p50=%.17g p95=%.17g retunes=%lld stale=%.17g\n",
        i, static_cast<long long>(r.step), r.mean, r.min, r.max, r.p5, r.p50,
        r.p95, static_cast<long long>(r.retunes), r.stale);
  }
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string path = argv[2];
  bool resume = false;
  bool dry = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--resume") {
      resume = true;
    } else if (arg == "--dry-run") {
      dry = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    std::fprintf(stderr, "qavat-fleet: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  FleetStudySpec spec;
  std::string err;
  if (!FleetStudySpec::from_json(buf.str(), &spec, &err)) {
    std::fprintf(stderr, "qavat-fleet: %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  if (dry) return dry_run(spec);

  Session session;
  FleetEvaluator fleet(session);
  const FleetRunResult res = fleet.run(spec);
  print_trajectory(spec, res);
  session.print_summary("qavat-fleet");
  std::fprintf(stderr,
               "[qavat-fleet] key=%s resumed_from=%lld published=%lld "
               "loaded=%d trained=%d\n",
               spec.key().c_str(),
               static_cast<long long>(res.resumed_from_step),
               static_cast<long long>(res.snapshots_published),
               res.loaded ? 1 : 0, res.trained ? 1 : 0);
  if (resume && res.resumed_from_step == 0 && !res.loaded) {
    std::fprintf(stderr,
                 "qavat-fleet: --resume but no persisted snapshot was "
                 "resumed from (study restarted from factory state)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "emit") return cmd_emit(argc, argv);
  if (cmd == "run") return cmd_run(argc, argv);
  return usage(argv[0]);
}
