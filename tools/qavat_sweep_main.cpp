// qavat-sweep: manifest-driven sweep engine — the operational front end
// of Session::run_manifest (eval/runner.h) for a fleet of processes
// sharing one artifact store.
//
//   qavat-sweep emit
//       List the built-in grid generators.
//   qavat-sweep emit <grid> [-o FILE] [--shards K]
//       Materialize a built-in grid ("table1", "sweep_sigma") as a
//       manifest JSON document, to stdout or FILE. Budgets are frozen
//       under the CURRENT QAVAT_FAST — run the manifest under the same
//       setting. --shards K instead writes K disjoint round-robin
//       manifests (<base>.shard<i>of<K>) for hosts that do not share a
//       store; together they partition the grid losslessly.
//   qavat-sweep run <manifest.json> [--workers K] [--sequential]
//                   [--dry-run]
//       Execute a manifest. Default: one in-process claim-aware
//       run_manifest pass. --workers K forks K workers (before any
//       compute, so no pool threads cross fork) over the shared store;
//       the parent asserts every worker's result vector is
//       byte-identical and prints worker 0's. --sequential uses the
//       plain pipelined run_all — the byte-comparable reference the CI
//       manifest gate diffs the scheduler paths against. --dry-run
//       probes each spec's claim units (done/busy/ready) and runs
//       nothing.
//
// Per-result stdout lines are byte-stable across all run modes:
//   result <i> key=<spec key> clean=<g> mean=<g> stddev=<g>
// Provenance goes to stderr:
//   [qavat-sweep] manifest=<name> specs=<n> workers=<k> train_runs=<sum>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "eval/manifest.h"
#include "eval/runner.h"
#include "eval/store.h"

using namespace qavat;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <emit|run> ...\n"
               "  emit                         list built-in grids\n"
               "  emit <grid> [-o FILE] [--shards K]\n"
               "                               write a built-in grid as a "
               "manifest\n"
               "                               (--shards K: K disjoint "
               "round-robin manifests)\n"
               "  run <manifest.json> [--workers K] [--sequential] "
               "[--dry-run]\n"
               "                               execute a manifest "
               "(claim-aware scheduler;\n"
               "                               --sequential = plain run_all "
               "reference)\n",
               argv0);
  return 2;
}

void print_results(const std::vector<ScenarioResult>& results) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf("result %zu key=%s clean=%.17g mean=%.17g stddev=%.17g\n", i,
                r.key.c_str(), r.clean_acc, r.mean_acc,
                r.mc.accuracy.stddev);
  }
}

void print_provenance(const SweepManifest& m, int workers,
                      long long train_runs) {
  std::fprintf(stderr,
               "[qavat-sweep] manifest=%s specs=%zu workers=%d "
               "train_runs=%lld\n",
               m.name.c_str(), m.specs.size(), workers, train_runs);
}

int cmd_emit(int argc, char** argv) {
  if (argc < 3) {
    for (const std::string& name : builtin_manifest_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  const std::string grid = argv[2];
  const char* out_path = nullptr;
  int shards = 0;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1) {
        std::fprintf(stderr, "qavat-sweep: --shards must be >= 1\n");
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  SweepManifest m;
  if (!builtin_manifest(grid, &m)) {
    std::fprintf(stderr, "qavat-sweep: unknown grid '%s'\n", grid.c_str());
    return 1;
  }
  if (shards > 0) {
    // Round-robin split for hosts that do not share a store: shard i is
    // written next to the base path as <base>.shard<i>of<K> and carries
    // the matching manifest name. The shards partition the grid
    // losslessly (shard i holds specs i, i+K, i+2K, ... in grid order).
    const std::string base =
        out_path != nullptr ? std::string(out_path) : grid + ".json";
    const std::vector<SweepManifest> parts = shard_manifest(m, shards);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const std::string path = base + ".shard" + std::to_string(i) + "of" +
                               std::to_string(shards);
      std::string err;
      if (!parts[i].save(path, &err)) {
        std::fprintf(stderr, "qavat-sweep: %s\n", err.c_str());
        return 1;
      }
      std::printf("shard %zu %s specs=%zu\n", i, path.c_str(),
                  parts[i].specs.size());
    }
    return 0;
  }
  if (out_path == nullptr) {
    std::printf("%s\n", m.to_json().c_str());
    return 0;
  }
  std::string err;
  if (!m.save(out_path, &err)) {
    std::fprintf(stderr, "qavat-sweep: %s\n", err.c_str());
    return 1;
  }
  return 0;
}

// --dry-run: probe every claim unit of every spec without running
// anything. "done" = artifact published, "busy" = live lease held by
// some process, "ready" = this process could claim it right now.
int dry_run(const SweepManifest& m) {
  Session session;
  for (std::size_t i = 0; i < m.specs.size(); ++i) {
    const std::vector<ClaimUnitRef> units = session.claim_units(m.specs[i]);
    for (const ClaimUnitRef& u : units) {
      const char* state = store_has(u.bucket, u.key)          ? "done"
                          : store_claim_busy(u.bucket, u.key) ? "busy"
                                                              : "ready";
      std::printf("unit %zu %s %s/%s\n", i, state, u.bucket, u.key.c_str());
    }
  }
  return 0;
}

// One in-process pass, claim-aware (default) or sequential reference.
int run_single(const SweepManifest& m, bool sequential) {
  const long long runs_before = static_cast<long long>(training_runs());
  Session session;
  const std::vector<ScenarioResult> results =
      sequential ? session.run_all(m.specs) : session.run_manifest(m);
  print_results(results);
  session.print_summary("qavat-sweep");
  print_provenance(m, 1, static_cast<long long>(training_runs()) - runs_before);
  return 0;
}

bool write_all(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

// --workers K: fork K claim-aware workers over the (shared) store this
// process inherited. Forked BEFORE any compute so no thread-pool
// threads exist yet. Each worker reports its train-run delta plus the
// [clean, mean, stddev] triple per spec in MANIFEST order; the parent
// asserts all reports byte-identical (the determinism contract) and
// prints the canonical result lines itself.
int run_workers(const SweepManifest& m, int workers) {
  const size_t n_values = 3 * m.specs.size();
  std::vector<pid_t> pids;
  std::vector<int> pipes;
  std::fflush(stdout);
  std::fflush(stderr);
  for (int w = 0; w < workers; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::close(fds[0]);
      const long long runs_before = static_cast<long long>(training_runs());
      Session session;
      const std::vector<ScenarioResult> results = session.run_manifest(m);
      session.print_summary("qavat-sweep.worker");
      const long long runs =
          static_cast<long long>(training_runs()) - runs_before;
      std::vector<double> values(n_values, 0.0);
      for (std::size_t i = 0; i < results.size(); ++i) {
        values[3 * i + 0] = results[i].clean_acc;
        values[3 * i + 1] = results[i].mean_acc;
        values[3 * i + 2] = results[i].mc.accuracy.stddev;
      }
      const bool ok =
          write_all(fds[1], &runs, sizeof runs) &&
          write_all(fds[1], values.data(), n_values * sizeof(double));
      ::close(fds[1]);
      std::fflush(nullptr);
      ::_exit(ok ? 0 : 1);
    }
    ::close(fds[1]);
    pids.push_back(pid);
    pipes.push_back(fds[0]);
  }

  bool failed = false;
  long long runs_sum = 0;
  std::vector<std::vector<double>> worker_values(
      static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    long long runs = 0;
    worker_values[w].resize(n_values, 0.0);
    if (!read_all(pipes[w], &runs, sizeof runs) ||
        !read_all(pipes[w], worker_values[w].data(),
                  n_values * sizeof(double))) {
      std::fprintf(stderr, "qavat-sweep: worker %d report truncated\n", w);
      failed = true;
    }
    ::close(pipes[w]);
    runs_sum += runs;
  }
  for (int w = 0; w < workers; ++w) {
    int status = 0;
    if (::waitpid(pids[w], &status, 0) != pids[w] || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "qavat-sweep: worker %d exited abnormally\n", w);
      failed = true;
    }
  }
  for (int w = 1; w < workers; ++w) {
    if (std::memcmp(worker_values[w].data(), worker_values[0].data(),
                    n_values * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "qavat-sweep: worker %d results differ from worker 0 — "
                   "determinism contract broken\n",
                   w);
      failed = true;
    }
  }
  if (failed) return 1;

  std::vector<ScenarioResult> results(m.specs.size());
  for (std::size_t i = 0; i < m.specs.size(); ++i) {
    results[i].key = m.specs[i].key();
    results[i].clean_acc = worker_values[0][3 * i + 0];
    results[i].mean_acc = worker_values[0][3 * i + 1];
    results[i].mc.accuracy.stddev = worker_values[0][3 * i + 2];
  }
  print_results(results);
  print_provenance(m, workers, runs_sum);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string path = argv[2];
  int workers = 1;
  bool sequential = false;
  bool dry = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--sequential") {
      sequential = true;
    } else if (arg == "--dry-run") {
      dry = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  SweepManifest m;
  std::string err;
  if (!SweepManifest::load(path, &m, &err)) {
    std::fprintf(stderr, "qavat-sweep: %s\n", err.c_str());
    return 1;
  }
  if (dry) return dry_run(m);
  if (sequential || workers <= 1) return run_single(m, sequential);
  return run_workers(m, workers);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "emit") return cmd_emit(argc, argv);
  if (cmd == "run") return cmd_run(argc, argv);
  return usage(argv[0]);
}
