#include "core/variability/lifetime.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>

#include "core/selftune/selftune.h"

namespace qavat {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Stream-purpose tags: every lifetime stream is Rng(seed', chip) with a
// distinct seed', so it is independent of every other per-chip stream
// (including the fleet layer's static within-chip field at
// Rng(seed, chip)) without any generator state crossing a step boundary.
constexpr std::uint64_t kInitStreamTag = 0x6c1fe97a73f8d2b5ULL;
constexpr std::uint64_t kStepStreamStride = 0x9e3779b97f4a7c15ULL;

// Canonical double formatting for keys: stable, short, no locale.
std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Round-trip-exact double formatting for JSON.
std::string fmt_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* variance_token(VarianceModel m) {
  return m == VarianceModel::kWeightProportional ? "wp" : "lf";
}

const char* policy_kind_token(RetunePolicyKind k) {
  switch (k) {
    case RetunePolicyKind::kNever: return "never";
    case RetunePolicyKind::kFixedInterval: return "fixed_interval";
    case RetunePolicyKind::kThreshold: return "threshold";
  }
  return "?";
}

std::string lld(index_t v) { return std::to_string(static_cast<long long>(v)); }

std::string events_token(const DriftEvents& e) {
  if (!e.any()) return "none";
  std::string s;
  auto sep = [&s]() {
    if (!s.empty()) s += '_';
  };
  if (e.aging_rate > 0.0) {
    sep();
    s += "ag" + fmt_g(e.aging_rate);
  }
  if (e.thermal_amp > 0.0 && e.thermal_period > 0.0) {
    sep();
    s += "th" + fmt_g(e.thermal_amp) + "x" + fmt_g(e.thermal_period);
  }
  if (e.disturb_rate > 0.0 && e.disturb_mag > 0.0) {
    sep();
    s += "pd" + fmt_g(e.disturb_rate) + "x" + fmt_g(e.disturb_mag);
  }
  return s;
}

std::string policy_token(const RetunePolicy& p) {
  switch (p.kind) {
    case RetunePolicyKind::kNever: return "never";
    case RetunePolicyKind::kFixedInterval: return "fix" + lld(p.interval);
    case RetunePolicyKind::kThreshold:
      return "thr" + fmt_g(p.budget) + "x" + lld(p.probe_cells);
  }
  return "?";
}

// ---------------------------------------------------------------- JSON
// Same minimal recursive-descent parser and typed-reader idiom as
// eval/scenario.cpp. Duplicated here because core sits below eval in
// the layer diagram and must not reach up for eval's (file-local)
// helpers.

void json_kv(std::string& out, const char* k, const std::string& v,
             bool quote, bool last = false) {
  out += '"';
  out += k;
  out += "\":";
  if (quote) out += '"';
  out += v;
  if (quote) out += '"';
  if (!last) out += ',';
}

struct Jv {
  enum Kind { kBool, kNum, kStr, kObj } kind = kNum;
  bool b = false;
  std::string text;  // number text or string value
  std::map<std::string, Jv> obj;

  const Jv* find(const char* name) const {
    auto it = obj.find(name);
    return it == obj.end() ? nullptr : &it->second;
  }
  double num() const { return std::strtod(text.c_str(), nullptr); }
  long long inum() const { return std::strtoll(text.c_str(), nullptr, 10); }
};

void skip_ws(const char*& p) {
  while (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r') ++p;
}

bool parse_string(const char*& p, std::string* out) {
  if (*p != '"') return false;
  ++p;
  out->clear();
  while (*p != '\0' && *p != '"') {
    if (*p == '\\') return false;  // to_json never emits escapes
    out->push_back(*p++);
  }
  if (*p != '"') return false;
  ++p;
  return true;
}

bool parse_value(const char*& p, Jv* out) {
  skip_ws(p);
  if (*p == '{') {
    ++p;
    out->kind = Jv::kObj;
    skip_ws(p);
    if (*p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws(p);
      std::string name;
      if (!parse_string(p, &name)) return false;
      skip_ws(p);
      if (*p != ':') return false;
      ++p;
      Jv child;
      if (!parse_value(p, &child)) return false;
      out->obj.emplace(std::move(name), std::move(child));
      skip_ws(p);
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }
  if (*p == '"') {
    out->kind = Jv::kStr;
    return parse_string(p, &out->text);
  }
  if (std::strncmp(p, "true", 4) == 0) {
    out->kind = Jv::kBool;
    out->b = true;
    p += 4;
    return true;
  }
  if (std::strncmp(p, "false", 5) == 0) {
    out->kind = Jv::kBool;
    out->b = false;
    p += 5;
    return true;
  }
  const char* start = p;
  while (*p == '-' || *p == '+' || *p == '.' || *p == 'e' || *p == 'E' ||
         (*p >= '0' && *p <= '9')) {
    ++p;
  }
  if (p == start) return false;
  out->kind = Jv::kNum;
  out->text.assign(start, static_cast<std::size_t>(p - start));
  return true;
}

bool fail_field(std::string* err, const char* prefix, const char* name,
                const std::string& what) {
  if (err != nullptr && err->empty()) {
    *err = std::string(prefix) + name + ": " + what;
  }
  return false;
}

bool read_num(const Jv& o, const char* name, double* dst, std::string* err,
              const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kNum) {
    return fail_field(err, prefix, name, "expected a number");
  }
  *dst = v->num();
  return true;
}

bool read_index(const Jv& o, const char* name, index_t* dst, std::string* err,
                const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kNum) {
    return fail_field(err, prefix, name, "expected an integer");
  }
  *dst = static_cast<index_t>(v->inum());
  return true;
}

bool read_u64(const Jv& o, const char* name, std::uint64_t* dst,
              std::string* err, const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kNum) {
    return fail_field(err, prefix, name, "expected an integer");
  }
  *dst = static_cast<std::uint64_t>(
      std::strtoull(v->text.c_str(), nullptr, 10));
  return true;
}

template <typename E>
bool read_enum(const Jv& o, const char* name,
               std::initializer_list<const char*> tokens,
               std::initializer_list<E> values, E* dst, std::string* err,
               const char* prefix = "") {
  const Jv* v = o.find(name);
  if (v == nullptr) return true;
  if (v->kind != Jv::kStr) {
    return fail_field(err, prefix, name, "expected a string");
  }
  auto tok = tokens.begin();
  auto val = values.begin();
  for (; tok != tokens.end(); ++tok, ++val) {
    if (v->text == *tok) {
      *dst = *val;
      return true;
    }
  }
  return fail_field(err, prefix, name, "unknown token '" + v->text + "'");
}

}  // namespace

std::string LifetimeSpec::key() const {
  std::string k = "lt" + std::to_string(kLifetimeSchemaVersion);
  k += "_dr[" + std::string(variance_token(drift.model)) + "w" +
       fmt_g(drift.sigma_w) + "b" + fmt_g(drift.sigma_b) + "t" +
       fmt_g(drift.tau) + "]";
  k += "_ev[" + events_token(events) + "]";
  k += "_rp[" + policy_token(policy) + "]";
  k += "_g" + lld(gtm_cells);
  k += "_fl[c" + lld(n_chips) + "_k" + lld(checkpoint_every) + "_bs" +
       lld(batch_size) + "_sd" + std::to_string(seed) + "]";
  return k;
}

std::string LifetimeSpec::to_json() const {
  std::string o = "{";
  json_kv(o, "lifetime_schema", std::to_string(kLifetimeSchemaVersion), false);
  {
    std::string d = "{";
    json_kv(d, "model", variance_token(drift.model), true);
    json_kv(d, "sigma_w", fmt_exact(drift.sigma_w), false);
    json_kv(d, "sigma_b", fmt_exact(drift.sigma_b), false);
    json_kv(d, "tau", fmt_exact(drift.tau), false, true);
    d += '}';
    json_kv(o, "drift", d, false);
  }
  {
    std::string e = "{";
    json_kv(e, "aging_rate", fmt_exact(events.aging_rate), false);
    json_kv(e, "thermal_amp", fmt_exact(events.thermal_amp), false);
    json_kv(e, "thermal_period", fmt_exact(events.thermal_period), false);
    json_kv(e, "disturb_rate", fmt_exact(events.disturb_rate), false);
    json_kv(e, "disturb_mag", fmt_exact(events.disturb_mag), false, true);
    e += '}';
    json_kv(o, "events", e, false);
  }
  {
    std::string p = "{";
    json_kv(p, "kind", policy_kind_token(policy.kind), true);
    json_kv(p, "interval", lld(policy.interval), false);
    json_kv(p, "budget", fmt_exact(policy.budget), false);
    json_kv(p, "probe_cells", lld(policy.probe_cells), false, true);
    p += '}';
    json_kv(o, "policy", p, false);
  }
  json_kv(o, "gtm_cells", lld(gtm_cells), false);
  json_kv(o, "n_chips", lld(n_chips), false);
  json_kv(o, "n_steps", lld(n_steps), false);
  json_kv(o, "checkpoint_every", lld(checkpoint_every), false);
  json_kv(o, "batch_size", lld(batch_size), false);
  json_kv(o, "seed", std::to_string(seed), false, true);
  o += '}';
  return o;
}

bool LifetimeSpec::from_json(const std::string& text, LifetimeSpec* out,
                             std::string* error) {
  if (error != nullptr) error->clear();
  const char* p = text.c_str();
  Jv root;
  if (!parse_value(p, &root) || root.kind != Jv::kObj) {
    if (error != nullptr && error->empty()) *error = "malformed JSON";
    return false;
  }
  skip_ws(p);
  if (*p != '\0') {
    if (error != nullptr) *error = "malformed JSON (trailing characters)";
    return false;
  }
  std::string* err = error;

  LifetimeSpec s;
  const Jv* schema = root.find("lifetime_schema");
  if (schema == nullptr || schema->kind != Jv::kNum) {
    return fail_field(err, "", "lifetime_schema", "missing or not a number");
  }
  if (schema->inum() != kLifetimeSchemaVersion) {
    return fail_field(err, "", "lifetime_schema",
                      "version mismatch: expected " +
                          std::to_string(kLifetimeSchemaVersion) + ", got " +
                          schema->text);
  }
  if (const Jv* d = root.find("drift")) {
    if (d->kind != Jv::kObj) {
      return fail_field(err, "", "drift", "expected an object");
    }
    if (!read_enum(*d, "model", {"wp", "lf"},
                   {VarianceModel::kWeightProportional,
                    VarianceModel::kLayerFixed},
                   &s.drift.model, err, "drift.") ||
        !read_num(*d, "sigma_w", &s.drift.sigma_w, err, "drift.") ||
        !read_num(*d, "sigma_b", &s.drift.sigma_b, err, "drift.") ||
        !read_num(*d, "tau", &s.drift.tau, err, "drift.")) {
      return false;
    }
  }
  if (const Jv* e = root.find("events")) {
    if (e->kind != Jv::kObj) {
      return fail_field(err, "", "events", "expected an object");
    }
    if (!read_num(*e, "aging_rate", &s.events.aging_rate, err, "events.") ||
        !read_num(*e, "thermal_amp", &s.events.thermal_amp, err, "events.") ||
        !read_num(*e, "thermal_period", &s.events.thermal_period, err,
                  "events.") ||
        !read_num(*e, "disturb_rate", &s.events.disturb_rate, err,
                  "events.") ||
        !read_num(*e, "disturb_mag", &s.events.disturb_mag, err, "events.")) {
      return false;
    }
  }
  if (const Jv* pl = root.find("policy")) {
    if (pl->kind != Jv::kObj) {
      return fail_field(err, "", "policy", "expected an object");
    }
    if (!read_enum(*pl, "kind", {"never", "fixed_interval", "threshold"},
                   {RetunePolicyKind::kNever, RetunePolicyKind::kFixedInterval,
                    RetunePolicyKind::kThreshold},
                   &s.policy.kind, err, "policy.") ||
        !read_index(*pl, "interval", &s.policy.interval, err, "policy.") ||
        !read_num(*pl, "budget", &s.policy.budget, err, "policy.") ||
        !read_index(*pl, "probe_cells", &s.policy.probe_cells, err,
                    "policy.")) {
      return false;
    }
  }
  if (!read_index(root, "gtm_cells", &s.gtm_cells, err) ||
      !read_index(root, "n_chips", &s.n_chips, err) ||
      !read_index(root, "n_steps", &s.n_steps, err) ||
      !read_index(root, "checkpoint_every", &s.checkpoint_every, err) ||
      !read_index(root, "batch_size", &s.batch_size, err) ||
      !read_u64(root, "seed", &s.seed, err)) {
    return false;
  }
  *out = s;
  return true;
}

// ------------------------------------------------------------- model

LifetimeModel::LifetimeModel(const LifetimeSpec& spec)
    : drift_(spec.drift),
      events_(spec.events),
      policy_(spec.policy),
      gtm_cells_(spec.gtm_cells) {}

Rng LifetimeModel::init_rng(const LifetimeSpec& spec, index_t chip) {
  return Rng(spec.seed ^ kInitStreamTag, static_cast<std::uint64_t>(chip));
}

Rng LifetimeModel::step_rng(const LifetimeSpec& spec, index_t chip,
                            index_t t) {
  return Rng(spec.seed + kStepStreamStride * static_cast<std::uint64_t>(t),
             static_cast<std::uint64_t>(chip));
}

void LifetimeModel::init(ChipLifetimeState* st, Rng& rng) const {
  st->ou = rng.normal(0.0, drift_.sigma_b);
  st->aging = 0.0;
  st->disturb = 0.0;
  st->phase = events_.thermal_amp > 0.0 && events_.thermal_period > 0.0
                  ? rng.uniform(0.0, 2.0 * kPi)
                  : 0.0;
  st->retunes = 0;
  // Factory calibration: the full GTM measurement at t = 0 (not counted
  // as a deployment re-tune).
  st->eps_hat = measure_eps_b(eps_b(*st, 0), drift_.sigma_w, gtm_cells_, rng);
}

void LifetimeModel::advance(ChipLifetimeState* st, Rng& rng) const {
  OuProcess ou(drift_.tau, drift_.sigma_b);
  ou.set_value(st->ou);
  st->ou = ou.step(rng);
  if (events_.aging_rate > 0.0) {
    st->aging -= events_.aging_rate * rng.uniform(0.5, 1.5);
  }
  if (events_.disturb_rate > 0.0 && events_.disturb_mag > 0.0) {
    if (rng.uniform(0.0, 1.0) < events_.disturb_rate) {
      st->disturb += rng.normal(0.0, events_.disturb_mag);
    }
  }
}

bool LifetimeModel::maybe_retune(ChipLifetimeState* st, index_t t,
                                 Rng& rng) const {
  switch (policy_.kind) {
    case RetunePolicyKind::kNever:
      return false;
    case RetunePolicyKind::kFixedInterval:
      if (policy_.interval <= 0 || t % policy_.interval != 0) return false;
      break;
    case RetunePolicyKind::kThreshold: {
      const double probe = measure_eps_b(eps_b(*st, t), drift_.sigma_w,
                                         policy_.probe_cells, rng);
      if (std::fabs(probe - st->eps_hat) <= policy_.budget) return false;
      break;
    }
  }
  st->eps_hat = measure_eps_b(eps_b(*st, t), drift_.sigma_w, gtm_cells_, rng);
  st->retunes += 1;
  return true;
}

double LifetimeModel::eps_b(const ChipLifetimeState& st, index_t t) const {
  double e = st.ou + st.aging + st.disturb;
  if (events_.thermal_amp > 0.0 && events_.thermal_period > 0.0) {
    e += events_.thermal_amp *
         std::sin(2.0 * kPi * static_cast<double>(t) /
                      events_.thermal_period +
                  st.phase);
  }
  return e;
}

}  // namespace qavat
