#include "core/variability/drift.h"

#include <cmath>

namespace qavat {

OuProcess::OuProcess(double tau, double stationary_sigma, Rng& rng)
    : a_(std::exp(-1.0 / (tau > 0.0 ? tau : 1.0))),
      innovation_sigma_(stationary_sigma * std::sqrt(1.0 - a_ * a_)),
      x_(rng.normal(0.0, stationary_sigma)) {}

OuProcess::OuProcess(double tau, double stationary_sigma)
    : a_(std::exp(-1.0 / (tau > 0.0 ? tau : 1.0))),
      innovation_sigma_(stationary_sigma * std::sqrt(1.0 - a_ * a_)),
      x_(0.0) {}

double OuProcess::step(Rng& rng) {
  x_ = a_ * x_ + rng.normal(0.0, innovation_sigma_);
  return x_;
}

}  // namespace qavat
