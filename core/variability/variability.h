// Conductance-variation models (paper §II.B). Two variance shapes:
//  * kWeightProportional — std of a weight's deviation proportional to |w|
//    (multiplicative: w_eff = w * (1 + eps)).
//  * kLayerFixed — std fixed per layer at sigma * max|w| (additive:
//    w_eff = w + eps * wmax).
// Each deployment combines a *within-chip* component (iid per device,
// sigma_w) and a *between-chip* component (one draw per chip, sigma_b)
// that is fully correlated across the chip — the component self-tuning
// can measure and cancel.
#pragma once

#include <cmath>

#include "tensor/tensor.h"

namespace qavat {

enum class VarianceModel { kWeightProportional, kLayerFixed };

inline const char* to_string(VarianceModel m) {
  return m == VarianceModel::kWeightProportional ? "weight-proportional"
                                                 : "layer-fixed";
}

struct VariabilityConfig {
  VarianceModel model = VarianceModel::kWeightProportional;
  double sigma_w = 0.0;  // within-chip (device-to-device) std
  double sigma_b = 0.0;  // between-chip (correlated) std

  bool enabled() const { return sigma_w > 0.0 || sigma_b > 0.0; }

  static VariabilityConfig within_only(VarianceModel m, double sigma) {
    VariabilityConfig v;
    v.model = m;
    v.sigma_w = sigma;
    return v;
  }

  /// Mixed-type deployment with equal within/between components summing to
  /// sigma_tot in quadrature: sigma_w = sigma_b = sigma_tot / sqrt(2).
  static VariabilityConfig mixed(VarianceModel m, double sigma_tot) {
    VariabilityConfig v;
    v.model = m;
    v.sigma_w = sigma_tot / std::sqrt(2.0);
    v.sigma_b = v.sigma_w;
    return v;
  }
};

/// Conductance / layer-fixed-noise unit from a layer's max |weight|: the
/// weight magnitude one full-scale device represents. Falls back to 1.0
/// for an all-zero layer so downstream divisions stay finite. Shared by
/// the crossbar programming (pim/), the int8 backend's requant grid and
/// the layer-fixed variance unit.
inline double w_unit_from_max(float wmax) {
  return wmax > 0.0f ? static_cast<double>(wmax) : 1.0;
}

class QuantLayerBase;

/// Draw a fresh within-chip noise realization (and a layer-local
/// between-chip draw when cfg.sigma_b > 0) into the layer's NoiseState and
/// activate it. Chip-level evaluation overwrites eps_b afterwards with the
/// one shared per-chip draw.
void sample_variability(QuantLayerBase& layer, const VariabilityConfig& cfg,
                        Rng& rng);

/// Size the layer's NoiseState for a noise batch of `batch` simulated
/// chips: eps becomes {batch, fan_out, fan_in} and the per-slot chip-level
/// vectors (eps_b/eps_hat/ltm_err) get `batch` zeroed entries. Does not
/// activate the state; fill slots with sample_variability_slot().
void ensure_noise_batch(QuantLayerBase& layer, index_t batch);

/// Slot-wise counterpart of sample_variability for a batched NoiseState:
/// fills slot `slot` with the exact same RNG draw sequence (so a chip
/// sampled into a slot is identical to the same chip sampled via
/// sample_variability from the same Rng state). With cfg disabled the slot
/// is zeroed and no RNG draws are consumed, mirroring the scalar path.
void sample_variability_slot(QuantLayerBase& layer, const VariabilityConfig& cfg,
                             Rng& rng, index_t slot);

/// Slot-PURE core of sample_variability_slot: identical RNG draws and
/// per-slot writes (the slot's eps slice and eps_b_v entry), but none of
/// the NoiseState-wide writes (revision, model, wmax, active). Distinct
/// slots touch disjoint storage, so the batched evaluator samples chips
/// into their slots from a parallel_for — the caller hoists the shared
/// writes into a serial per-group prologue (eval/evaluator.cpp).
void sample_variability_slot_draws(QuantLayerBase& layer,
                                   const VariabilityConfig& cfg, Rng& rng,
                                   index_t slot);

}  // namespace qavat
