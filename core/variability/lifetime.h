// Fleet lifetime model: composable drift *events* on top of the OU term
// (core/variability/drift.h), scheduled re-tuning policies, and the
// schema-versioned LifetimeSpec that names a whole longitudinal study.
//
// A deployed analog chip's correlated deviation eps_B(t) is the sum of
// four processes, each advanced once per inference step:
//   * the stationary OU term (temperature drift, correlation time tau),
//   * an aging ramp — monotone conductance decay, a per-step decrement
//     of aging_rate jittered uniformly in [0.5, 1.5),
//   * a thermal cycle — deterministic periodic modulation
//     amp * sin(2*pi*t/period + phase) with a per-chip phase,
//   * program disturb — a rare persistent jump (probability disturb_rate
//     per step, magnitude ~ N(0, disturb_mag)).
// The within-chip component stays static (devices age coherently here;
// the per-device field is sampled once per chip, as in DESIGN.md §6).
//
// Determinism contract (the fleet layer's snapshot/resume protocol and
// thread-count bit-identity both hang off it): every stochastic draw
// comes from a *counter-based* stream — Rng(f(seed, t), chip) — never
// from a long-lived generator, so a chip's trajectory is a pure function
// of (spec.seed, chip, t). Resuming from a ChipLifetimeState snapshot
// therefore reproduces the uninterrupted run bit-identically, and chips
// may be advanced in any order from any number of threads.
#pragma once

#include <cstdint>
#include <string>

#include "core/variability/drift.h"

namespace qavat {

/// Key/JSON schema version baked into every LifetimeSpec key; bump when
/// the key format, the draw order, or the meaning of any keyed field
/// changes so persisted fleet snapshots can never be misread.
inline constexpr int kLifetimeSchemaVersion = 1;

/// Drift-event mix layered on top of the OU term. All-zero (the
/// default) degenerates to the pure OU drift of DESIGN.md §6.
struct DriftEvents {
  double aging_rate = 0.0;     ///< mean eps_B decay per step (monotone)
  double thermal_amp = 0.0;    ///< amplitude of the periodic modulation
  double thermal_period = 0.0; ///< thermal period in steps (0 disables)
  double disturb_rate = 0.0;   ///< per-step program-disturb probability
  double disturb_mag = 0.0;    ///< std of one disturb jump

  /// True when any event process is enabled.
  bool any() const {
    return aging_rate > 0.0 || (thermal_amp > 0.0 && thermal_period > 0.0) ||
           (disturb_rate > 0.0 && disturb_mag > 0.0);
  }
};

/// When the chip re-measures its GTM during deployment.
enum class RetunePolicyKind {
  kNever,          ///< factory calibration only
  kFixedInterval,  ///< full re-measure every `interval` steps
  kThreshold       ///< cheap probe each step; full re-measure on budget
                   ///< excess
};

/// Scheduled re-tuning policy. The threshold policy models a cheap
/// online health check: each step the chip reads `probe_cells` GTM
/// devices (error ~ sigma_W / sqrt(probe_cells)) and triggers the full
/// `gtm_cells` re-measurement only when the probe disagrees with the
/// last calibration by more than `budget`.
struct RetunePolicy {
  RetunePolicyKind kind = RetunePolicyKind::kNever;
  index_t interval = 0;     ///< kFixedInterval: steps between re-measures
  double budget = 0.1;      ///< kThreshold: |probe - eps_hat| trigger
  index_t probe_cells = 16; ///< kThreshold: cheap probe size
};

/// Everything that determines one fleet lifetime study's numbers —
/// drift mix, re-tuning policy, population protocol and seed — with a
/// canonical key() and a lossless JSON round-trip mirroring
/// ScenarioSpec. The full store identity of a study is the scenario key
/// (model + training recipe) concatenated with this key.
///
/// n_steps is deliberately EXCLUDED from key(): a fleet snapshot is a
/// trajectory *prefix*, so a study extended to a larger horizon resumes
/// from the persisted checkpoint instead of restarting. checkpoint_every
/// must divide n_steps (window boundaries are part of the trajectory
/// identity; the fleet evaluator rejects specs that violate this).
struct LifetimeSpec {
  DriftConfig drift;        ///< OU term + static within-chip component
  DriftEvents events;       ///< event mix on top of the OU term
  RetunePolicy policy;      ///< deployment re-tuning schedule
  index_t gtm_cells = 1000; ///< full re-measurement GTM size
  index_t n_chips = 64;     ///< simulated fleet size
  index_t n_steps = 64;     ///< lifetime horizon (not part of the key)
  index_t checkpoint_every = 16;  ///< steps per trajectory checkpoint
  index_t batch_size = 50;  ///< test rows evaluated per lifetime step
  std::uint64_t seed = 7000;  ///< root of every per-chip stream

  /// Canonical, stable, space-free key fragment ("lt1_..."), excluding
  /// n_steps (see above) and every result-invariant execution knob.
  std::string key() const;

  /// Lossless JSON encoding (doubles at round-trip precision).
  std::string to_json() const;

  /// Parse a to_json() document. Returns false — leaving *out untouched
  /// — on malformed JSON, an unknown enum token or a schema mismatch;
  /// absent optional fields keep their defaults. `*error` (optional)
  /// names the offending field, e.g. "policy.budget: expected a number".
  static bool from_json(const std::string& text, LifetimeSpec* out,
                        std::string* error = nullptr);
};

/// One chip's persistent lifetime state — exactly what a fleet snapshot
/// stores per chip. Plain doubles (plus the retune counter): thanks to
/// the counter-based RNG streams no generator state needs persisting.
struct ChipLifetimeState {
  double ou = 0.0;       ///< OU component of eps_B
  double aging = 0.0;    ///< accumulated aging decay (monotone, <= 0)
  double disturb = 0.0;  ///< accumulated program-disturb jumps
  double phase = 0.0;    ///< thermal phase, drawn once at init
  double eps_hat = 0.0;  ///< last GTM measurement (the correction input)
  index_t retunes = 0;   ///< full re-measures since deployment
};

/// The composed per-chip lifetime process: init / advance / re-tune over
/// ChipLifetimeState. Stateless across calls (all coefficients come
/// from the spec; all randomness from the caller-provided counter-based
/// Rng), so one instance serves every chip from any thread.
class LifetimeModel {
 public:
  explicit LifetimeModel(const LifetimeSpec& spec);

  /// Deployment-time init: stationary OU draw, thermal phase, and the
  /// factory GTM calibration (eps_hat). Draws from init_rng(spec, chip).
  void init(ChipLifetimeState* st, Rng& rng) const;

  /// Advance the composed drift from step t-1 to t (t >= 1). Draw
  /// order (fixed; part of the schema): OU innovation, aging jitter,
  /// disturb coin, disturb magnitude. Draws from step_rng(spec, chip, t).
  void advance(ChipLifetimeState* st, Rng& rng) const;

  /// Apply the re-tuning policy at step t (t >= 1), after advance().
  /// Returns true when a full GTM re-measure ran (eps_hat refreshed,
  /// retune counter bumped). Consumes the same step stream as advance.
  bool maybe_retune(ChipLifetimeState* st, index_t t, Rng& rng) const;

  /// The composed eps_B(t) for a chip in state `st` at step `t`.
  double eps_b(const ChipLifetimeState& st, index_t t) const;

  /// Counter-based stream for a chip's init draws.
  static Rng init_rng(const LifetimeSpec& spec, index_t chip);

  /// Counter-based stream for a chip's step-t draws (t >= 1).
  static Rng step_rng(const LifetimeSpec& spec, index_t chip, index_t t);

 private:
  DriftConfig drift_;
  DriftEvents events_;
  RetunePolicy policy_;
  index_t gtm_cells_;
};

}  // namespace qavat
