#include "core/variability/variability.h"

#include "core/quant/qlayers.h"

namespace qavat {

void sample_variability(QuantLayerBase& layer, const VariabilityConfig& cfg,
                        Rng& rng) {
  NoiseState& ns = layer.noise_state();
  if (!cfg.enabled()) {
    ns.clear();
    return;
  }
  ns.model = cfg.model;
  ns.wmax = layer.dequant_weight_max();
  if (ns.eps.size() != layer.weight().value.size()) {
    ns.eps.resize(layer.weight().value.shape());
  }
  if (cfg.sigma_w > 0.0) {
    fill_normal(ns.eps, rng, 0.0, cfg.sigma_w);
  } else {
    ns.eps.zero();
  }
  ns.eps_b = cfg.sigma_b > 0.0 ? static_cast<float>(rng.normal(0.0, cfg.sigma_b))
                               : 0.0f;
  ns.active = true;
}

}  // namespace qavat
