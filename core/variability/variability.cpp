#include "core/variability/variability.h"

#include <stdexcept>
#include <string>

#include "core/quant/qlayers.h"

namespace qavat {

void sample_variability(QuantLayerBase& layer, const VariabilityConfig& cfg,
                        Rng& rng) {
  NoiseState& ns = layer.noise_state();
  if (!cfg.enabled()) {
    ns.clear();
    return;
  }
  ns.model = cfg.model;
  ns.wmax = layer.dequant_weight_max();
  ns.batch = 1;  // scalar sampling always collapses a batched state
  if (ns.eps.size() != layer.weight().value.size()) {
    ns.eps.resize(layer.weight().value.shape());
  }
  if (cfg.sigma_w > 0.0) {
    fill_normal(ns.eps, rng, 0.0, cfg.sigma_w);
  } else {
    ns.eps.zero();
  }
  ns.eps_b = cfg.sigma_b > 0.0 ? static_cast<float>(rng.normal(0.0, cfg.sigma_b))
                               : 0.0f;
  ns.active = true;
  ++ns.revision;
}

void ensure_noise_batch(QuantLayerBase& layer, index_t batch) {
  if (batch < 1) {
    throw std::invalid_argument("ensure_noise_batch: batch must be >= 1, got " +
                                std::to_string(batch));
  }
  NoiseState& ns = layer.noise_state();
  ns.batch = batch;
  const auto& wshape = layer.weight().value.shape();
  ns.eps.resize({batch, wshape[0], wshape[1]});
  ns.eps_b_v.assign(static_cast<std::size_t>(batch), 0.0f);
  ns.eps_hat_v.assign(static_cast<std::size_t>(batch), 0.0f);
  ns.ltm_err_v.assign(static_cast<std::size_t>(batch), 0.0f);
  ++ns.revision;
}

void sample_variability_slot_draws(QuantLayerBase& layer,
                                   const VariabilityConfig& cfg, Rng& rng,
                                   index_t slot) {
  NoiseState& ns = layer.noise_state();
  const index_t wsize = layer.weight().value.size();
  if (slot < 0 || slot >= ns.batch || ns.eps.size() != ns.batch * wsize) {
    throw std::invalid_argument(
        "sample_variability_slot: slot " + std::to_string(slot) +
        " outside prepared batch (call ensure_noise_batch first)");
  }
  float* eps = ns.eps.data() + slot * wsize;
  if (!cfg.enabled()) {
    for (index_t i = 0; i < wsize; ++i) eps[i] = 0.0f;
    ns.eps_b_v[static_cast<std::size_t>(slot)] = 0.0f;
    return;
  }
  // Same draw order as sample_variability: the within-chip field first,
  // then the layer-local between-chip value (overwritten by the evaluator
  // with the chip-shared draw, but consuming the same RNG stream).
  if (cfg.sigma_w > 0.0) {
    for (index_t i = 0; i < wsize; ++i) {
      eps[i] = static_cast<float>(rng.normal(0.0, cfg.sigma_w));
    }
  } else {
    for (index_t i = 0; i < wsize; ++i) eps[i] = 0.0f;
  }
  ns.eps_b_v[static_cast<std::size_t>(slot)] =
      cfg.sigma_b > 0.0 ? static_cast<float>(rng.normal(0.0, cfg.sigma_b)) : 0.0f;
}

void sample_variability_slot(QuantLayerBase& layer, const VariabilityConfig& cfg,
                             Rng& rng, index_t slot) {
  NoiseState& ns = layer.noise_state();
  sample_variability_slot_draws(layer, cfg, rng, slot);
  ++ns.revision;
  if (cfg.enabled()) {
    ns.model = cfg.model;
    // wmax is a property of the frozen weights, not of the chip: compute it
    // once per group (slot 0) instead of once per chip — the value is
    // bit-identical across slots, and dequant_weight_max runs a full
    // quantize-dequantize pass per call.
    if (slot == 0) ns.wmax = layer.dequant_weight_max();
    ns.active = true;
  }
}

}  // namespace qavat
