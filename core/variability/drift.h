// Temporal drift extension (paper footnote 2): the between-chip deviation
// eps_B becomes a time series eps_B(t) following a stationary
// Ornstein-Uhlenbeck process (temperature drift / aging) with correlation
// time tau, so a factory-time GTM measurement goes stale and the module
// must be re-measured at inference time.
#pragma once

#include "core/variability/variability.h"
#include "tensor/tensor.h"

namespace qavat {

struct DriftConfig {
  VarianceModel model = VarianceModel::kWeightProportional;
  double sigma_w = 0.25;  // static within-chip component
  double sigma_b = 0.35;  // stationary std of the drifting eps_B(t)
  double tau = 16.0;      // OU correlation time, in inference steps
};

/// Stationary OU process: x_{t+1} = a x_t + sigma sqrt(1-a^2) n_t with
/// a = exp(-1/tau); initialized from the stationary distribution.
class OuProcess {
 public:
  OuProcess(double tau, double stationary_sigma, Rng& rng);

  /// Coefficients-only construction: x starts at 0 and no RNG draw is
  /// consumed. For callers that keep the per-trace value externally
  /// (checkpointed fleet state) and inject it via set_value before each
  /// step — the lifetime layer's snapshot/resume protocol depends on the
  /// process state being exactly one double.
  OuProcess(double tau, double stationary_sigma);

  double value() const { return x_; }
  /// Inject the process value (e.g. restored from a snapshot).
  void set_value(double x) { x_ = x; }
  /// Advance one step and return the new value.
  double step(Rng& rng);

 private:
  double a_;
  double innovation_sigma_;
  double x_;
};

}  // namespace qavat
