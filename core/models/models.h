// Model zoo. The paper evaluates LeNet-5, VGG-11 and ResNet-18; this
// reproduction uses width/depth-reduced counterparts ("-s" suffix) sized
// for the synthetic datasets so the full Monte-Carlo protocol runs on a
// single CPU (DESIGN.md §2). Every conv/linear layer is a quant layer, so
// variability injection and self-tuning apply to the whole network.
#pragma once

#include <memory>
#include <vector>

#include "core/quant/qlayers.h"
#include "tensor/serialize.h"

namespace qavat {

enum class ModelKind { kLeNet5s, kVGG11s, kResNet18s };

const char* to_string(ModelKind kind);

struct ModelConfig {
  index_t a_bits = 4;
  index_t w_bits = 2;
  index_t in_channels = 1;
  index_t image_size = 12;
  index_t num_classes = 10;
  std::uint64_t init_seed = 77;
};

/// A feed-forward stack of layers (composites like residual blocks are
/// single entries) with hand-rolled backprop.
class Module {
 public:
  Module(ModelKind kind, ModelConfig cfg) : kind_(kind), cfg_(cfg) {}
  // Layers hold the address of workspace_ (set at add_layer time), so a
  // moved/copied Module would leave them pointing into the source object.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  Tensor forward(const Tensor& x);
  /// Backprop from dL/dlogits; accumulates parameter grads.
  void backward(const Tensor& grad_logits);

  std::vector<Param*> parameters();
  std::vector<QuantLayerBase*> quant_layers();
  index_t parameter_count();

  void set_training(bool training);
  void set_quant_enabled(bool on);
  void zero_grad();

  ModelKind kind() const { return kind_; }
  const ModelConfig& config() const { return cfg_; }

  void add_layer(std::unique_ptr<Layer> layer) {
    layer->set_workspace(&workspace_);
    layers_.push_back(std::move(layer));
  }

  /// Scratch arena shared by every layer of this model (DESIGN.md §8):
  /// sized once per (shape, batch) and reused across Monte-Carlo chips
  /// and training steps; forward/backward trim it to QAVAT_WORKSPACE_MB.
  Workspace& workspace() { return workspace_; }

 private:
  ModelKind kind_;
  ModelConfig cfg_;
  std::vector<std::unique_ptr<Layer>> layers_;
  Workspace workspace_;
};

std::unique_ptr<Module> make_model(ModelKind kind, const ModelConfig& cfg);

/// Deep copy: fresh make_model + parameter values, weight scales and
/// activation scales copied over. Used by the experiment model cache.
std::unique_ptr<Module> clone_model(Module& model);

/// All quant layers in forward order (free-function form used by benches).
std::vector<QuantLayerBase*> quant_layers(Module& m);

/// Serializable snapshot of everything the experiment cache persists:
/// parameter tensors, per-quant-layer weight/activation scales and quant
/// gates, plus the model identity (kind + config scalars) used to
/// validate a load. Pair with tensor/serialize.h to write it to disk.
StateDict module_state_dict(Module& m);

/// Restore a state dict into a model of the same kind and config.
/// Returns false — leaving the model's parameters unspecified — when the
/// identity scalars, parameter count or any tensor shape disagree (e.g. a
/// stale artifact after a model-zoo change); callers fall back to
/// retraining. Leaves the model in eval mode on success.
bool load_module_state(Module& m, const StateDict& sd);

}  // namespace qavat
