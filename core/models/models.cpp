#include "core/models/models.h"

#include <cassert>

#include "tensor/conv_ops.h"
#include "tensor/parallel_for.h"

namespace qavat {

const char* to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLeNet5s: return "lenet5s";
    case ModelKind::kVGG11s: return "vgg11s";
    case ModelKind::kResNet18s: return "resnet18s";
  }
  return "?";
}

namespace {

class ReluLayer : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    Tensor y = x;
    relu_inplace(y, training_ ? &mask_ : nullptr);
    return y;
  }
  Tensor backward(const Tensor& gy) override {
    Tensor gx;
    gx.resize_for_overwrite(gy.shape());
    const float* g = gy.data();
    const float* m = mask_.data();
    float* p = gx.data();
    parallel_for_elems(gy.size(), [p, g, m](index_t i0, index_t i1) {
      for (index_t i = i0; i < i1; ++i) p[i] = g[i] * m[i];
    });
    return gx;
  }

 private:
  Tensor mask_;
};

// Thin adapter over the threaded pooling kernels in tensor/conv_ops.h.
class MaxPool2dLayer : public Layer {
 public:
  explicit MaxPool2dLayer(index_t k) : k_(k) {}

  Tensor forward(const Tensor& x) override {
    in_shape_ = x.shape();
    Tensor y;
    maxpool2d(x, k_, y, arg_);
    return y;
  }

  Tensor backward(const Tensor& gy) override {
    Tensor gx;
    maxpool2d_backward(gy, arg_, in_shape_, gx);
    return gx;
  }

 private:
  index_t k_;
  std::vector<index_t> in_shape_;
  std::vector<index_t> arg_;
};

class FlattenLayer : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    in_shape_ = x.shape();
    Tensor y = x;
    y.reshape({x.dim(0), x.size() / x.dim(0)});
    return y;
  }
  Tensor backward(const Tensor& gy) override {
    Tensor gx = gy;
    gx.reshape(in_shape_);
    return gx;
  }

 private:
  std::vector<index_t> in_shape_;
};

/// conv1 -> relu -> conv2, plus identity (or 1x1 projection) skip, final
/// relu. The composite owns its sublayers and wires backward by hand.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(index_t cin, index_t cout, index_t a_bits, index_t w_bits,
                Rng& rng)
      : conv1_(cin, cout, 3, 1, 1, a_bits, w_bits, rng),
        conv2_(cout, cout, 3, 1, 1, a_bits, w_bits, rng) {
    if (cin != cout) {
      proj_ = std::make_unique<QuantConv2d>(cin, cout, 1, 1, 0, a_bits, w_bits,
                                            rng);
    }
  }

  Tensor forward(const Tensor& x) override {
    Tensor h = conv1_.forward(x);
    relu_inplace(h, training_ ? &mask1_ : nullptr);
    Tensor y = conv2_.forward(h);
    Tensor s = proj_ ? proj_->forward(x) : x;
    float* py = y.data();
    const float* ps = s.data();
    for (index_t i = 0; i < y.size(); ++i) py[i] += ps[i];
    relu_inplace(y, training_ ? &mask2_ : nullptr);
    return y;
  }

  Tensor backward(const Tensor& gy) override {
    Tensor g;
    g.resize_for_overwrite(gy.shape());
    {
      const float* src = gy.data();
      const float* m = mask2_.data();
      float* dst = g.data();
      for (index_t i = 0; i < gy.size(); ++i) dst[i] = src[i] * m[i];
    }
    Tensor gh = conv2_.backward(g);
    {
      float* p = gh.data();
      const float* m = mask1_.data();
      for (index_t i = 0; i < gh.size(); ++i) p[i] *= m[i];
    }
    Tensor gx = conv1_.backward(gh);
    Tensor gskip = proj_ ? proj_->backward(g) : g;
    float* p = gx.data();
    const float* ps = gskip.data();
    for (index_t i = 0; i < gx.size(); ++i) p[i] += ps[i];
    return gx;
  }

  void collect_params(std::vector<Param*>& out) override {
    conv1_.collect_params(out);
    conv2_.collect_params(out);
    if (proj_) proj_->collect_params(out);
  }
  void collect_quant(std::vector<QuantLayerBase*>& out) override {
    conv1_.collect_quant(out);
    conv2_.collect_quant(out);
    if (proj_) proj_->collect_quant(out);
  }
  void set_training(bool training) override {
    Layer::set_training(training);
    conv1_.set_training(training);
    conv2_.set_training(training);
    if (proj_) proj_->set_training(training);
  }
  void set_workspace(Workspace* ws) override {
    conv1_.set_workspace(ws);
    conv2_.set_workspace(ws);
    if (proj_) proj_->set_workspace(ws);
  }

 private:
  QuantConv2d conv1_, conv2_;
  std::unique_ptr<QuantConv2d> proj_;
  Tensor mask1_, mask2_;
};

}  // namespace

Tensor Module::forward(const Tensor& x) {
  // This thread is the model's single workspace driver for the pass;
  // a concurrent pass on the same model aborts loudly (pipelined
  // sessions run concurrent passes on DIFFERENT models only).
  Workspace::DriverScope driver(workspace_);
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  // Scratch slots are dead between top-level passes; enforce the
  // QAVAT_WORKSPACE_MB retention cap here (Workspace lifetime contract).
  workspace_.trim(Workspace::cap_bytes_from_env());
  return h;
}

void Module::backward(const Tensor& grad_logits) {
  Workspace::DriverScope driver(workspace_);
  Tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  workspace_.trim(Workspace::cap_bytes_from_env());
}

std::vector<Param*> Module::parameters() {
  std::vector<Param*> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

std::vector<QuantLayerBase*> Module::quant_layers() {
  std::vector<QuantLayerBase*> out;
  for (auto& layer : layers_) layer->collect_quant(out);
  return out;
}

index_t Module::parameter_count() {
  index_t n = 0;
  for (Param* p : parameters()) n += p->value.size();
  return n;
}

void Module::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

void Module::set_quant_enabled(bool on) {
  for (QuantLayerBase* q : quant_layers()) q->set_quant_enabled(on);
}

void Module::zero_grad() {
  for (Param* p : parameters()) {
    p->ensure_grad();
    p->grad.zero();
  }
}

std::unique_ptr<Module> make_model(ModelKind kind, const ModelConfig& cfg) {
  auto m = std::make_unique<Module>(kind, cfg);
  Rng rng(cfg.init_seed, static_cast<std::uint64_t>(kind));
  const index_t a = cfg.a_bits, w = cfg.w_bits;
  const index_t s = cfg.image_size;
  switch (kind) {
    case ModelKind::kLeNet5s: {
      // 12x12 -> conv(8) -> pool 6x6 -> conv(16) -> pool 3x3 -> 84 -> nc
      m->add_layer(std::make_unique<QuantConv2d>(cfg.in_channels, 8, 3, 1, 1, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<MaxPool2dLayer>(2));
      m->add_layer(std::make_unique<QuantConv2d>(8, 16, 3, 1, 1, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<MaxPool2dLayer>(2));
      m->add_layer(std::make_unique<FlattenLayer>());
      const index_t flat = 16 * (s / 4) * (s / 4);
      m->add_layer(std::make_unique<QuantLinear>(flat, 84, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<QuantLinear>(84, cfg.num_classes, a, w, rng));
      break;
    }
    case ModelKind::kVGG11s: {
      // 16x16 -> [conv16, pool] -> [conv32, pool] -> [conv32, pool] -> fc
      m->add_layer(std::make_unique<QuantConv2d>(cfg.in_channels, 16, 3, 1, 1, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<MaxPool2dLayer>(2));
      m->add_layer(std::make_unique<QuantConv2d>(16, 32, 3, 1, 1, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<MaxPool2dLayer>(2));
      m->add_layer(std::make_unique<QuantConv2d>(32, 32, 3, 1, 1, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<MaxPool2dLayer>(2));
      m->add_layer(std::make_unique<FlattenLayer>());
      const index_t flat = 32 * (s / 8) * (s / 8);
      m->add_layer(std::make_unique<QuantLinear>(flat, 64, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<QuantLinear>(64, cfg.num_classes, a, w, rng));
      break;
    }
    case ModelKind::kResNet18s: {
      // 16x16 -> conv16 -> block(16) -> pool -> block(16->32) -> pool -> fc
      m->add_layer(std::make_unique<QuantConv2d>(cfg.in_channels, 16, 3, 1, 1, a, w, rng));
      m->add_layer(std::make_unique<ReluLayer>());
      m->add_layer(std::make_unique<ResidualBlock>(16, 16, a, w, rng));
      m->add_layer(std::make_unique<MaxPool2dLayer>(2));
      m->add_layer(std::make_unique<ResidualBlock>(16, 32, a, w, rng));
      m->add_layer(std::make_unique<MaxPool2dLayer>(2));
      m->add_layer(std::make_unique<FlattenLayer>());
      const index_t flat = 32 * (s / 4) * (s / 4);
      m->add_layer(std::make_unique<QuantLinear>(flat, cfg.num_classes, a, w, rng));
      break;
    }
  }
  return m;
}

std::unique_ptr<Module> clone_model(Module& model) {
  auto copy = make_model(model.kind(), model.config());
  auto src_params = model.parameters();
  auto dst_params = copy->parameters();
  assert(src_params.size() == dst_params.size());
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    assert(dst_params[i]->value.size() == src_params[i]->value.size());
    dst_params[i]->value = src_params[i]->value;
  }
  auto src_q = model.quant_layers();
  auto dst_q = copy->quant_layers();
  for (std::size_t i = 0; i < src_q.size(); ++i) {
    dst_q[i]->set_weight_scale(src_q[i]->weight_scale());
    dst_q[i]->act_quantizer().set_scale(src_q[i]->act_quantizer().scale());
    dst_q[i]->set_quant_enabled(src_q[i]->quant_enabled());
  }
  // Clones start in eval mode so a forward is bit-identical to the source
  // (training mode would EMA-update the activation scales).
  copy->set_training(false);
  return copy;
}

std::vector<QuantLayerBase*> quant_layers(Module& m) { return m.quant_layers(); }

StateDict module_state_dict(Module& m) {
  StateDict sd;
  const ModelConfig& c = m.config();
  sd.add_scalar("kind", static_cast<double>(static_cast<int>(m.kind())));
  sd.add_scalar("a_bits", static_cast<double>(c.a_bits));
  sd.add_scalar("w_bits", static_cast<double>(c.w_bits));
  sd.add_scalar("in_channels", static_cast<double>(c.in_channels));
  sd.add_scalar("image_size", static_cast<double>(c.image_size));
  sd.add_scalar("num_classes", static_cast<double>(c.num_classes));
  sd.add_scalar("init_seed", static_cast<double>(c.init_seed));
  const auto params = m.parameters();
  sd.add_scalar("n_params", static_cast<double>(params.size()));
  for (std::size_t i = 0; i < params.size(); ++i) {
    sd.add_tensor("param." + std::to_string(i), params[i]->value);
  }
  const auto qs = m.quant_layers();
  sd.add_scalar("n_qlayers", static_cast<double>(qs.size()));
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const std::string p = "q" + std::to_string(i);
    sd.add_scalar(p + ".w_scale", static_cast<double>(qs[i]->weight_scale()));
    sd.add_scalar(p + ".act_scale",
                  static_cast<double>(qs[i]->act_quantizer().scale()));
    sd.add_scalar(p + ".quant_on", qs[i]->quant_enabled() ? 1.0 : 0.0);
  }
  return sd;
}

bool load_module_state(Module& m, const StateDict& sd) {
  const auto scalar_is = [&sd](const char* name, double want) {
    const double* v = sd.find_scalar(name);
    return v != nullptr && *v == want;
  };
  const ModelConfig& c = m.config();
  if (!scalar_is("kind", static_cast<double>(static_cast<int>(m.kind()))) ||
      !scalar_is("a_bits", static_cast<double>(c.a_bits)) ||
      !scalar_is("w_bits", static_cast<double>(c.w_bits)) ||
      !scalar_is("in_channels", static_cast<double>(c.in_channels)) ||
      !scalar_is("image_size", static_cast<double>(c.image_size)) ||
      !scalar_is("num_classes", static_cast<double>(c.num_classes)) ||
      !scalar_is("init_seed", static_cast<double>(c.init_seed))) {
    return false;
  }
  const auto params = m.parameters();
  const auto qs = m.quant_layers();
  if (!scalar_is("n_params", static_cast<double>(params.size())) ||
      !scalar_is("n_qlayers", static_cast<double>(qs.size()))) {
    return false;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor* t = sd.find_tensor("param." + std::to_string(i));
    if (t == nullptr || t->shape() != params[i]->value.shape()) return false;
  }
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const std::string p = "q" + std::to_string(i);
    if (sd.find_scalar(p + ".w_scale") == nullptr ||
        sd.find_scalar(p + ".act_scale") == nullptr ||
        sd.find_scalar(p + ".quant_on") == nullptr) {
      return false;
    }
  }
  // All shapes validated; now mutate.
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = *sd.find_tensor("param." + std::to_string(i));
  }
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const std::string p = "q" + std::to_string(i);
    qs[i]->set_weight_scale(static_cast<float>(*sd.find_scalar(p + ".w_scale")));
    qs[i]->act_quantizer().set_scale(
        static_cast<float>(*sd.find_scalar(p + ".act_scale")));
    qs[i]->set_quant_enabled(*sd.find_scalar(p + ".quant_on") != 0.0);
  }
  m.set_training(false);
  return true;
}

}  // namespace qavat
