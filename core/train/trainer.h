// Training algorithms (paper Algorithm 1). QAT = quantization-aware
// training with STE; QAVAT additionally draws `n_variation_samples`
// variability realizations per batch, runs a noisy forward/backward for
// each, and averages the gradients — with the reparameterized estimator
// (Eq. 2) propagating through multiplicative noise by default.
#pragma once

#include <vector>

#include "core/models/models.h"
#include "core/variability/variability.h"
#include "data/synth.h"

namespace qavat {

enum class TrainAlgo { kQAT, kQAVAT };

inline const char* to_string(TrainAlgo a) {
  return a == TrainAlgo::kQAT ? "QAT" : "QAVAT";
}

/// How often the MMSE weight-grid scales are recomputed (paper: once at
/// init, "more frequent updates only improve results marginally").
enum class ScaleUpdatePolicy { kInitOnly, kPerEpoch };

struct TrainConfig {
  index_t epochs = 5;
  double lr = 3e-3;  // Adam step size
  index_t batch_size = 32;
  VariabilityConfig train_noise;      // used by kQAVAT only
  index_t n_variation_samples = 1;    // Algorithm 1's n
  bool reparam = true;                // Eq. 2 estimator (vs biased Eq. 1)
  ScaleUpdatePolicy scale_update = ScaleUpdatePolicy::kPerEpoch;
  bool verbose = false;
  std::uint64_t seed = 1;
};

struct TrainResult {
  std::vector<double> epoch_train_acc;  // accuracy under injected noise
  std::vector<double> epoch_loss;
};

/// Train in place. Initializes MMSE weight scales (if unset) and
/// calibrates activation scales on the fly; leaves the model in eval mode.
TrainResult train(Module& model, const Dataset& data, TrainAlgo algo,
                  const TrainConfig& cfg);

/// Noise-free accuracy on up to max_samples images (-1 = all). Declared at
/// this layer because training reports test accuracy; the Monte-Carlo
/// deployment evaluators live in eval/evaluator.h.
double evaluate_clean(Module& model, const Dataset& test,
                      index_t max_samples = -1);

}  // namespace qavat
