#include "core/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "tensor/parallel_for.h"

namespace qavat {

namespace {

class Adam {
 public:
  Adam(std::vector<Param*> params, double lr) : params_(std::move(params)), lr_(lr) {
    for (Param* p : params_) {
      if (p->adam_m.size() != p->value.size()) {
        p->adam_m.resize(p->value.shape());
        p->adam_v.resize(p->value.shape());
      }
    }
  }

  void step() {
    ++t_;
    const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
    const double corr =
        lr_ * std::sqrt(1.0 - std::pow(b2, t_)) / (1.0 - std::pow(b1, t_));
    for (Param* p : params_) {
      float* v = p->value.data();
      const float* g = p->grad.data();
      float* m1 = p->adam_m.data();
      float* m2 = p->adam_v.data();
      // Pure elementwise update: any thread partition is bit-identical.
      parallel_for_elems(p->value.size(), [=](index_t i0, index_t i1) {
        for (index_t i = i0; i < i1; ++i) {
          m1[i] = static_cast<float>(b1 * m1[i] + (1.0 - b1) * g[i]);
          m2[i] = static_cast<float>(b2 * m2[i] + (1.0 - b2) * g[i] * g[i]);
          v[i] -= static_cast<float>(
              corr * m1[i] / (std::sqrt(static_cast<double>(m2[i])) + eps));
        }
      });
    }
  }

 private:
  std::vector<Param*> params_;
  double lr_;
  int t_ = 0;
};

void draw_chip_noise(const std::vector<QuantLayerBase*>& qlayers,
                     const VariabilityConfig& noise, Rng& rng) {
  // One correlated draw per simulated chip, shared across layers; iid
  // within-chip draws per layer.
  const float eps_b =
      noise.sigma_b > 0.0 ? static_cast<float>(rng.normal(0.0, noise.sigma_b))
                          : 0.0f;
  for (QuantLayerBase* q : qlayers) {
    sample_variability(*q, noise, rng);
    q->noise_state().eps_b = eps_b;
  }
}

void clear_noise(const std::vector<QuantLayerBase*>& qlayers) {
  for (QuantLayerBase* q : qlayers) q->noise_state().clear();
}

}  // namespace

double evaluate_clean(Module& model, const Dataset& test, index_t max_samples) {
  model.set_training(false);
  for (QuantLayerBase* q : model.quant_layers()) q->noise_state().clear();
  const index_t n =
      max_samples < 0 ? test.size() : std::min(test.size(), max_samples);
  if (n <= 0) return 0.0;
  index_t correct = 0;
  const index_t batch = 64;
  for (index_t start = 0; start < n; start += batch) {
    const index_t end = std::min(n, start + batch);
    std::vector<index_t> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    Tensor logits = model.forward(test.gather_images(idx));
    index_t hits = 0;
    softmax_xent(logits, test.gather_labels(idx), nullptr, &hits);
    correct += hits;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

TrainResult train(Module& model, const Dataset& data, TrainAlgo algo,
                  const TrainConfig& cfg) {
  TrainResult result;
  const index_t n = data.size();
  if (n == 0 || cfg.epochs <= 0) return result;

  model.set_training(true);
  auto qlayers = model.quant_layers();
  for (QuantLayerBase* q : qlayers) {
    q->set_reparam(cfg.reparam);
    if (q->quant_enabled() && q->weight_scale() <= 0.0f) q->refresh_weight_scale();
  }

  const bool noisy = algo == TrainAlgo::kQAVAT && cfg.train_noise.enabled();
  const index_t n_samples = noisy ? std::max<index_t>(1, cfg.n_variation_samples) : 1;
  Adam opt(model.parameters(), cfg.lr);
  Rng rng(cfg.seed, 17);

  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  for (index_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (epoch > 0 && cfg.scale_update == ScaleUpdatePolicy::kPerEpoch) {
      for (QuantLayerBase* q : qlayers) {
        if (q->quant_enabled()) q->refresh_weight_scale();
      }
    }
    // Fisher-Yates shuffle with our deterministic RNG.
    for (index_t i = n - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(rng.below(i + 1))]);
    }
    double epoch_loss = 0.0;
    index_t correct = 0, seen = 0, batches = 0;
    for (index_t start = 0; start < n; start += cfg.batch_size) {
      const index_t end = std::min(n, start + cfg.batch_size);
      std::vector<index_t> idx(order.begin() + start, order.begin() + end);
      Tensor x = data.gather_images(idx);
      std::vector<index_t> y = data.gather_labels(idx);

      model.zero_grad();
      double batch_loss = 0.0;
      for (index_t s = 0; s < n_samples; ++s) {
        if (noisy) draw_chip_noise(qlayers, cfg.train_noise, rng);
        Tensor logits = model.forward(x);
        Tensor grad;
        index_t hits = 0;
        batch_loss += softmax_xent(logits, y, &grad, &hits);
        if (s == 0) {
          correct += hits;
          seen += end - start;
        }
        if (n_samples > 1) {
          // Average Algorithm 1's n variation samples via the shared
          // vectorized scale kernel (tensor/ops.h).
          scale(grad, 1.0f / static_cast<float>(n_samples));
        }
        model.backward(grad);
        if (noisy) clear_noise(qlayers);
      }
      opt.step();
      epoch_loss += batch_loss / static_cast<double>(n_samples);
      ++batches;
    }
    result.epoch_loss.push_back(epoch_loss / static_cast<double>(batches));
    result.epoch_train_acc.push_back(static_cast<double>(correct) /
                                     static_cast<double>(seen));
    if (cfg.verbose) {
      std::printf("  [%s] epoch %lld/%lld  loss %.4f  acc %.3f\n",
                  to_string(algo), static_cast<long long>(epoch + 1),
                  static_cast<long long>(cfg.epochs), result.epoch_loss.back(),
                  result.epoch_train_acc.back());
      std::fflush(stdout);
    }
  }
  model.set_training(false);
  return result;
}

}  // namespace qavat
