// Inference-time self-tuning (paper §III). Two on-chip modules measure
// the chip's correlated deviation eps_B and cancel it:
//  * GTM (global tuning module) — a spare array of `gtm_cells` devices
//    programmed to a known value; reading them back estimates eps_B with
//    error ~ sigma_W / sqrt(gtm_cells).
//  * LTM (local tuning module) — `ltm_columns` extra crossbar columns per
//    array that measure each input's activation sum, needed for the
//    additive (layer-fixed) correction.
// The proper correction depends on the variance model: GTM-only output
// rescaling for weight-proportional, GTM+LTM offset subtraction for
// layer-fixed. Applying the other model's correction is the paper's
// "wrong self-tuning" baseline.
#pragma once

#include "core/quant/qlayers.h"
#include "core/variability/variability.h"

namespace qavat {

enum class SelfTuneMode { kNone, kGtm, kGtmLtm };

struct SelfTuneConfig {
  SelfTuneMode mode = SelfTuneMode::kGtm;
  index_t gtm_cells = 1000;
  index_t ltm_columns = 1;
};

inline SelfTuneMode proper_mode(VarianceModel m) {
  return m == VarianceModel::kWeightProportional ? SelfTuneMode::kGtm
                                                 : SelfTuneMode::kGtmLtm;
}

inline SelfTuneMode wrong_mode(VarianceModel m) {
  return m == VarianceModel::kWeightProportional ? SelfTuneMode::kGtmLtm
                                                 : SelfTuneMode::kGtm;
}

inline CorrectionKind correction_for(SelfTuneMode mode) {
  switch (mode) {
    case SelfTuneMode::kNone: return CorrectionKind::kNone;
    case SelfTuneMode::kGtm: return CorrectionKind::kScale;
    case SelfTuneMode::kGtmLtm: return CorrectionKind::kOffset;
  }
  return CorrectionKind::kNone;
}

/// Simulated GTM readout: the true eps_b plus the averaged within-chip
/// measurement error of `gtm_cells` devices.
inline double measure_eps_b(double eps_b, double sigma_w, index_t gtm_cells,
                            Rng& rng) {
  if (gtm_cells <= 0) return eps_b;
  return eps_b + rng.normal(0.0, sigma_w / std::sqrt(static_cast<double>(
                                               gtm_cells)));
}

/// Simulated relative error of the LTM activation-sum readout, averaged
/// over `ltm_columns` redundant columns.
inline double ltm_readout_error(double sigma_w, index_t ltm_columns, Rng& rng) {
  if (ltm_columns <= 0) return 0.0;
  return rng.normal(0.0, sigma_w / std::sqrt(static_cast<double>(ltm_columns)));
}

}  // namespace qavat
