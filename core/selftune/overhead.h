// Overhead accounting for the self-tuning modules (paper §III.B, §IV.B):
// LTM area relative to a 512x512 crossbar array, GTM area relative to a
// 64-array chip, and the inference-time tuning FLOPs relative to the base
// model's MACs.
#pragma once

#include "core/models/models.h"

namespace qavat {

struct OverheadReport {
  double base_macs = 0.0;    // base model MACs per sample
  double tuning_macs = 0.0;  // LTM readout + correction ops per sample
  double area_ltm_fraction = 0.0;  // ltm_columns / array columns
  double area_gtm_fraction = 0.0;  // gtm_cells / chip device count
  double tuning_flops_ratio() const {
    return base_macs > 0.0 ? tuning_macs / base_macs : 0.0;
  }
};

/// Trace one forward pass of `sample` (batch of 1+) through the model and
/// account the self-tuning costs for the given module sizes.
OverheadReport selftune_overhead(Module& model, const Tensor& sample,
                                 index_t gtm_cells, index_t ltm_columns);

}  // namespace qavat
