#include "core/selftune/overhead.h"

namespace qavat {

namespace {
// Reference crossbar geometry for the area accounting.
constexpr double kArrayRows = 512.0;
constexpr double kArrayCols = 512.0;
constexpr double kArraysPerChip = 64.0;
// The GTM is read once per calibration, not per inference; amortize it
// over a nominal calibration window when charging FLOPs.
constexpr double kGtmAmortizationWindow = 1000.0;
}  // namespace

OverheadReport selftune_overhead(Module& model, const Tensor& sample,
                                 index_t gtm_cells, index_t ltm_columns) {
  OverheadReport report;
  model.forward(sample);
  for (QuantLayerBase* q : model.quant_layers()) {
    report.base_macs += q->last_macs();
    // Per output position: ltm_columns redundant fan_in-sized column reads
    // plus one correction op per output channel.
    report.tuning_macs +=
        q->last_positions() * (static_cast<double>(ltm_columns * q->fan_in()) +
                               static_cast<double>(q->fan_out()));
  }
  report.tuning_macs += static_cast<double>(gtm_cells) / kGtmAmortizationWindow;
  report.area_ltm_fraction = static_cast<double>(ltm_columns) / kArrayCols;
  report.area_gtm_fraction = static_cast<double>(gtm_cells) /
                             (kArraysPerChip * kArrayRows * kArrayCols);
  return report;
}

}  // namespace qavat
