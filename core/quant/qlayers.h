// Quantized layers with hand-rolled backprop. The layer graph is small
// enough that each layer caches its forward intermediates and implements
// backward() directly; no general autograd.
//
// A quant layer's forward implements the full PIM abstraction pipeline:
//   x -> act-quantize (DAC precision) -> analog MVM with the *effective*
//   weights (quantized grid + injected variability) -> self-tuning
//   correction (when active) -> + digital bias.
// Training backprop uses STE masks through both quantizers, and the
// reparameterized gradient (paper Eq. 2) through multiplicative noise.
#pragma once

#include <memory>
#include <vector>

#include "core/quant/quantizer.h"
#include "core/variability/variability.h"
#include "tensor/conv_ops.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace qavat {

/// Trainable parameter with gradient and Adam state.
struct Param {
  Tensor value;
  Tensor grad;
  Tensor adam_m;
  Tensor adam_v;

  void ensure_grad() {
    if (grad.size() != value.size()) grad.resize(value.shape());
  }
};

/// Correction applied by the self-tuning modules at inference time.
/// kScale divides the analog output by (1 + eps_hat) — the GTM-only
/// correction proper for weight-proportional variance. kOffset subtracts
/// eps_hat * wmax * sum(x) measured through LTM columns — proper for
/// layer-fixed variance.
enum class CorrectionKind { kNone, kScale, kOffset };

/// Per-layer variability realization, set by sample_variability() / the
/// evaluator before a forward pass and cleared afterwards.
///
/// The state optionally carries a *noise-batch axis* of `batch` simulated
/// chips (ensure_noise_batch / sample_variability_slot in
/// core/variability/variability.h): `eps` then holds `batch` stacked
/// per-weight draws and the *_v vectors hold one chip-level value per
/// slot. A forward pass with batch > 1 treats its input rows as `batch`
/// equal chip-major groups and multiplies each group by that chip's
/// effective weights — the batched Monte-Carlo evaluation path. With
/// batch == 1 the scalar fields drive the (unchanged) single-chip path.
struct NoiseState {
  bool active = false;
  VarianceModel model = VarianceModel::kWeightProportional;
  Tensor eps;           // per-weight within-chip draw(s), already scaled by
                        // sigma_w; {batch, fan_out, fan_in} when batch > 1
  index_t batch = 1;    // noise-batch axis: simulated chips per forward
  float eps_b = 0.0f;   // chip-level correlated deviation
  float wmax = 0.0f;    // max |dequantized weight| at sample time (layer-fixed unit)
  CorrectionKind correction = CorrectionKind::kNone;
  float eps_hat = 0.0f;  // GTM estimate of eps_b (incl. measurement error)
  float ltm_err = 0.0f;  // relative error of the LTM activation-sum readout
  // Per-slot chip-level values, used instead of the scalars when batch > 1.
  std::vector<float> eps_b_v;
  std::vector<float> eps_hat_v;
  std::vector<float> ltm_err_v;
  // Bumped on every mutation (sampling, resizing, clearing); lets the
  // batched forward reuse its stacked effective weights across the test
  // batches of one chip group instead of rebuilding them per batch.
  std::uint64_t revision = 0;

  void clear() {
    active = false;
    correction = CorrectionKind::kNone;
    eps_b = eps_hat = ltm_err = 0.0f;
    batch = 1;
    eps_b_v.clear();
    eps_hat_v.clear();
    ltm_err_v.clear();
    ++revision;
  }
};

class QuantLayerBase;

/// Abstract analog-MVM backend a quant layer's inference forward can be
/// routed through instead of the weight-domain effective-weight GEMM —
/// the seam the circuit-level evaluation path (pim/tiling.h) plugs into.
/// `x2d` is the layer's quantized 2-D activations {rows, fan_in};
/// implementations write {rows, fan_out} into `y` (resizing it without
/// zero-fill) and must be deterministic and bit-identical for any
/// QAVAT_THREADS. Inference-only: installing a backend makes backward()
/// throw, and noise-batched forwards throw unless the backend overrides
/// mvm_grouped_into (the int8 backend does; the circuit backend stays
/// single-chip). Not required to be thread-safe across concurrent calls;
/// the evaluator drives it from one thread.
class AnalogBackend {
 public:
  virtual ~AnalogBackend() = default;
  virtual void mvm_into(const Tensor& x2d, Tensor& y) = 0;
  /// Noise-batched MVM over `groups` chip-major groups, mirroring the
  /// grouped weight-domain GEMMs: with `shared` false, `x2d` is
  /// {groups * rows, fan_in} and group g multiplies against chip slot g's
  /// effective weights; with `shared` true, `x2d` is one {rows, fan_in}
  /// block broadcast to every group. `y` becomes {groups * rows, fan_out},
  /// chip-major, bit-identical to `groups` single-chip calls. The default
  /// delegates groups == 1 to mvm_into and throws std::logic_error
  /// otherwise (single-chip backends need no override).
  virtual void mvm_grouped_into(const Tensor& x2d, index_t groups, bool shared,
                                Tensor& y);
  /// Return true when this backend derives the activation codes itself
  /// from RAW (pre-quantizer) activations — clamp(nearbyint(x / scale))
  /// yields the same integer code whether x is raw or already on the
  /// activation grid, so the layer skips its float quantize-dequantize
  /// pass entirely (one full tensor pass saved per forward, bit-identical
  /// outputs). Backends that consume the activation VALUES (the circuit
  /// simulator's DAC path) keep the default false and receive grid floats.
  virtual bool wants_raw_activations() const { return false; }
};

/// Abstract layer: forward caches what backward needs; backward returns
/// grad wrt input and accumulates parameter grads.
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual void collect_params(std::vector<Param*>& out) {}
  virtual void collect_quant(std::vector<QuantLayerBase*>& out) {}
  virtual void set_training(bool training) { training_ = training; }
  /// Adopt a shared scratch arena (Module wires its own into every layer
  /// at add_layer time); layers without scratch needs ignore it.
  virtual void set_workspace(Workspace* ws) {}
  bool training() const { return training_; }

 protected:
  bool training_ = true;
};

class QuantLayerBase : public Layer {
 public:
  QuantLayerBase(index_t fan_in, index_t fan_out, index_t a_bits, index_t w_bits);

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }

  index_t fan_in() const { return fan_in_; }
  index_t fan_out() const { return fan_out_; }
  index_t weight_bits() const { return w_bits_; }
  index_t act_bits() const { return a_bits_; }

  float weight_scale() const { return w_scale_; }
  void set_weight_scale(float s) { w_scale_ = s; }
  /// Recompute the MMSE grid scale from the current float weights.
  void refresh_weight_scale();

  ActQuantizer& act_quantizer() { return act_quant_; }
  NoiseState& noise_state() { return noise_; }

  void set_quant_enabled(bool on) { quant_enabled_ = on; }
  bool quant_enabled() const { return quant_enabled_; }
  void set_reparam(bool on) { reparam_ = on; }

  /// MACs of the last forward pass, per sample.
  double last_macs() const { return last_macs_; }
  /// Output positions per sample of the last forward (1 for linear,
  /// OH*OW for conv) — used by the self-tune overhead accounting.
  double last_positions() const { return last_positions_; }

  void collect_params(std::vector<Param*>& out) override {
    out.push_back(&weight_);
    out.push_back(&bias_);
  }
  void collect_quant(std::vector<QuantLayerBase*>& out) override {
    out.push_back(this);
  }

  /// Max |dequantized weight| under the current scale (the layer-fixed
  /// variability unit).
  float dequant_weight_max() const;

  /// Active noise-batch width: chips simulated per forward (1 = scalar
  /// path). Inputs to forward() must carry rows_per_chip * noise_batch()
  /// rows, grouped chip-major.
  index_t noise_batch() const { return noise_.active ? noise_.batch : 1; }

  void set_workspace(Workspace* ws) override { ws_ = ws ? ws : &local_ws_; }

  /// Route this layer's analog MVM through `backend` (nullptr restores
  /// the weight-domain path). Inference-only: while a backend is
  /// installed, backward() throws std::logic_error, and noise-batched
  /// (batch > 1) forwards are routed to mvm_grouped_into — which itself
  /// throws unless the backend supports grouping. The backend must
  /// outlive the installation; the evaluator uninstalls before backends
  /// are torn down.
  void set_analog_backend(AnalogBackend* backend) { analog_backend_ = backend; }
  AnalogBackend* analog_backend() const { return analog_backend_; }

  /// The effective weights an installed AnalogBackend should program:
  /// runs compute_effective_weight() and exposes the result —
  /// {noise_batch() * fan_out, fan_in} stacked chip blocks when noise is
  /// batched (NoiseState::revision-cached), {fan_out, fan_in} otherwise.
  /// The reference is invalidated by the next forward/backward or noise
  /// mutation; backends re-read it per refresh (keyed on the revision)
  /// rather than holding it. Inference-only: throws std::logic_error in
  /// training mode.
  const Tensor& backend_effective_weight();

  /// Weights as they would be programmed on an analog array: the
  /// quantize-dequantize grid under the current scale when quantization
  /// is enabled and calibrated, the raw float weights otherwise.
  /// {fan_out, fan_in}; returns a fresh tensor (call once per
  /// deployment, not per forward).
  Tensor programmed_weight() const;

 protected:
  /// Scratch-slot ids within the layer's workspace key space (the key is
  /// (this, slot), so layers never collide).
  enum WsSlot {
    kWsXq = 0,      // quantized input (training conv path)
    kWsY2d = 1,     // 2-D analog output before the NCHW permute
    kWsGy2d = 2,    // permuted upstream gradient
    kWsDw = 3,      // grad wrt effective weight
    kWsDcols = 4,   // grad wrt im2col matrix
    kWsBlock = 5,   // first chip block of a shared batched input
  };
  /// Effective weight for the analog MVM: quantize-dequantize (when
  /// enabled) then apply the active noise realization. With a noise batch
  /// of B, builds B stacked effective-weight blocks {B*fan_out, fan_in}
  /// from one shared quantize-dequantize pass (inference only). Also
  /// caches the weight STE mask for backward in training mode.
  void compute_effective_weight();
  /// Quantize input activations into `out` (observing ranges in training
  /// mode). `out` is typically a workspace buffer or a member cache.
  void quantize_input(const Tensor& x, Tensor& out);
  /// Validate a noise-batched input's leading dimension and detect the
  /// shared-input case (all nb chip blocks bit-identical — true at the
  /// first quant layer of a batched Monte-Carlo forward). Throws
  /// std::invalid_argument when the rows don't divide by nb.
  bool batched_input_shared(const Tensor& x, index_t nb, const char* who) const;
  /// quantize_input of either the full input or, when `shared`, just its
  /// first chip block (the broadcast fast path), written into `out`.
  void quantize_forward_input(const Tensor& x, index_t nb, bool shared,
                              Tensor& out);
  /// True when the installed backend re-derives activation codes from raw
  /// activations itself (AnalogBackend::wants_raw_activations) and the
  /// quantizer is active: the forward then feeds the backend unquantized
  /// input and skips the float activation-grid pass — one full tensor
  /// pass saved per forward, bit-identical codes.
  bool backend_takes_raw() const {
    return analog_backend_ != nullptr && !training_ && quant_enabled_ &&
           act_quant_.calibrated() && analog_backend_->wants_raw_activations();
  }
  /// Analog MVM of the (possibly chip-grouped) 2-D activations against
  /// the effective weights, plus the self-tuning correction: dispatches
  /// the plain / grouped / shared NT GEMM and feeds the LTM row sums
  /// (tiled when the input is shared). Writes into `y` (workspace
  /// buffer); allocation-free at steady shape.
  void analog_matmul_into(const Tensor& a2d, index_t nb, bool shared,
                          Tensor& y) const;
  /// Apply the active self-tuning correction to the 2-D analog output
  /// {rows, fan_out}; `row_sums` holds sum_j xq_j per row (LTM measurand).
  void apply_correction(Tensor& y2d, const std::vector<float>& row_sums) const;
  /// Gradient wrt the quantized weight -> accumulate into weight_.grad,
  /// applying the reparameterization factor and the weight STE mask.
  void accumulate_weight_grad(const Tensor& grad_weff);

  index_t fan_in_, fan_out_;
  index_t a_bits_, w_bits_;
  float w_scale_ = 0.0f;
  bool quant_enabled_ = true;
  bool reparam_ = true;
  Param weight_;  // float master weights, shape {fan_out, fan_in}
  Param bias_;    // shape {fan_out}
  ActQuantizer act_quant_;
  NoiseState noise_;
  // forward caches
  Tensor weff_;      // effective weights used by the last forward
                     // ({noise batch * fan_out, fan_in} when batched)
  Tensor wq_base_;   // shared quantize-dequantize result for batched noise
  std::uint64_t weff_revision_ = ~std::uint64_t{0};  // NoiseState revision
                     // the batched weff_ was built from (cache key)
  Tensor w_mask_;    // weight STE mask
  Tensor x_mask_;    // activation STE mask
  double last_macs_ = 0.0;
  double last_positions_ = 1.0;
  // Scratch arena: Module injects its shared workspace via
  // set_workspace(); standalone layers (benches, unit tests) fall back to
  // a private one so the zero-alloc reuse applies everywhere.
  Workspace local_ws_;
  Workspace* ws_ = &local_ws_;
  // Non-owning circuit-level MVM route (nullptr = weight-domain GEMM).
  AnalogBackend* analog_backend_ = nullptr;
};

/// Fully connected quantized layer: x {N, in} -> {N, out}.
class QuantLinear : public QuantLayerBase {
 public:
  QuantLinear(index_t in, index_t out, index_t a_bits, index_t w_bits, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor xq_;  // quantized input of the last forward
};

/// 2-D convolution over NCHW via im2col: weight {cout, cin*k*k}.
///
/// Inference forwards fuse the activation quantizer into the im2col
/// gather (tensor/conv_ops.h) — no intermediate quantized tensor — and
/// all scratch (2-D GEMM output, permuted gradients) lives in the
/// workspace, so repeated same-shape calls are allocation-free. `cols_`
/// stays a member: it is the forward cache backward consumes, which the
/// workspace lifetime contract excludes from its slots.
class QuantConv2d : public QuantLayerBase {
 public:
  QuantConv2d(index_t in_channels, index_t out_channels, index_t kernel,
              index_t stride, index_t pad, index_t a_bits, index_t w_bits,
              Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  index_t out_size(index_t in) const { return (in + 2 * pad_ - kernel_) / stride_ + 1; }

 private:
  index_t in_channels_, out_channels_, kernel_, stride_, pad_;
  std::vector<index_t> x_shape_;
  Tensor cols_;  // im2col of the quantized input {N*OH*OW, cin*k*k}
};

}  // namespace qavat
