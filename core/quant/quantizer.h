// Uniform symmetric quantization (paper §II.A): signed b-bit grids for
// weights (b = 2 gives the ternary {-s, 0, +s} grid), unsigned grids for
// post-ReLU activations, STE pass-through masks for training, and the
// MMSE grid-scale search the paper computes once at training start.
#pragma once

#include "tensor/tensor.h"

namespace qavat {

/// Signed quantization levels for b bits: q in [-qmax, qmax].
inline index_t signed_qmax(index_t bits) { return (index_t{1} << (bits - 1)) - 1; }
/// Unsigned activation levels for b bits: q in [0, qmax].
inline index_t unsigned_qmax(index_t bits) { return (index_t{1} << bits) - 1; }

/// out = scale * clamp(round(x / scale), -qmax, qmax). When `ste_mask` is
/// non-null it receives 1 where x was inside the unclipped range (the
/// straight-through-estimator pass region) and 0 where it was clipped.
void quantize_dequantize(const Tensor& x, float scale, index_t bits, Tensor& out,
                         Tensor* ste_mask = nullptr);

/// Grid search for the scale minimizing ||x - QDQ(x; scale, bits)||^2.
/// Scans a multiplicative grid below the max-based scale; for ternary
/// weights the optimum sits far below max|x|.
float mmse_scale(const Tensor& x, index_t bits);

/// Unsigned activation quantizer with an EMA-calibrated scale. In training
/// mode each observed batch updates the scale from its max; in eval mode
/// the scale is frozen. A scale of 0 (never set) makes quantize() the
/// identity so float tracing works before calibration.
class ActQuantizer {
 public:
  explicit ActQuantizer(index_t bits) : bits_(bits) {}

  index_t bits() const { return bits_; }
  float scale() const { return scale_; }
  void set_scale(float s) { scale_ = s; }
  bool calibrated() const { return scale_ > 0.0f; }

  /// Update the EMA scale from the batch max (training-time calibration).
  void observe(const Tensor& x);

  /// out = scale * clamp(round(x / scale), 0, qmax); mask marks the STE
  /// pass region (0 <= x <= scale * qmax).
  void quantize(const Tensor& x, Tensor& out, Tensor* ste_mask = nullptr) const;

 private:
  index_t bits_;
  float scale_ = 0.0f;
  float ema_ = 0.9f;
};

}  // namespace qavat
