#include "core/quant/quantizer.h"

#include <cmath>

#include "tensor/parallel_for.h"

namespace qavat {

void quantize_dequantize(const Tensor& x, float scale, index_t bits, Tensor& out,
                         Tensor* ste_mask) {
  out.resize_for_overwrite(x.shape());
  if (ste_mask != nullptr) ste_mask->resize_for_overwrite(x.shape());
  const float qmax = static_cast<float>(signed_qmax(bits));
  const float* px = x.data();
  float* po = out.data();
  float* pm = ste_mask != nullptr ? ste_mask->data() : nullptr;
  if (scale <= 0.0f) {  // degenerate scale: quantize everything to 0
    out.zero();
    if (pm != nullptr) ste_mask->zero();
    return;
  }
  const float inv = 1.0f / scale;
  // Pure elementwise map: any thread partition is bit-identical.
  parallel_for_elems(x.size(), [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      float q = std::nearbyint(px[i] * inv);
      const bool inside = q >= -qmax && q <= qmax;
      if (!inside) q = q < -qmax ? -qmax : qmax;
      po[i] = q * scale;
      if (pm != nullptr) pm[i] = inside ? 1.0f : 0.0f;
    }
  });
}

float mmse_scale(const Tensor& x, index_t bits) {
  const float amax = x.abs_max();
  if (amax <= 0.0f || signed_qmax(bits) <= 0) return 1.0f;
  const float qmax = static_cast<float>(signed_qmax(bits));
  const float base = amax / qmax;
  float best_scale = base;
  double best_err = -1.0;
  // Multiplicative sweep: t in [0.15, 1.0] of the max-based scale.
  for (int i = 0; i < 60; ++i) {
    const float t = 0.15f + 0.85f * static_cast<float>(i) / 59.0f;
    const float scale = base * t;
    const float inv = 1.0f / scale;
    double err = 0.0;
    const float* px = x.data();
    for (index_t j = 0; j < x.size(); ++j) {
      float q = std::nearbyint(px[j] * inv);
      if (q > qmax) q = qmax;
      if (q < -qmax) q = -qmax;
      const double d = static_cast<double>(px[j]) - static_cast<double>(q * scale);
      err += d * d;
    }
    if (best_err < 0.0 || err < best_err) {
      best_err = err;
      best_scale = scale;
    }
  }
  return best_scale;
}

void ActQuantizer::observe(const Tensor& x) {
  const float amax = x.abs_max();
  if (amax <= 0.0f) return;
  const float fresh = amax / static_cast<float>(unsigned_qmax(bits_));
  scale_ = calibrated() ? ema_ * scale_ + (1.0f - ema_) * fresh : fresh;
}

void ActQuantizer::quantize(const Tensor& x, Tensor& out, Tensor* ste_mask) const {
  out.resize_for_overwrite(x.shape());
  if (ste_mask != nullptr) ste_mask->resize_for_overwrite(x.shape());
  const float* px = x.data();
  float* po = out.data();
  float* pm = ste_mask != nullptr ? ste_mask->data() : nullptr;
  if (!calibrated()) {  // identity fallback for uncalibrated tracing
    for (index_t i = 0; i < x.size(); ++i) {
      po[i] = px[i];
      if (pm != nullptr) pm[i] = 1.0f;
    }
    return;
  }
  const float qmax = static_cast<float>(unsigned_qmax(bits_));
  const float inv = 1.0f / scale_;
  const float s = scale_;
  // Elementwise; the fused inference gather (tensor/conv_ops.h
  // im2col_quant) must stay arithmetic-identical to this loop.
  parallel_for_elems(x.size(), [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      float q = std::nearbyint(px[i] * inv);
      const bool inside = q >= 0.0f && q <= qmax;
      if (!inside) q = q < 0.0f ? 0.0f : qmax;
      po[i] = q * s;
      if (pm != nullptr) pm[i] = inside ? 1.0f : 0.0f;
    }
  });
}

}  // namespace qavat
