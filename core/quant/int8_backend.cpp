#include "core/quant/int8_backend.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/int_ops.h"
#include "tensor/parallel_for.h"

namespace qavat {

namespace {

// Workspace slot ids under this backend's owner key. Both are byte images
// aliased into float tensors (ceil(bytes/4) elements): activation s8
// codes and the s32 GEMM accumulator.
enum WsSlot { kWsXCodes = 0, kWsAcc = 1 };

index_t float_elems_for_bytes(index_t bytes) { return (bytes + 3) / 4; }

}  // namespace

Int8Backend::Int8Backend(QuantLayerBase& layer, Workspace& ws)
    : layer_(layer), ws_(ws) {}

Int8Backend::~Int8Backend() { ws_.release(this); }

void Int8Backend::mvm_into(const Tensor& x2d, Tensor& y) {
  mvm_grouped_into(x2d, 1, false, y);
}

void Int8Backend::refresh_planes(index_t groups) {
  const std::uint64_t rev = layer_.noise_state().revision;
  const bool vnni = detail::int8_kernel_is_vnni();
  if (rev == plane_revision_ && groups == plane_nb_ && vnni == plane_vnni_) {
    return;  // same chip group and kernel mode — planes still valid
  }
  const index_t k = layer_.fan_in();
  const index_t nout = layer_.fan_out();
  const Tensor& weff = layer_.backend_effective_weight();
  if (weff.ndim() != 2 || weff.dim(0) != groups * nout || weff.dim(1) != k) {
    throw std::logic_error(
        "Int8Backend: effective weight shape does not match " +
        std::to_string(groups) + " chip groups (is chip_batch consistent?)");
  }
  // Exact grid: noise-free quantized weights ARE scale * small-int codes,
  // so re-quantizing on the layer's own grid loses nothing. (Noise-free
  // implies a single group — noise_batch() is 1 when inactive.) Any
  // injected variability moves weights off the grid; then each chip slot
  // gets a max-scaled grid with the full s8 range.
  const NoiseState& ns = layer_.noise_state();
  planes_exact_ = !ns.active && layer_.quant_enabled() &&
                  layer_.weight_scale() > 0.0f && layer_.weight_bits() <= 8;
  const index_t plane_bytes = packed_b_s8_bytes(nout, k);
  planes_.resize(static_cast<std::size_t>(groups * plane_bytes));
  wsums_.resize(static_cast<std::size_t>(groups * nout));
  dequant_.resize(static_cast<std::size_t>(groups));
  codes_.resize(static_cast<std::size_t>(nout * k));
  const index_t wsize = nout * k;
  for (index_t g = 0; g < groups; ++g) {
    const float* wg = weff.data() + g * wsize;
    double scale_g;
    std::int32_t qmax;
    if (planes_exact_) {
      scale_g = static_cast<double>(layer_.weight_scale());
      qmax = static_cast<std::int32_t>(signed_qmax(layer_.weight_bits()));
    } else {
      float wmax = 0.0f;
      for (index_t i = 0; i < wsize; ++i) wmax = std::max(wmax, std::fabs(wg[i]));
      scale_g = w_unit_from_max(wmax) / 127.0;
      qmax = 127;
    }
    quantize_to_s8(wg, wsize, static_cast<float>(1.0 / scale_g), 0, -qmax, qmax,
                   codes_.data());
    pack_b_s8(codes_.data(), nout, k, planes_.data() + g * plane_bytes,
              wsums_.data() + g * nout);
    dequant_[static_cast<std::size_t>(g)] = scale_g;
  }
  plane_revision_ = rev;
  plane_nb_ = groups;
  plane_vnni_ = vnni;
}

void Int8Backend::mvm_grouped_into(const Tensor& x2d, index_t groups,
                                   bool shared, Tensor& y) {
  const index_t k = layer_.fan_in();
  const index_t nout = layer_.fan_out();
  if (x2d.ndim() != 2 || x2d.dim(1) != k) {
    throw std::invalid_argument("Int8Backend: input must be {rows, fan_in}");
  }
  if (groups < 1 || (!shared && x2d.dim(0) % groups != 0)) {
    throw std::invalid_argument(
        "Int8Backend: rows not divisible by chip groups");
  }
  if (layer_.act_bits() > 8) {
    throw std::logic_error(
        "Int8Backend: activation bits > 8 cannot ride the s8 path");
  }
  const float a_scale = layer_.act_quantizer().scale();
  if (!layer_.quant_enabled() || a_scale <= 0.0f) {
    throw std::logic_error(
        "Int8Backend: layer must be quantized with a calibrated activation "
        "scale (train or set scales before installing the int8 backend)");
  }
  refresh_planes(groups);

  const index_t rows = x2d.dim(0);            // rows of the given block
  const index_t rows_per = shared ? rows : rows / groups;
  const index_t out_rows = groups * rows_per;
  y.resize_for_overwrite({out_rows, nout});

  // Activation codes: clamp(nearbyint(x / scale)) in [0, qmax_a] — the
  // same code whether x arrives raw (wants_raw_activations skips the
  // layer's float grid pass) or already grid-quantized; 8-bit codes are
  // biased by -128 into s8 and the bias folded back below via the plane
  // row sums. (The s32 accumulator is exact as long as
  // 128 * 127 * fan_in < 2^31 — fan_in <= 131072, far above any layer
  // here.)
  const std::int32_t zp = layer_.act_bits() == 8 ? 128 : 0;
  const std::int32_t qmax_a =
      static_cast<std::int32_t>(unsigned_qmax(layer_.act_bits()));
  Tensor& xc_t =
      ws_.acquire(this, kWsXCodes, {float_elems_for_bytes(rows * k)});
  std::int8_t* xc = reinterpret_cast<std::int8_t*>(xc_t.data());
  quantize_to_s8(x2d.data(), rows * k, 1.0f / a_scale, -zp, -zp, qmax_a - zp,
                 xc);

  // One prepacked integer GEMM per chip slot (serial over slots; each
  // GEMM row-partitions internally). The accumulator aliases a float
  // workspace slot of identical byte size.
  Tensor& acc_t = ws_.acquire(this, kWsAcc, {out_rows, nout});
  std::int32_t* acc = reinterpret_cast<std::int32_t*>(acc_t.data());
  const index_t plane_bytes = packed_b_s8_bytes(nout, k);
  for (index_t g = 0; g < groups; ++g) {
    const std::int8_t* ag = shared ? xc : xc + g * rows_per * k;
    gemm_s8s8_s32_prepacked(ag, planes_.data() + g * plane_bytes,
                            wsums_.data() + g * nout, acc + g * rows_per * nout,
                            rows_per, k, nout);
  }

  // Dequantize epilogue: y = (acc + zp * wsum[j]) * (a_scale * w_lsb_g).
  // Double arithmetic — the shifted accumulator can exceed the float
  // mantissa. Pure elementwise, thread-count deterministic.
  // Row-wise so the inner loop is contiguous and division-free (each row
  // is written by exactly one thread: bit-identical for any QAVAT_THREADS).
  const std::int32_t* wsums = wsums_.data();
  const double* dq = dequant_.data();
  const double a_scale_d = static_cast<double>(a_scale);
  const double zp_d = static_cast<double>(zp);
  float* py = y.data();
  parallel_for(0, out_rows, 1, [=](index_t r0, index_t r1) {
    for (index_t row = r0; row < r1; ++row) {
      const index_t g = row / rows_per;
      const std::int32_t* wrow = wsums + g * nout;
      const std::int32_t* arow = acc + row * nout;
      float* yrow = py + row * nout;
      const double f = a_scale_d * dq[g];
      for (index_t j = 0; j < nout; ++j) {
        yrow[j] = static_cast<float>(
            (static_cast<double>(arow[j]) + zp_d * wrow[j]) * f);
      }
    }
  });
}

}  // namespace qavat
