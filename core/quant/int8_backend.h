// Integer inference backend (QAVAT_EVAL_BACKEND=int8, DESIGN.md §12): an
// AnalogBackend that re-quantizes each chip realization's effective
// weights into packed int8 planes once per NoiseState revision, then runs
// every MVM as s8 x s8 -> s32 (tensor/int_ops.h) with a single float
// dequantize epilogue — replacing the float NT GEMM of the weight-domain
// path. Activation codes are derived directly from the layer's raw
// activations (wants_raw_activations — identical codes to quantizing the
// float grid first, one tensor pass cheaper); 8-bit activations are
// biased to signed range with a zero-point of 128, folded back via the
// packed planes' per-row weight-code sums.
//
// The weight requant grid is the layer's own quantization grid (exact,
// noise-free case: code = grid integer) or a per-chip max-scaled grid
// (|w|max / 127) when injected variability pushes weights off the grid —
// the backend is then an approximation whose accuracy impact is gated by
// bench_pim_equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "core/quant/qlayers.h"

namespace qavat {

/// Per-layer integer MVM route, installed by the evaluator for
/// QAVAT_EVAL_BACKEND=int8. Supports grouped (noise-batched) forwards:
/// one packed weight plane per chip slot, rebuilt only when the layer's
/// NoiseState revision, the group count or the active int8 kernel mode
/// changes — so all test batches of one chip group reuse the planes.
/// Plane caches are members (steady-size, zero-alloc across chips); only
/// per-call activation-code and accumulator scratch lives in the shared
/// Workspace. Like every AnalogBackend: inference-only, driven from one
/// thread, bit-identical for any QAVAT_THREADS (integer accumulation is
/// associative).
class Int8Backend : public AnalogBackend {
 public:
  /// Bind to `layer` (whose effective weights and activation grid drive
  /// the integer pipeline) and `ws` for per-call scratch. The layer must
  /// be quantized (quant enabled, calibrated activation scale, act bits
  /// <= 8) by the time the first MVM runs — checked per call, throwing
  /// std::logic_error otherwise. Both references must outlive the backend.
  Int8Backend(QuantLayerBase& layer, Workspace& ws);

  /// Releases this backend's scratch slots from the workspace.
  ~Int8Backend() override;

  Int8Backend(const Int8Backend&) = delete;
  Int8Backend& operator=(const Int8Backend&) = delete;

  /// Single-chip MVM: grouped form with one group.
  void mvm_into(const Tensor& x2d, Tensor& y) override;

  /// Grouped MVM per the AnalogBackend contract: quantize the activation
  /// block to s8 codes, one prepacked integer GEMM per chip slot against
  /// that slot's cached plane, then dequantize (activation scale x slot
  /// weight scale, zero-point folded via the plane row sums) into `y`.
  void mvm_grouped_into(const Tensor& x2d, index_t groups, bool shared,
                        Tensor& y) override;

  /// The integer path derives activation codes with the same
  /// clamp(nearbyint(x / scale)) the float quantizer uses, so raw and
  /// grid-quantized activations yield identical codes — the layer skips
  /// its float activation pass while this backend is installed.
  bool wants_raw_activations() const override { return true; }

  /// True when the currently cached planes were built on the exact
  /// quantization grid (noise-free path) rather than the per-chip
  /// max-scaled grid. Meaningful after the first MVM; for tests.
  bool planes_exact_grid() const { return planes_exact_; }

 private:
  /// Rebuild the per-slot packed planes, row-code sums and dequant scales
  /// from the layer's current effective weights if the cache key
  /// (revision, groups, kernel mode) moved; no-op otherwise.
  void refresh_planes(index_t groups);

  QuantLayerBase& layer_;
  Workspace& ws_;

  // Plane cache (cross-forward state — members per the Workspace lifetime
  // contract; trim() may evict any slot between layer calls).
  std::vector<std::uint8_t> planes_;   // groups * packed_b_s8_bytes(nout, k)
  std::vector<std::int32_t> wsums_;    // groups * fan_out weight-code row sums
  std::vector<double> dequant_;        // per-slot weight LSB (weight units)
  std::vector<std::int8_t> codes_;     // slot requant scratch {fan_out * k}
  std::uint64_t plane_revision_ = ~std::uint64_t{0};
  index_t plane_nb_ = 0;
  bool plane_vnni_ = false;
  bool planes_exact_ = false;
};

}  // namespace qavat
