#include "core/quant/qlayers.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "tensor/parallel_for.h"

namespace qavat {

namespace {

// Per-row sums of a {rows, cols} matrix — the LTM's measurand (one
// activation sum per MVM input row).
std::vector<float> ltm_row_sums(const Tensor& m) {
  const index_t rows = m.dim(0), cols = m.dim(1);
  std::vector<float> sums(static_cast<std::size_t>(rows), 0.0f);
  for (index_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    float s = 0.0f;
    for (index_t c = 0; c < cols; ++c) s += row[c];
    sums[static_cast<std::size_t>(r)] = s;
  }
  return sums;
}

// True when the noise-batched input is `nb` bit-identical chip blocks —
// always the case at the first quant layer of a batched Monte-Carlo
// forward (every simulated chip sees the same test images), never after
// it (per-chip weights diverge the activations, so the memcmp fails on
// the first few bytes and costs next to nothing).
bool chip_blocks_identical(const Tensor& x, index_t nb) {
  const index_t block = x.size() / nb;
  const float* p = x.data();
  for (index_t b = 1; b < nb; ++b) {
    if (std::memcmp(p, p + b * block,
                    static_cast<std::size_t>(block) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

// First chip block of a batched input, copied into `out` (leading dim
// divided by nb).
void first_chip_block(const Tensor& x, index_t nb, Tensor& out) {
  std::vector<index_t> shape = x.shape();
  shape[0] /= nb;
  out.resize_for_overwrite(std::move(shape));
  std::memcpy(out.data(), x.data(),
              static_cast<std::size_t>(out.size()) * sizeof(float));
}

// Tile per-row LTM sums of a shared block out to all nb chip blocks.
std::vector<float> tile_row_sums(const std::vector<float>& sums, index_t nb) {
  std::vector<float> out;
  out.reserve(sums.size() * static_cast<std::size_t>(nb));
  for (index_t b = 0; b < nb; ++b) out.insert(out.end(), sums.begin(), sums.end());
  return out;
}

}  // namespace

void AnalogBackend::mvm_grouped_into(const Tensor& x2d, index_t groups,
                                     bool shared, Tensor& y) {
  if (groups == 1 && !shared) {
    mvm_into(x2d, y);
    return;
  }
  throw std::logic_error(
      "AnalogBackend: this backend is single-chip (chip_batch 1)");
}

const Tensor& QuantLayerBase::backend_effective_weight() {
  if (training_) {
    throw std::logic_error("backend_effective_weight: inference-only");
  }
  compute_effective_weight();
  return weff_;
}

QuantLayerBase::QuantLayerBase(index_t fan_in, index_t fan_out, index_t a_bits,
                               index_t w_bits)
    : fan_in_(fan_in),
      fan_out_(fan_out),
      a_bits_(a_bits),
      w_bits_(w_bits),
      act_quant_(a_bits) {
  weight_.value.resize({fan_out, fan_in});
  bias_.value.resize({fan_out});
}

void QuantLayerBase::refresh_weight_scale() {
  w_scale_ = mmse_scale(weight_.value, w_bits_);
}

float QuantLayerBase::dequant_weight_max() const {
  if (!quant_enabled_ || w_scale_ <= 0.0f) return weight_.value.abs_max();
  Tensor tmp;
  quantize_dequantize(weight_.value, w_scale_, w_bits_, tmp);
  return tmp.abs_max();
}

Tensor QuantLayerBase::programmed_weight() const {
  Tensor w;
  if (quant_enabled_ && w_scale_ > 0.0f) {
    quantize_dequantize(weight_.value, w_scale_, w_bits_, w);
  } else {
    w = weight_.value;
  }
  return w;
}

void QuantLayerBase::compute_effective_weight() {
  const index_t nb = noise_batch();
  if (nb > 1) {
    // Noise-batched (inference-only) path: one shared quantize-dequantize
    // pass, then `nb` stacked per-chip perturbations. Per-chip arithmetic
    // is identical to the scalar path below, so a batched forward is
    // bit-identical to nb sequential single-chip forwards.
    if (training_) {
      throw std::logic_error(
          "compute_effective_weight: batched noise is inference-only");
    }
    if (weff_revision_ == noise_.revision &&
        weff_.size() == nb * weight_.value.size()) {
      return;  // same chip group as the last forward — weff_ still valid
    }
    if (quant_enabled_ && w_scale_ > 0.0f) {
      quantize_dequantize(weight_.value, w_scale_, w_bits_, wq_base_, nullptr);
    } else {
      wq_base_ = weight_.value;
    }
    const index_t wsize = weight_.value.size();
    if (noise_.eps.size() != nb * wsize ||
        static_cast<index_t>(noise_.eps_b_v.size()) != nb) {
      throw std::invalid_argument(
          "compute_effective_weight: noise state not sized for batch " +
          std::to_string(nb) + " (use ensure_noise_batch)");
    }
    weff_.resize({nb * fan_out_, fan_in_});
    const float* base = wq_base_.data();
    const float* eps_all = noise_.eps.data();
    float* out_all = weff_.data();
    const bool wp = noise_.model == VarianceModel::kWeightProportional;
    const float unit = noise_.wmax;
    auto fill_slots = [&](index_t b0, index_t b1) {
      for (index_t b = b0; b < b1; ++b) {
        const float eps_b = noise_.eps_b_v[static_cast<std::size_t>(b)];
        const float* eps = eps_all + b * wsize;
        float* out = out_all + b * wsize;
        if (wp) {
          for (index_t i = 0; i < wsize; ++i) {
            out[i] = base[i] * (1.0f + eps[i] + eps_b);
          }
        } else {
          for (index_t i = 0; i < wsize; ++i) {
            out[i] = base[i] + (eps[i] + eps_b) * unit;
          }
        }
      }
    };
    if (nb * wsize < (index_t{1} << 20)) {
      fill_slots(index_t{0}, nb);  // too small to pay a thread fork
    } else {
      parallel_for(index_t{0}, nb, index_t{1}, fill_slots);
    }
    weff_revision_ = noise_.revision;
    return;
  }
  if (quant_enabled_ && w_scale_ > 0.0f) {
    quantize_dequantize(weight_.value, w_scale_, w_bits_, weff_,
                        training_ ? &w_mask_ : nullptr);
  } else {
    weff_ = weight_.value;
    if (training_) {
      w_mask_.resize(weight_.value.shape());
      w_mask_.fill(1.0f);
    }
  }
  if (!noise_.active) return;
  assert(noise_.eps.size() == weff_.size());
  float* w = weff_.data();
  const float* eps = noise_.eps.data();
  const float eps_b = noise_.eps_b;
  if (noise_.model == VarianceModel::kWeightProportional) {
    parallel_for_elems(weff_.size(), [w, eps, eps_b](index_t i0, index_t i1) {
      for (index_t i = i0; i < i1; ++i) w[i] *= 1.0f + eps[i] + eps_b;
    });
  } else {
    const float unit = noise_.wmax;
    parallel_for_elems(weff_.size(),
                       [w, eps, eps_b, unit](index_t i0, index_t i1) {
                         for (index_t i = i0; i < i1; ++i) {
                           w[i] += (eps[i] + eps_b) * unit;
                         }
                       });
  }
}

bool QuantLayerBase::batched_input_shared(const Tensor& x, index_t nb,
                                          const char* who) const {
  if (nb <= 1) return false;
  if (x.dim(0) % nb != 0) {
    throw std::invalid_argument(std::string(who) +
                                ": input rows not divisible by noise batch " +
                                std::to_string(nb));
  }
  return chip_blocks_identical(x, nb);
}

void QuantLayerBase::quantize_forward_input(const Tensor& x, index_t nb,
                                            bool shared, Tensor& out) {
  if (!shared) {
    quantize_input(x, out);
    return;
  }
  std::vector<index_t> block_shape = x.shape();
  block_shape[0] /= nb;
  Tensor& x0 = ws_->acquire(this, kWsBlock, std::move(block_shape));
  first_chip_block(x, nb, x0);
  quantize_input(x0, out);
}

void QuantLayerBase::analog_matmul_into(const Tensor& a2d, index_t nb,
                                        bool shared, Tensor& y) const {
  if (analog_backend_ != nullptr) {
    // Backend route: the backend owns the programmed weights (crossbar
    // tile conductances for pim/, cached int8 planes for the integer
    // path). Grouped (noise-batched) forwards go through
    // mvm_grouped_into, whose default rejects groups — the circuit
    // backend stays single-chip because per-chip tile programming would
    // dwarf the GEMM win, while the int8 backend overrides it.
    if (nb > 1) {
      analog_backend_->mvm_grouped_into(a2d, nb, shared, y);
    } else {
      analog_backend_->mvm_into(a2d, y);
    }
  } else if (nb <= 1) {
    matmul_nt_into(a2d, weff_, y);
  } else if (shared) {
    matmul_nt_shared_into(a2d, weff_, nb, y);
  } else {
    matmul_nt_batched_into(a2d, weff_, nb, y);
  }
  // The circuit backend carries its noise in the programmed conductances
  // (active stays false) yet still wants the self-tuning correction, so
  // the gate is active-OR-backend rather than active alone. A zero-noise
  // self-tuned deployment (active false, no backend) skips the LTM
  // reduction and the no-op correction pass entirely — its eps_hat and
  // ltm_err are exactly 0.
  const bool corrective = noise_.active || analog_backend_ != nullptr;
  if (corrective && noise_.correction == CorrectionKind::kOffset) {
    std::vector<float> sums = ltm_row_sums(a2d);
    apply_correction(y, shared ? tile_row_sums(sums, nb) : sums);
  } else if (corrective) {
    apply_correction(y, {});
  }
}

void QuantLayerBase::quantize_input(const Tensor& x, Tensor& out) {
  if (training_) act_quant_.observe(x);
  if (!quant_enabled_) {
    if (training_) {
      x_mask_.resize_for_overwrite(x.shape());
      x_mask_.fill(1.0f);
    }
    out = x;
    return;
  }
  act_quant_.quantize(x, out, training_ ? &x_mask_ : nullptr);
}

void QuantLayerBase::apply_correction(Tensor& y2d,
                                      const std::vector<float>& row_sums) const {
  if (noise_.correction == CorrectionKind::kNone) return;
  const index_t rows = y2d.dim(0), cols = y2d.dim(1);
  const index_t nb = noise_.batch;
  const index_t rows_per = nb > 1 ? rows / nb : rows;  // rows per chip slot
  float* y = y2d.data();
  for (index_t b = 0; b < (nb > 1 ? nb : 1); ++b) {
    const float eps_hat =
        nb > 1 ? noise_.eps_hat_v[static_cast<std::size_t>(b)] : noise_.eps_hat;
    const float ltm_err =
        nb > 1 ? noise_.ltm_err_v[static_cast<std::size_t>(b)] : noise_.ltm_err;
    const index_t r0 = b * rows_per, r1 = r0 + rows_per;
    if (noise_.correction == CorrectionKind::kScale) {
      float denom = 1.0f + eps_hat;
      // An (unphysical) near-zero estimate would blow the correction up;
      // clamp like a bounded-gain analog stage would.
      if (std::fabs(denom) < 0.25f) denom = denom < 0.0f ? -0.25f : 0.25f;
      const float g = 1.0f / denom;
      scale(y + r0 * cols, (r1 - r0) * cols, g);
    } else {  // kOffset
      assert(static_cast<index_t>(row_sums.size()) == rows);
      const float k = eps_hat * noise_.wmax * (1.0f + ltm_err);
      for (index_t r = r0; r < r1; ++r) {
        const float off = k * row_sums[static_cast<std::size_t>(r)];
        float* row = y + r * cols;
        for (index_t c = 0; c < cols; ++c) row[c] -= off;
      }
    }
  }
}

void QuantLayerBase::accumulate_weight_grad(const Tensor& grad_weff) {
  weight_.ensure_grad();
  const bool reparam_factor = noise_.active && reparam_ &&
                              noise_.model == VarianceModel::kWeightProportional;
  const bool masked = w_mask_.size() == grad_weff.size();
  const float* g = grad_weff.data();
  const float* eps = reparam_factor ? noise_.eps.data() : nullptr;
  const float* m = masked ? w_mask_.data() : nullptr;
  const float eps_b = noise_.eps_b;
  float* acc = weight_.grad.data();
  parallel_for_elems(grad_weff.size(),
                     [g, eps, m, eps_b, acc](index_t i0, index_t i1) {
                       for (index_t i = i0; i < i1; ++i) {
                         float v = g[i];
                         if (eps != nullptr) v *= 1.0f + eps[i] + eps_b;
                         if (m != nullptr) v *= m[i];
                         acc[i] += v;
                       }
                     });
}

QuantLinear::QuantLinear(index_t in, index_t out, index_t a_bits, index_t w_bits,
                         Rng& rng)
    : QuantLayerBase(in, out, a_bits, w_bits) {
  fill_normal(weight_.value, rng, 0.0, std::sqrt(2.0 / static_cast<double>(in)));
}

Tensor QuantLinear::forward(const Tensor& x) {
  if (x.ndim() != 2 || x.dim(1) != fan_in_) {
    throw std::invalid_argument("QuantLinear::forward: input must be {rows, " +
                                std::to_string(fan_in_) + "}");
  }
  const index_t nb = noise_batch();
  const bool shared = batched_input_shared(x, nb, "QuantLinear::forward");
  const Tensor* xin = &xq_;
  if (backend_takes_raw()) {
    // The backend derives the integer codes from raw activations itself
    // (identical codes — same nearbyint + clamp); skip the grid pass.
    if (shared) {
      std::vector<index_t> block_shape = x.shape();
      block_shape[0] /= nb;
      Tensor& x0 = ws_->acquire(this, kWsBlock, std::move(block_shape));
      first_chip_block(x, nb, x0);
      xin = &x0;
    } else {
      xin = &x;
    }
  } else {
    quantize_forward_input(x, nb, shared, xq_);
  }
  // The circuit backend owns the programmed weights; weff_ is unused.
  if (analog_backend_ == nullptr) compute_effective_weight();
  Tensor y;
  analog_matmul_into(*xin, nb, shared, y);
  float* py = y.data();
  const float* pb = bias_.value.data();
  for (index_t n = 0; n < y.dim(0); ++n) {
    for (index_t j = 0; j < fan_out_; ++j) py[n * fan_out_ + j] += pb[j];
  }
  last_macs_ = static_cast<double>(fan_in_ * fan_out_);
  last_positions_ = 1.0;
  return y;
}

Tensor QuantLinear::backward(const Tensor& gy) {
  assert(gy.ndim() == 2 && gy.dim(1) == fan_out_);
  if (noise_batch() > 1) {
    throw std::logic_error("QuantLinear::backward: batched noise is eval-only");
  }
  if (analog_backend_ != nullptr) {
    throw std::logic_error(
        "QuantLinear::backward: analog backend is inference-only");
  }
  bias_.ensure_grad();
  const float* pg = gy.data();
  float* pb = bias_.grad.data();
  for (index_t n = 0; n < gy.dim(0); ++n) {
    for (index_t j = 0; j < fan_out_; ++j) pb[j] += pg[n * fan_out_ + j];
  }
  Tensor& dw = ws_->acquire(this, kWsDw, {fan_out_, fan_in_});
  matmul_tn_into(gy, xq_, dw);
  accumulate_weight_grad(dw);
  Tensor gx = matmul(gy, weff_);
  if (x_mask_.size() == gx.size()) {
    float* p = gx.data();
    const float* m = x_mask_.data();
    parallel_for_elems(gx.size(), [p, m](index_t i0, index_t i1) {
      for (index_t i = i0; i < i1; ++i) p[i] *= m[i];
    });
  }
  return gx;
}

QuantConv2d::QuantConv2d(index_t in_channels, index_t out_channels, index_t kernel,
                         index_t stride, index_t pad, index_t a_bits,
                         index_t w_bits, Rng& rng)
    : QuantLayerBase(in_channels * kernel * kernel, out_channels, a_bits, w_bits),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  fill_normal(weight_.value, rng,
              0.0, std::sqrt(2.0 / static_cast<double>(fan_in_)));
}

Tensor QuantConv2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument(
        "QuantConv2d::forward: input must be {n, " +
        std::to_string(in_channels_) + ", h, w}");
  }
  const index_t nb = noise_batch();
  const bool shared = batched_input_shared(x, nb, "QuantConv2d::forward");
  x_shape_ = x.shape();
  const index_t n = x.dim(0);
  const index_t oh = out_size(x.dim(2)), ow = out_size(x.dim(3));
  // When the batched input is nb identical chip blocks, gather only the
  // first block — the grouped GEMM broadcasts it to every chip.
  const ConvGeom geom{shared ? n / nb : n,
                      in_channels_,
                      x.dim(2),
                      x.dim(3),
                      kernel_,
                      stride_,
                      pad_,
                      oh,
                      ow};
  if (training_) {
    // Training path: explicit quantize pass (observes activation ranges
    // and caches the STE mask for backward), then plain gather.
    Tensor& xq = ws_->acquire(this, kWsXq, x.shape());
    quantize_input(x, xq);
    im2col(xq, geom, cols_);
  } else if (quant_enabled_ && act_quant_.calibrated() &&
             !backend_takes_raw()) {
    if (stride_ >= kernel_) {
      // Non-overlapping windows: each input element is gathered at most
      // once, so fusing the quantizer into the gather saves a whole
      // tensor pass at no extra arithmetic. Bit-identical values.
      im2col_quant(x, geom, act_quant_.scale(),
                   unsigned_qmax(act_quant_.bits()), cols_);
    } else {
      // Overlapping windows gather each element ~(k/stride)^2 times; the
      // fused form would re-round per window while a separate quantize
      // pass vectorizes over the contiguous input. Quantize once into
      // workspace scratch (first chip block only when shared), then the
      // gather is pure copies. Shape-gated, so the choice — and the
      // bit-exact result — never depends on the thread count.
      Tensor& xq = ws_->acquire(
          this, kWsXq, {geom.n, in_channels_, x.dim(2), x.dim(3)});
      quantize_forward_input(x, nb, shared, xq);
      im2col(xq, geom, cols_);
    }
  } else {
    // Identity quantizer, or a backend that re-derives the codes from raw
    // activations (backend_takes_raw): gather straight from x.
    im2col(x, geom, cols_);
  }
  // The circuit backend owns the programmed weights; weff_ is unused.
  if (analog_backend_ == nullptr) compute_effective_weight();
  // Chip-major image groups stay chip-major in the im2col row order, so
  // the grouped GEMM multiplies each chip's rows by its own weights (or
  // broadcasts the shared block when the chip inputs are identical).
  const index_t out_rows = shared ? nb * geom.rows() : geom.rows();
  Tensor& y2d = ws_->acquire(this, kWsY2d, {out_rows, out_channels_});
  analog_matmul_into(cols_, nb, shared, y2d);  // {N*OH*OW, cout}
  // Permute {N*OH*OW, cout} -> {N, cout, OH, OW} and add the bias. Each
  // (image, position) is written by exactly one thread: bit-identical for
  // any thread count.
  Tensor y;
  y.resize_for_overwrite({n, out_channels_, oh, ow});
  const index_t ohw = oh * ow;
  const index_t cout = out_channels_;
  const float* p2 = y2d.data();
  const float* pb = bias_.value.data();
  float* py = y.data();
  parallel_for_elems(n * ohw, [=](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const index_t ni = r / ohw, pos = r - ni * ohw;
      const float* src = p2 + r * cout;
      float* dst = py + ni * cout * ohw + pos;
      for (index_t co = 0; co < cout; ++co) dst[co * ohw] = src[co] + pb[co];
    }
  });
  last_macs_ = static_cast<double>(fan_in_ * out_channels_ * oh * ow);
  last_positions_ = static_cast<double>(oh * ow);
  return y;
}

Tensor QuantConv2d::backward(const Tensor& gy) {
  assert(gy.ndim() == 4 && gy.dim(1) == out_channels_);
  if (noise_batch() > 1) {
    throw std::logic_error("QuantConv2d::backward: batched noise is eval-only");
  }
  if (analog_backend_ != nullptr) {
    throw std::logic_error(
        "QuantConv2d::backward: analog backend is inference-only");
  }
  const index_t n = gy.dim(0), oh = gy.dim(2), ow = gy.dim(3);
  const index_t ohw = oh * ow, cout = out_channels_;
  // Permute to {N*OH*OW, cout} (inverse of forward's layout change).
  Tensor& gy2d = ws_->acquire(this, kWsGy2d, {n * ohw, cout});
  const float* pg = gy.data();
  float* p2 = gy2d.data();
  parallel_for_elems(n * ohw, [=](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const index_t ni = r / ohw, pos = r - ni * ohw;
      const float* src = pg + ni * cout * ohw + pos;
      float* dst = p2 + r * cout;
      for (index_t co = 0; co < cout; ++co) dst[co] = src[co * ohw];
    }
  });
  // Bias gradient: serial column reduction in ascending (image, position)
  // order — kept out of the threaded permute so no accumulation races.
  bias_.ensure_grad();
  float* pb = bias_.grad.data();
  for (index_t r = 0; r < n * ohw; ++r) {
    const float* row = p2 + r * cout;
    for (index_t co = 0; co < cout; ++co) pb[co] += row[co];
  }
  Tensor& dw = ws_->acquire(this, kWsDw, {fan_out_, fan_in_});
  matmul_tn_into(gy2d, cols_, dw);
  accumulate_weight_grad(dw);
  Tensor& dcols = ws_->acquire(this, kWsDcols, {n * ohw, fan_in_});
  matmul_into(gy2d, weff_, dcols);
  const ConvGeom geom{n,       in_channels_, x_shape_[2], x_shape_[3],
                      kernel_, stride_,      pad_,        oh,
                      ow};
  Tensor gx;
  col2im(dcols, geom, gx);
  if (x_mask_.size() == gx.size()) {
    float* p = gx.data();
    const float* m = x_mask_.data();
    parallel_for_elems(gx.size(), [p, m](index_t i0, index_t i1) {
      for (index_t i = i0; i < i1; ++i) p[i] *= m[i];
    });
  }
  return gx;
}

}  // namespace qavat
