#include "core/quant/qlayers.h"

#include <cassert>
#include <cmath>

namespace qavat {

namespace {

// Per-row sums of a {rows, cols} matrix — the LTM's measurand (one
// activation sum per MVM input row).
std::vector<float> ltm_row_sums(const Tensor& m) {
  const index_t rows = m.dim(0), cols = m.dim(1);
  std::vector<float> sums(static_cast<std::size_t>(rows), 0.0f);
  for (index_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    float s = 0.0f;
    for (index_t c = 0; c < cols; ++c) s += row[c];
    sums[static_cast<std::size_t>(r)] = s;
  }
  return sums;
}

}  // namespace

QuantLayerBase::QuantLayerBase(index_t fan_in, index_t fan_out, index_t a_bits,
                               index_t w_bits)
    : fan_in_(fan_in),
      fan_out_(fan_out),
      a_bits_(a_bits),
      w_bits_(w_bits),
      act_quant_(a_bits) {
  weight_.value.resize({fan_out, fan_in});
  bias_.value.resize({fan_out});
}

void QuantLayerBase::refresh_weight_scale() {
  w_scale_ = mmse_scale(weight_.value, w_bits_);
}

float QuantLayerBase::dequant_weight_max() const {
  if (!quant_enabled_ || w_scale_ <= 0.0f) return weight_.value.abs_max();
  Tensor tmp;
  quantize_dequantize(weight_.value, w_scale_, w_bits_, tmp);
  return tmp.abs_max();
}

void QuantLayerBase::compute_effective_weight() {
  if (quant_enabled_ && w_scale_ > 0.0f) {
    quantize_dequantize(weight_.value, w_scale_, w_bits_, weff_,
                        training_ ? &w_mask_ : nullptr);
  } else {
    weff_ = weight_.value;
    if (training_) {
      w_mask_.resize(weight_.value.shape());
      w_mask_.fill(1.0f);
    }
  }
  if (!noise_.active) return;
  assert(noise_.eps.size() == weff_.size());
  float* w = weff_.data();
  const float* eps = noise_.eps.data();
  if (noise_.model == VarianceModel::kWeightProportional) {
    for (index_t i = 0; i < weff_.size(); ++i) {
      w[i] *= 1.0f + eps[i] + noise_.eps_b;
    }
  } else {
    const float unit = noise_.wmax;
    for (index_t i = 0; i < weff_.size(); ++i) {
      w[i] += (eps[i] + noise_.eps_b) * unit;
    }
  }
}

Tensor QuantLayerBase::quantize_input(const Tensor& x) {
  if (training_) act_quant_.observe(x);
  if (!quant_enabled_) {
    if (training_) {
      x_mask_.resize(x.shape());
      x_mask_.fill(1.0f);
    }
    return x;
  }
  Tensor out;
  act_quant_.quantize(x, out, training_ ? &x_mask_ : nullptr);
  return out;
}

void QuantLayerBase::apply_correction(Tensor& y2d,
                                      const std::vector<float>& row_sums) const {
  if (!noise_.active || noise_.correction == CorrectionKind::kNone) return;
  const index_t rows = y2d.dim(0), cols = y2d.dim(1);
  float* y = y2d.data();
  if (noise_.correction == CorrectionKind::kScale) {
    float denom = 1.0f + noise_.eps_hat;
    // An (unphysical) near-zero estimate would blow the correction up;
    // clamp like a bounded-gain analog stage would.
    if (std::fabs(denom) < 0.25f) denom = denom < 0.0f ? -0.25f : 0.25f;
    const float g = 1.0f / denom;
    for (index_t i = 0; i < y2d.size(); ++i) y[i] *= g;
  } else {  // kOffset
    assert(static_cast<index_t>(row_sums.size()) == rows);
    const float k = noise_.eps_hat * noise_.wmax * (1.0f + noise_.ltm_err);
    for (index_t r = 0; r < rows; ++r) {
      const float off = k * row_sums[static_cast<std::size_t>(r)];
      float* row = y + r * cols;
      for (index_t c = 0; c < cols; ++c) row[c] -= off;
    }
  }
}

void QuantLayerBase::accumulate_weight_grad(const Tensor& grad_weff) {
  weight_.ensure_grad();
  const bool reparam_factor = noise_.active && reparam_ &&
                              noise_.model == VarianceModel::kWeightProportional;
  const bool masked = w_mask_.size() == grad_weff.size();
  const float* g = grad_weff.data();
  const float* eps = reparam_factor ? noise_.eps.data() : nullptr;
  const float* m = masked ? w_mask_.data() : nullptr;
  float* acc = weight_.grad.data();
  for (index_t i = 0; i < grad_weff.size(); ++i) {
    float v = g[i];
    if (eps != nullptr) v *= 1.0f + eps[i] + noise_.eps_b;
    if (m != nullptr) v *= m[i];
    acc[i] += v;
  }
}

QuantLinear::QuantLinear(index_t in, index_t out, index_t a_bits, index_t w_bits,
                         Rng& rng)
    : QuantLayerBase(in, out, a_bits, w_bits) {
  fill_normal(weight_.value, rng, 0.0, std::sqrt(2.0 / static_cast<double>(in)));
}

Tensor QuantLinear::forward(const Tensor& x) {
  assert(x.ndim() == 2 && x.dim(1) == fan_in_);
  xq_ = quantize_input(x);
  compute_effective_weight();
  Tensor y = matmul_nt(xq_, weff_);
  if (noise_.active && noise_.correction == CorrectionKind::kOffset) {
    apply_correction(y, ltm_row_sums(xq_));
  } else {
    apply_correction(y, {});
  }
  float* py = y.data();
  const float* pb = bias_.value.data();
  for (index_t n = 0; n < y.dim(0); ++n) {
    for (index_t j = 0; j < fan_out_; ++j) py[n * fan_out_ + j] += pb[j];
  }
  last_macs_ = static_cast<double>(fan_in_ * fan_out_);
  last_positions_ = 1.0;
  return y;
}

Tensor QuantLinear::backward(const Tensor& gy) {
  assert(gy.ndim() == 2 && gy.dim(1) == fan_out_);
  bias_.ensure_grad();
  const float* pg = gy.data();
  float* pb = bias_.grad.data();
  for (index_t n = 0; n < gy.dim(0); ++n) {
    for (index_t j = 0; j < fan_out_; ++j) pb[j] += pg[n * fan_out_ + j];
  }
  accumulate_weight_grad(matmul_tn(gy, xq_));
  Tensor gx = matmul(gy, weff_);
  if (x_mask_.size() == gx.size()) {
    float* p = gx.data();
    const float* m = x_mask_.data();
    for (index_t i = 0; i < gx.size(); ++i) p[i] *= m[i];
  }
  return gx;
}

QuantConv2d::QuantConv2d(index_t in_channels, index_t out_channels, index_t kernel,
                         index_t stride, index_t pad, index_t a_bits,
                         index_t w_bits, Rng& rng)
    : QuantLayerBase(in_channels * kernel * kernel, out_channels, a_bits, w_bits),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  fill_normal(weight_.value, rng,
              0.0, std::sqrt(2.0 / static_cast<double>(fan_in_)));
}

namespace {

// x {N,C,H,W} -> cols {N*OH*OW, C*K*K}; row index = (n*OH + oh)*OW + ow.
Tensor im2col(const Tensor& x, index_t k, index_t stride, index_t pad,
              index_t oh, index_t ow) {
  const index_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t ckk = c * k * k;
  Tensor cols({n * oh * ow, ckk});
  const float* px = x.data();
  float* pc = cols.data();
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t y = 0; y < oh; ++y) {
      for (index_t xo = 0; xo < ow; ++xo) {
        float* row = pc + ((ni * oh + y) * ow + xo) * ckk;
        for (index_t ci = 0; ci < c; ++ci) {
          const float* plane = px + (ni * c + ci) * h * w;
          for (index_t ky = 0; ky < k; ++ky) {
            const index_t iy = y * stride - pad + ky;
            for (index_t kx = 0; kx < k; ++kx) {
              const index_t ix = xo * stride - pad + kx;
              const bool in = iy >= 0 && iy < h && ix >= 0 && ix < w;
              row[(ci * k + ky) * k + kx] = in ? plane[iy * w + ix] : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

// Scatter-add the cols gradient back to the input image layout.
Tensor col2im(const Tensor& cols, const std::vector<index_t>& x_shape, index_t k,
              index_t stride, index_t pad, index_t oh, index_t ow) {
  const index_t n = x_shape[0], c = x_shape[1], h = x_shape[2], w = x_shape[3];
  const index_t ckk = c * k * k;
  Tensor gx(x_shape);
  const float* pc = cols.data();
  float* px = gx.data();
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t y = 0; y < oh; ++y) {
      for (index_t xo = 0; xo < ow; ++xo) {
        const float* row = pc + ((ni * oh + y) * ow + xo) * ckk;
        for (index_t ci = 0; ci < c; ++ci) {
          float* plane = px + (ni * c + ci) * h * w;
          for (index_t ky = 0; ky < k; ++ky) {
            const index_t iy = y * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (index_t kx = 0; kx < k; ++kx) {
              const index_t ix = xo * stride - pad + kx;
              if (ix < 0 || ix >= w) continue;
              plane[iy * w + ix] += row[(ci * k + ky) * k + kx];
            }
          }
        }
      }
    }
  }
  return gx;
}

}  // namespace

Tensor QuantConv2d::forward(const Tensor& x) {
  assert(x.ndim() == 4 && x.dim(1) == in_channels_);
  x_shape_ = x.shape();
  const index_t n = x.dim(0);
  const index_t oh = out_size(x.dim(2)), ow = out_size(x.dim(3));
  Tensor xq = quantize_input(x);
  cols_ = im2col(xq, kernel_, stride_, pad_, oh, ow);
  compute_effective_weight();
  Tensor y2d = matmul_nt(cols_, weff_);  // {N*OH*OW, cout}
  if (noise_.active && noise_.correction == CorrectionKind::kOffset) {
    apply_correction(y2d, ltm_row_sums(cols_));
  } else {
    apply_correction(y2d, {});
  }
  // Permute {N*OH*OW, cout} -> {N, cout, OH, OW} and add the bias.
  Tensor y({n, out_channels_, oh, ow});
  const float* p2 = y2d.data();
  const float* pb = bias_.value.data();
  float* py = y.data();
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t pos = 0; pos < oh * ow; ++pos) {
      const float* src = p2 + (ni * oh * ow + pos) * out_channels_;
      for (index_t co = 0; co < out_channels_; ++co) {
        py[(ni * out_channels_ + co) * oh * ow + pos] = src[co] + pb[co];
      }
    }
  }
  last_macs_ = static_cast<double>(fan_in_ * out_channels_ * oh * ow);
  last_positions_ = static_cast<double>(oh * ow);
  return y;
}

Tensor QuantConv2d::backward(const Tensor& gy) {
  assert(gy.ndim() == 4 && gy.dim(1) == out_channels_);
  const index_t n = gy.dim(0), oh = gy.dim(2), ow = gy.dim(3);
  // Permute to {N*OH*OW, cout} (inverse of forward's layout change).
  Tensor gy2d({n * oh * ow, out_channels_});
  const float* pg = gy.data();
  float* p2 = gy2d.data();
  bias_.ensure_grad();
  float* pb = bias_.grad.data();
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t co = 0; co < out_channels_; ++co) {
      const float* plane = pg + (ni * out_channels_ + co) * oh * ow;
      for (index_t pos = 0; pos < oh * ow; ++pos) {
        p2[(ni * oh * ow + pos) * out_channels_ + co] = plane[pos];
        pb[co] += plane[pos];
      }
    }
  }
  accumulate_weight_grad(matmul_tn(gy2d, cols_));
  Tensor dcols = matmul(gy2d, weff_);
  Tensor gx = col2im(dcols, x_shape_, kernel_, stride_, pad_, oh, ow);
  if (x_mask_.size() == gx.size()) {
    float* p = gx.data();
    const float* m = x_mask_.data();
    for (index_t i = 0; i < gx.size(); ++i) p[i] *= m[i];
  }
  return gx;
}

}  // namespace qavat
