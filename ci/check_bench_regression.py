#!/usr/bin/env python3
"""Soft perf-regression gate over BENCH_micro.json.

Compares the GMAC/s of the kernels pinned in ci/bench_baseline.json
against a fresh BENCH_micro.json (written by bench_micro_smoke). A kernel
more than the baseline's tolerance below its committed rate prints a loud
banner; the exit code stays 0 unless QAVAT_BENCH_STRICT=1, because
wall-clock on shared CI hosts is noisy — the banner is the signal, the
committed baseline the trajectory record.

Usage: check_bench_regression.py BENCH_micro.json [baseline.json]
"""
import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    base_path = sys.argv[2] if len(sys.argv) > 2 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "bench_baseline.json")

    with open(bench_path) as f:
        bench = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    rates = {k["name"]: k["gmacs"] for k in bench.get("kernels", [])}
    tolerance = float(base.get("tolerance", 0.20))
    regressions = []
    for name, pinned in base.get("gmacs", {}).items():
        got = rates.get(name)
        if got is None:
            # A vanished kernel (renamed/deleted bench) is itself a
            # regression: its throughput just became unmonitored.
            print(f"bench-check: baseline kernel '{name}' MISSING from "
                  f"{bench_path} (renamed or deleted? re-pin the baseline)")
            regressions.append((name, 0.0, pinned))
            continue
        floor = pinned * (1.0 - tolerance)
        status = "OK" if got >= floor else "REGRESSED"
        print(f"bench-check: {name:<28} {got:8.2f} GMAC/s "
              f"(baseline {pinned:.2f}, floor {floor:.2f})  {status}")
        if got < floor:
            regressions.append((name, got, pinned))

    if regressions:
        print("=" * 70)
        print("PERF REGRESSION: GMAC/s dropped more than "
              f"{tolerance:.0%} below the committed baseline:")
        for name, got, pinned in regressions:
            print(f"  {name}: {got:.2f} vs baseline {pinned:.2f} "
                  f"({got / pinned:.0%})")
        print("If intentional, re-pin ci/bench_baseline.json; otherwise find")
        print("the commit that slowed the kernel before it ships.")
        print("=" * 70)
        if os.environ.get("QAVAT_BENCH_STRICT") == "1":
            return 1
    else:
        print("bench-check: all pinned kernels within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
