#!/usr/bin/env bash
# Tier-1 verify, end-to-end from a clean checkout. Safe to wire into any
# CI runner: no network access, no system mutation, nonzero exit on any
# configure/build/test failure.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test =="
cd "${BUILD_DIR}"
ctest --output-on-failure -j "${JOBS}"

echo "tier-1 verify: OK"
