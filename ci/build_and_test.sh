#!/usr/bin/env bash
# Tier-1 verify, end-to-end from a clean checkout. Safe to wire into any
# CI runner: no network access, no system mutation, nonzero exit on any
# configure/build/test failure.
#
# Builds and tests BOTH Release and Debug: the always-on GEMM shape checks
# must throw in NDEBUG (Release) builds too, and Debug catches the
# assert-based invariants — running only one config would miss a whole
# regression class (e.g. assert-only checks compiling out under NDEBUG).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
DEBUG_BUILD_DIR="${DEBUG_BUILD_DIR:-${REPO_ROOT}/build-debug}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_suite() {
  local dir="$1" type="$2"

  echo "== configure (${type}) =="
  cmake -B "${dir}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE="${type}"

  echo "== build (${type}) =="
  cmake --build "${dir}" -j "${JOBS}"

  echo "== test (${type}) =="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_suite "${BUILD_DIR}" Release
run_suite "${DEBUG_BUILD_DIR}" Debug

echo "tier-1 verify: OK (Release + Debug)"
