#!/usr/bin/env bash
# Tier-1 verify, end-to-end from a clean checkout. Safe to wire into any
# CI runner: no network access, no system mutation, nonzero exit on any
# configure/build/test failure.
#
# Builds and tests BOTH Release and Debug: the always-on GEMM shape checks
# must throw in NDEBUG (Release) builds too, and Debug catches the
# assert-based invariants — running only one config would miss a whole
# regression class (e.g. assert-only checks compiling out under NDEBUG).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
DEBUG_BUILD_DIR="${DEBUG_BUILD_DIR:-${REPO_ROOT}/build-debug}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_suite() {
  local dir="$1" type="$2"

  echo "== configure (${type}) =="
  cmake -B "${dir}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE="${type}"

  echo "== build (${type}) =="
  cmake --build "${dir}" -j "${JOBS}"

  # The whole suite runs at two thread budgets: QAVAT_THREADS=1 keeps the
  # pool dormant (pure serial paths), QAVAT_THREADS=4 forces worker
  # dispatch, stealing and nested jobs even on small CI hosts. Results
  # must be identical — the bit-identity contract (DESIGN.md §7/§13).
  for nt in 1 4; do
    echo "== test (${type}, QAVAT_THREADS=${nt}) =="
    (cd "${dir}" && QAVAT_THREADS="${nt}" ctest --output-on-failure -j "${JOBS}")
  done
}

run_suite "${BUILD_DIR}" Release
run_suite "${DEBUG_BUILD_DIR}" Debug

# Optional ThreadSanitizer pass over the pool-heavy tests (Debug +
# -fsanitize=thread via -DQAVAT_TSAN=ON). Probed at runtime: hosts whose
# toolchain lacks the TSan runtime skip gracefully instead of failing.
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-${REPO_ROOT}/build-tsan}"
TSAN_PROBE="$(mktemp -d)"
trap 'rm -rf "${TSAN_PROBE}"' EXIT
echo 'int main() { return 0; }' > "${TSAN_PROBE}/probe.cc"
if "${CXX:-c++}" -fsanitize=thread "${TSAN_PROBE}/probe.cc" \
     -o "${TSAN_PROBE}/probe" >/dev/null 2>&1 && "${TSAN_PROBE}/probe"; then
  echo "== tsan (Debug, pool-heavy tests) =="
  cmake -B "${TSAN_BUILD_DIR}" -S "${REPO_ROOT}" \
        -DCMAKE_BUILD_TYPE=Debug -DQAVAT_TSAN=ON
  cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
        --target test_gemm test_conv_ops test_thread_pool
  for t in test_gemm test_conv_ops test_thread_pool; do
    echo "-- tsan ${t} --"
    QAVAT_FAST=1 QAVAT_STORE=0 QAVAT_THREADS=4 "${TSAN_BUILD_DIR}/${t}"
  done
  echo "tsan: OK (test_gemm test_conv_ops test_thread_pool, QAVAT_THREADS=4)"
else
  echo "tsan: toolchain has no usable ThreadSanitizer runtime - skipped"
fi
rm -rf "${TSAN_PROBE}"
trap - EXIT

# Docs gate: the public headers must carry well-formed doc comments.
# The repo's own lint is the portable baseline (python3 ships with the
# toolchain) and enforces COVERAGE — every public declaration documented
# — so the verdict never depends on which extra tool the host has;
# doxygen (markup parse, warnings as errors) or clang's -Wdocumentation
# layer syntax checking on top when available. Nonzero exit on malformed
# docs fails the build via set -e.
DOC_HEADERS=(pim/chip.h pim/tiling.h eval/evaluator.h eval/scenario.h
             eval/manifest.h eval/store.h eval/runner.h eval/fleet.h
             tensor/workspace.h
             tensor/conv_ops.h tensor/ops.h tensor/serialize.h
             tensor/int_ops.h tensor/thread_pool.h
             core/quant/int8_backend.h core/variability/lifetime.h)
echo "== docs check =="
DOC_TOOL_RAN=0
if command -v python3 >/dev/null 2>&1; then
  (cd "${REPO_ROOT}" && python3 ci/check_doc_comments.py "${DOC_HEADERS[@]}")
  DOC_TOOL_RAN=1
fi
if command -v doxygen >/dev/null 2>&1; then
  DOXY_DIR="$(mktemp -d)"
  trap 'rm -rf "${DOXY_DIR}"' EXIT  # clean the scratch dir on failure too
  {
    echo "INPUT = ${DOC_HEADERS[*]/#/${REPO_ROOT}/}"
    echo "OUTPUT_DIRECTORY = ${DOXY_DIR}"
    echo "GENERATE_LATEX = NO"
    echo "GENERATE_HTML = NO"
    echo "GENERATE_XML = YES"
    echo "WARN_AS_ERROR = YES"
    echo "QUIET = YES"
    echo "EXTRACT_ALL = YES"
  } > "${DOXY_DIR}/Doxyfile"
  doxygen "${DOXY_DIR}/Doxyfile"
  rm -rf "${DOXY_DIR}"
  trap - EXIT
  echo "docs check: OK (doxygen, ${#DOC_HEADERS[@]} headers)"
  DOC_TOOL_RAN=1
elif command -v clang++ >/dev/null 2>&1; then
  for h in "${DOC_HEADERS[@]}"; do
    clang++ -std=c++17 -fsyntax-only -x c++-header -I "${REPO_ROOT}" \
      -Wdocumentation -Werror=documentation "${REPO_ROOT}/${h}"
  done
  echo "docs check: OK (clang -Wdocumentation, ${#DOC_HEADERS[@]} headers)"
  DOC_TOOL_RAN=1
fi
if [[ "${DOC_TOOL_RAN}" -eq 0 ]]; then
  echo "docs check: no tool available (need python3, doxygen or clang++)" >&2
  exit 1
fi
if [[ -f "${REPO_ROOT}/docs/ARCHITECTURE.md" ]]; then
  echo "docs/ present: ARCHITECTURE.md"
else
  echo "docs/ARCHITECTURE.md missing" >&2
  exit 1
fi

# Artifact-store round-trip gate: one bench cold then warm against a
# private store, for every evaluation backend (weight_domain, circuit,
# int8). The warm run must (a) hit the store for every model and
# Monte-Carlo result — zero training, zero evaluations, asserted via the
# [qavat-session] stderr summary — and (b) print byte-identical table
# output (stdout carries only the deterministic numbers;
# provenance/timing goes to stderr). Train keys carry no backend token,
# so the circuit and int8 cold runs reuse the weight_domain-trained
# models from the shared store (trained=0 even cold); only their eval
# results are new.
echo "== store round-trip (bench_table1 cold vs warm) =="
STORE_TMP="$(mktemp -d)"
trap 'rm -rf "${STORE_TMP}"' EXIT
for backend in weight_domain circuit int8; do
  for phase in cold warm; do
    echo "-- ${backend} ${phase} --"
    QAVAT_FAST=1 QAVAT_STORE_DIR="${STORE_TMP}/store" \
      QAVAT_EVAL_BACKEND="${backend}" "${BUILD_DIR}/bench_table1" \
      > "${STORE_TMP}/${backend}.${phase}.out" \
      2> "${STORE_TMP}/${backend}.${phase}.err"
  done
  if ! cmp "${STORE_TMP}/${backend}.cold.out" \
           "${STORE_TMP}/${backend}.warm.out"; then
    echo "store gate: warm ${backend} stdout differs from cold" >&2
    exit 1
  fi
  if ! grep -q ' trained=0 ' "${STORE_TMP}/${backend}.warm.err" ||
     ! grep -q ' evals_computed=0 ' "${STORE_TMP}/${backend}.warm.err"; then
    echo "store gate: warm ${backend} run retrained or re-evaluated:" >&2
    grep '\[qavat-session\]' "${STORE_TMP}/${backend}.warm.err" >&2 || true
    exit 1
  fi
done
echo "store round-trip: OK (all backends: warm = 0 trainings, byte-identical tables)"

# Concurrent-sweep gate: two bench_table1 processes race against ONE
# fresh store. The work-claim protocol (DESIGN.md §14) must make them
# split the work — the summed train_runs across both processes equals
# the single-process cold run's (every unit trained exactly once, none
# lost) — and both must print tables byte-identical to the cold
# reference. Afterwards the store must verify clean and hold no leases.
echo "== store concurrent sweep (2x bench_table1, one cold store) =="
SWEEP_STORE="${STORE_TMP}/sweep-store"
for w in 1 2; do
  QAVAT_FAST=1 QAVAT_STORE_DIR="${SWEEP_STORE}" \
    QAVAT_EVAL_BACKEND=weight_domain "${BUILD_DIR}/bench_table1" \
    > "${STORE_TMP}/sweep.${w}.out" \
    2> "${STORE_TMP}/sweep.${w}.err" &
  SWEEP_PID[${w}]=$!
done
for w in 1 2; do
  if ! wait "${SWEEP_PID[${w}]}"; then
    echo "concurrent sweep gate: worker ${w} failed:" >&2
    cat "${STORE_TMP}/sweep.${w}.err" >&2
    exit 1
  fi
done
for w in 1 2; do
  if ! cmp "${STORE_TMP}/weight_domain.cold.out" "${STORE_TMP}/sweep.${w}.out"
  then
    echo "concurrent sweep gate: worker ${w} stdout differs from the" \
         "single-process cold reference" >&2
    exit 1
  fi
done
train_runs_of() {
  sed -n 's/.*\[qavat-session\].* train_runs=\([0-9]*\) .*/\1/p' "$1" | tail -1
}
REF_RUNS="$(train_runs_of "${STORE_TMP}/weight_domain.cold.err")"
W1_RUNS="$(train_runs_of "${STORE_TMP}/sweep.1.err")"
W2_RUNS="$(train_runs_of "${STORE_TMP}/sweep.2.err")"
if [[ -z "${REF_RUNS}" || -z "${W1_RUNS}" || -z "${W2_RUNS}" ]]; then
  echo "concurrent sweep gate: missing train_runs= token in a summary" >&2
  exit 1
fi
if [[ "$((W1_RUNS + W2_RUNS))" -ne "${REF_RUNS}" ]]; then
  echo "concurrent sweep gate: train_runs ${W1_RUNS}+${W2_RUNS} != single-" \
       "process ${REF_RUNS} - work was duplicated or lost" >&2
  exit 1
fi
# (Deeper inspect/gc/evict CLI coverage lives in the ctest-registered
# store_cli_smoke test; here verify doubles as the race's clean-store
# assertion.)
"${BUILD_DIR}/qavat-store" verify --root "${SWEEP_STORE}"
echo "concurrent sweep: OK (train_runs ${W1_RUNS}+${W2_RUNS} = ${REF_RUNS}," \
     "byte-identical tables, store verifies clean)"

# Manifest sweep gate: the claim-aware scheduler end-to-end through the
# qavat-sweep CLI (DESIGN.md §15). Emit the Table-I grid as a manifest,
# run it once sequentially (plain run_all) on a fresh store as the
# reference, then race two forked claim-aware workers against a second
# cold store. The workers' manifest-order stdout must be byte-identical
# to the sequential reference, their summed train_runs must equal the
# sequential run's (exactly once per unit, fleet-wide), a dry-run after
# must show every claim unit done, and the contended store must verify
# clean.
echo "== manifest sweep (qavat-sweep, table1, 2 workers vs sequential) =="
MANIFEST_TMP="${STORE_TMP}/manifest"
mkdir -p "${MANIFEST_TMP}"
QAVAT_FAST=1 "${BUILD_DIR}/qavat-sweep" emit table1 \
  -o "${MANIFEST_TMP}/table1.json"
QAVAT_FAST=1 QAVAT_STORE_DIR="${MANIFEST_TMP}/seq-store" \
  "${BUILD_DIR}/qavat-sweep" run "${MANIFEST_TMP}/table1.json" --sequential \
  > "${MANIFEST_TMP}/seq.out" 2> "${MANIFEST_TMP}/seq.err"
QAVAT_FAST=1 QAVAT_STORE_DIR="${MANIFEST_TMP}/race-store" \
  "${BUILD_DIR}/qavat-sweep" run "${MANIFEST_TMP}/table1.json" --workers 2 \
  > "${MANIFEST_TMP}/race.out" 2> "${MANIFEST_TMP}/race.err"
if ! cmp "${MANIFEST_TMP}/seq.out" "${MANIFEST_TMP}/race.out"; then
  echo "manifest gate: 2-worker stdout differs from sequential reference" >&2
  exit 1
fi
sweep_runs_of() {
  sed -n 's/.*\[qavat-sweep\].* train_runs=\([0-9]*\).*/\1/p' "$1" | tail -1
}
SEQ_RUNS="$(sweep_runs_of "${MANIFEST_TMP}/seq.err")"
RACE_RUNS="$(sweep_runs_of "${MANIFEST_TMP}/race.err")"
if [[ -z "${SEQ_RUNS}" || -z "${RACE_RUNS}" ||
      "${SEQ_RUNS}" -ne "${RACE_RUNS}" ]]; then
  echo "manifest gate: summed train_runs '${RACE_RUNS}' != sequential" \
       "'${SEQ_RUNS}' - work was duplicated or lost" >&2
  exit 1
fi
QAVAT_FAST=1 QAVAT_STORE_DIR="${MANIFEST_TMP}/race-store" \
  "${BUILD_DIR}/qavat-sweep" run "${MANIFEST_TMP}/table1.json" --dry-run \
  > "${MANIFEST_TMP}/dry.out"
if grep -v ' done ' "${MANIFEST_TMP}/dry.out"; then
  echo "manifest gate: dry-run shows unproduced units after the sweep" >&2
  exit 1
fi
"${BUILD_DIR}/qavat-store" verify --root "${MANIFEST_TMP}/race-store"
echo "manifest sweep: OK (train_runs ${RACE_RUNS} = ${SEQ_RUNS}," \
     "manifest-order output byte-identical, all units done, store clean)"

# Fleet resume gate (DESIGN.md §16): an interrupted lifetime study must
# resume from its persisted snapshots and reproduce the uninterrupted
# single-process trajectory byte-for-byte, at both thread budgets. The
# interruption is real: the store's fault hook kills the process during
# the SECOND snapshot publish (writes 1-2 are the QAT/QAVAT models,
# writes 3+ the per-checkpoint snapshots), and the resuming process must
# reclaim the dead holder's lease (QAVAT_CLAIM_TTL_S=1 keeps the wait
# short) and assert via --resume that it actually continued from a
# snapshot. Then two racing processes on one cold store must publish
# each snapshot exactly once (summed published= equals the reference
# count), and every store must verify clean.
echo "== fleet resume (kill mid-publish, resume, byte-identical trajectory) =="
FLEET_TMP="${STORE_TMP}/fleet"
mkdir -p "${FLEET_TMP}"
QAVAT_FAST=1 "${BUILD_DIR}/qavat-fleet" emit fleet_mixed \
  -o "${FLEET_TMP}/study.json"
published_of() {
  sed -n 's/.*\[qavat-fleet\].* published=\([0-9]*\) .*/\1/p' "$1" | tail -1
}
for nt in 1 4; do
  # Uninterrupted single-process reference on its own cold store.
  QAVAT_FAST=1 QAVAT_THREADS="${nt}" \
    QAVAT_STORE_DIR="${FLEET_TMP}/ref-store.${nt}" \
    "${BUILD_DIR}/qavat-fleet" run "${FLEET_TMP}/study.json" \
    > "${FLEET_TMP}/ref.${nt}.out" 2> "${FLEET_TMP}/ref.${nt}.err"
  # Interrupted run: killed mid-rename of the second snapshot.
  set +e
  QAVAT_FAST=1 QAVAT_THREADS="${nt}" \
    QAVAT_STORE_DIR="${FLEET_TMP}/store.${nt}" \
    QAVAT_STORE_FAULT=kill_before_rename:4 \
    "${BUILD_DIR}/qavat-fleet" run "${FLEET_TMP}/study.json" \
    > /dev/null 2> "${FLEET_TMP}/killed.${nt}.err"
  rc=$?
  set -e
  if [[ "${rc}" -ne 42 ]]; then
    echo "fleet gate: fault injection did not kill the run (rc=${rc})" >&2
    exit 1
  fi
  # Resume on the same store; --resume exits 1 if the study restarted
  # from factory state instead of a persisted snapshot.
  QAVAT_FAST=1 QAVAT_THREADS="${nt}" QAVAT_CLAIM_TTL_S=1 \
    QAVAT_STORE_DIR="${FLEET_TMP}/store.${nt}" \
    "${BUILD_DIR}/qavat-fleet" run "${FLEET_TMP}/study.json" --resume \
    > "${FLEET_TMP}/resumed.${nt}.out" 2> "${FLEET_TMP}/resumed.${nt}.err"
  if ! cmp "${FLEET_TMP}/ref.${nt}.out" "${FLEET_TMP}/resumed.${nt}.out"; then
    echo "fleet gate: resumed trajectory differs from uninterrupted" \
         "reference (QAVAT_THREADS=${nt})" >&2
    exit 1
  fi
  "${BUILD_DIR}/qavat-store" verify --root "${FLEET_TMP}/store.${nt}"
done
if ! cmp "${FLEET_TMP}/ref.1.out" "${FLEET_TMP}/ref.4.out"; then
  echo "fleet gate: trajectory differs between QAVAT_THREADS=1 and 4" >&2
  exit 1
fi
# Exactly-once snapshot publication: two racing processes, one cold
# store. The loser backs off on the fleet lease and loads the winner's
# completed trajectory, so the summed published count equals the
# single-process reference's.
for w in 1 2; do
  QAVAT_FAST=1 QAVAT_CLAIM_TTL_S=1 \
    QAVAT_STORE_DIR="${FLEET_TMP}/race-store" \
    "${BUILD_DIR}/qavat-fleet" run "${FLEET_TMP}/study.json" \
    > "${FLEET_TMP}/race.${w}.out" 2> "${FLEET_TMP}/race.${w}.err" &
  FLEET_PID[${w}]=$!
done
for w in 1 2; do
  if ! wait "${FLEET_PID[${w}]}"; then
    echo "fleet gate: racing worker ${w} failed:" >&2
    cat "${FLEET_TMP}/race.${w}.err" >&2
    exit 1
  fi
  if ! cmp "${FLEET_TMP}/ref.1.out" "${FLEET_TMP}/race.${w}.out"; then
    echo "fleet gate: racing worker ${w} trajectory differs from the" \
         "reference" >&2
    exit 1
  fi
done
REF_PUB="$(published_of "${FLEET_TMP}/ref.1.err")"
RACE_PUB="$(( $(published_of "${FLEET_TMP}/race.1.err") \
            + $(published_of "${FLEET_TMP}/race.2.err") ))"
if [[ -z "${REF_PUB}" || "${RACE_PUB}" -ne "${REF_PUB}" ]]; then
  echo "fleet gate: racing processes published ${RACE_PUB} snapshots," \
       "reference published ${REF_PUB} - publication was duplicated or" \
       "lost" >&2
  exit 1
fi
"${BUILD_DIR}/qavat-store" verify --root "${FLEET_TMP}/race-store"
echo "fleet resume: OK (resume = uninterrupted at QAVAT_THREADS=1/4," \
     "exactly-once publication ${RACE_PUB} = ${REF_PUB}, stores clean)"
rm -rf "${STORE_TMP}"
trap - EXIT

# Micro-bench perf record (Release only; skipped when google-benchmark was
# not found). Writes the machine-readable BENCH_micro.json artifact and
# runs the soft GMAC/s regression gate against ci/bench_baseline.json
# (loud banner on >20% drop; fails the build only with
# QAVAT_BENCH_STRICT=1, since shared CI hosts are noisy).
ARTIFACT_DIR="${ARTIFACT_DIR:-${REPO_ROOT}/artifacts}"
echo "== micro-bench (Release) =="
rm -f "${BUILD_DIR}/BENCH_micro.json"  # fresh record (writers merge-by-name)
(cd "${BUILD_DIR}" && QAVAT_BENCH_JSON=BENCH_micro.json ./bench_gemm_sweep)
# bench_fleet contributes the fleet steps/s rows; it runs its frontier
# against a throwaway store so CI never mixes with manual bench runs.
BENCH_FLEET_STORE="$(mktemp -d)"
(cd "${BUILD_DIR}" && QAVAT_FAST=1 QAVAT_BENCH_JSON=BENCH_micro.json \
   QAVAT_STORE_DIR="${BENCH_FLEET_STORE}" ./bench_fleet >/dev/null)
rm -rf "${BENCH_FLEET_STORE}"
if [[ -x "${BUILD_DIR}/bench_micro_smoke" ]]; then
  (cd "${BUILD_DIR}" &&
   QAVAT_BENCH_JSON=BENCH_micro.json ./bench_micro_smoke \
     --benchmark_min_time=0.1 >/dev/null)
else
  echo "bench_micro_smoke not built - google-benchmark kernels skipped"
fi
mkdir -p "${ARTIFACT_DIR}"
cp "${BUILD_DIR}/BENCH_micro.json" "${ARTIFACT_DIR}/BENCH_micro.json"
echo "archived ${ARTIFACT_DIR}/BENCH_micro.json"
if command -v python3 >/dev/null 2>&1; then
  python3 "${REPO_ROOT}/ci/check_bench_regression.py" \
    "${BUILD_DIR}/BENCH_micro.json" "${REPO_ROOT}/ci/bench_baseline.json"
else
  echo "python3 not found - skipping bench regression check"
fi

echo "tier-1 verify: OK (Release + Debug + docs + store round-trip)"
