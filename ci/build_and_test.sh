#!/usr/bin/env bash
# Tier-1 verify, end-to-end from a clean checkout. Safe to wire into any
# CI runner: no network access, no system mutation, nonzero exit on any
# configure/build/test failure.
#
# Builds and tests BOTH Release and Debug: the always-on GEMM shape checks
# must throw in NDEBUG (Release) builds too, and Debug catches the
# assert-based invariants — running only one config would miss a whole
# regression class (e.g. assert-only checks compiling out under NDEBUG).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
DEBUG_BUILD_DIR="${DEBUG_BUILD_DIR:-${REPO_ROOT}/build-debug}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_suite() {
  local dir="$1" type="$2"

  echo "== configure (${type}) =="
  cmake -B "${dir}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE="${type}"

  echo "== build (${type}) =="
  cmake --build "${dir}" -j "${JOBS}"

  echo "== test (${type}) =="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_suite "${BUILD_DIR}" Release
run_suite "${DEBUG_BUILD_DIR}" Debug

# Micro-bench perf record (Release only; skipped when google-benchmark was
# not found). Writes the machine-readable BENCH_micro.json artifact and
# runs the soft GMAC/s regression gate against ci/bench_baseline.json
# (loud banner on >20% drop; fails the build only with
# QAVAT_BENCH_STRICT=1, since shared CI hosts are noisy).
ARTIFACT_DIR="${ARTIFACT_DIR:-${REPO_ROOT}/artifacts}"
if [[ -x "${BUILD_DIR}/bench_micro_smoke" ]]; then
  echo "== micro-bench (Release) =="
  (cd "${BUILD_DIR}" &&
   QAVAT_BENCH_JSON=BENCH_micro.json ./bench_micro_smoke \
     --benchmark_min_time=0.1 >/dev/null)
  mkdir -p "${ARTIFACT_DIR}"
  cp "${BUILD_DIR}/BENCH_micro.json" "${ARTIFACT_DIR}/BENCH_micro.json"
  echo "archived ${ARTIFACT_DIR}/BENCH_micro.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 "${REPO_ROOT}/ci/check_bench_regression.py" \
      "${BUILD_DIR}/BENCH_micro.json" "${REPO_ROOT}/ci/bench_baseline.json"
  else
    echo "python3 not found - skipping bench regression check"
  fi
else
  echo "bench_micro_smoke not built - skipping micro-bench record"
fi

echo "tier-1 verify: OK (Release + Debug)"
