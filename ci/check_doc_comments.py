#!/usr/bin/env python3
"""Doc-comment lint for the public qavat headers.

Run by ci/build_and_test.sh as the docs gate (and usable standalone):

    python3 ci/check_doc_comments.py pim/chip.h eval/evaluator.h ...

Checks, per header:
  1. style: no javadoc ``/** ... */`` blocks — the codebase standard is
     ``///`` for declaration docs and ``//`` for narrative blocks;
  2. attachment: every ``///`` run must document something — it must be
     immediately followed by a declaration (or another comment), never by
     a blank line or a closing brace;
  3. coverage: every namespace-scope (column-0) ``class`` / ``struct`` /
     ``enum`` definition and every column-0 function declaration must be
     preceded by a comment run containing at least one ``///`` line — a
     plain ``//`` narrative or section divider alone does not count as
     documentation. Declarations directly following a documented
     declaration share its doc block (grouped declarations).

Exit status is nonzero if any check fails; failures print file:line.
"""

import re
import sys

DECL_RE = re.compile(r"^(template\s*<|class\s+\w|struct\s+\w|enum\s+(class\s+)?\w)")
# A column-0 function declaration/definition: a type token then name(...).
FUNC_RE = re.compile(r"^[A-Za-z_][\w:<>,\s&*]*\b[\w:~]+\s*\(")
# Control-flow / non-declaration starters, matched on a word boundary so
# names like format_x( or switch_backend( are not exempted.
EXCLUDED_FUNC_RE = re.compile(
    r"^(if|for|while|switch|return|using|namespace|static_assert|typedef)\b")


def lint(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"{path}: cannot read: {e}")
        return 1

    errors = 0
    # In a contiguous doc run (comment lines or a documented declaration
    # group); `documented` tracks whether the run contains a /// line —
    # plain // narrative alone is not declaration documentation.
    prev_comment = False
    documented = False
    for idx, raw in enumerate(lines, start=1):
        line = raw.rstrip()
        stripped = line.strip()

        if "/**" in stripped or stripped.startswith("/*!"):
            print(f"{path}:{idx}: javadoc-style block comment; use /// or //")
            errors += 1

        # ///< lines are trailing member docs (possibly wrapped onto their
        # own line); only leading /// runs must attach to a declaration.
        if stripped.startswith("///") and not stripped.startswith("///<"):
            nxt = lines[idx].strip() if idx < len(lines) else ""
            if nxt == "" or nxt.startswith("}"):
                print(f"{path}:{idx}: dangling /// comment "
                      f"(not attached to a declaration)")
                errors += 1

        # Track documented runs for the coverage check. Only column-0
        # declarations are public API here (members are indented).
        is_comment = stripped.startswith("//")
        at_col0 = bool(line) and not line[0].isspace()
        if at_col0 and not is_comment:
            if DECL_RE.match(line) or (FUNC_RE.match(line) and
                                       not EXCLUDED_FUNC_RE.match(line)):
                if not (prev_comment and documented):
                    print(f"{path}:{idx}: undocumented public declaration "
                          f"(needs a /// block): {stripped[:60]}")
                    errors += 1
                # A documented declaration extends the doc group to the
                # declarations immediately following it.
            elif not stripped.endswith((",", ")", "{")):
                # Anything else at column 0 (namespace, braces, includes)
                # breaks the doc group.
                prev_comment = False
                documented = False
        if is_comment:
            if not prev_comment:
                documented = False  # a fresh comment run starts undocumented
            prev_comment = True
            if stripped.startswith("///"):
                documented = True
        elif stripped == "":
            prev_comment = False
            documented = False
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_doc_comments.py <header> [header...]")
        return 2
    total = 0
    for path in argv[1:]:
        total += lint(path)
    if total:
        print(f"doc lint: {total} issue(s)")
        return 1
    print(f"doc lint: OK ({len(argv) - 1} header(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
